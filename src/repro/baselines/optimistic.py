"""Admit-everything baseline.

The degenerate lower bound: no reasoning at all.  Every arrival whose
deadline has not already passed is admitted.  Against it, every other
policy's precision gain is measured.
"""

from __future__ import annotations

from repro.baselines.base import AdmissionPolicy, PolicyDecision
from repro.computation.requirements import ConcurrentRequirement
from repro.intervals.interval import Time
from repro.resources.resource_set import ResourceSet


class OptimisticAdmission(AdmissionPolicy):
    """Always admit (unless the deadline is already unreachable)."""

    name = "optimistic"

    def observe_resources(self, resources: ResourceSet, now: Time) -> None:
        pass

    def decide(self, requirement: ConcurrentRequirement, now: Time) -> PolicyDecision:
        if requirement.deadline <= now:
            return PolicyDecision(False, reason="deadline already passed")
        return PolicyDecision(True)
