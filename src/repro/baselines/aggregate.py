"""Aggregate-quantity baseline: the check Section III warns about.

Admits when, for every located type, the total quantity available during
the arrival's window covers the newcomer's total demand plus the
outstanding demands of previously admitted computations with overlapping
windows.  This respects types and windows but **ignores ordering**: a
sequential computation needs "the right resources at the right time", not
merely the right totals.  The paper's own example: extra resources outside
the usable subinterval "do not help satisfy the computation".

Expected failure mode (measured in the accuracy benchmark): over-admission
— computations accepted on aggregate grounds that then miss their
deadlines because the quantities arrive in the wrong order relative to
their phase sequence.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.baselines.base import AdmissionPolicy, PolicyDecision
from repro.computation.demands import Demands
from repro.computation.requirements import ConcurrentRequirement
from repro.intervals.interval import Interval, Time
from repro.resources.located_type import LocatedType
from repro.resources.resource_set import ResourceSet


class AggregateAdmission(AdmissionPolicy):
    """Type- and window-aware totals, order-blind."""

    name = "aggregate"

    def __init__(self) -> None:
        self._available = ResourceSet.empty()
        #: (window, total demands) of each admitted computation.
        self._commitments: List[Tuple[Interval, Demands]] = []

    def observe_resources(self, resources: ResourceSet, now: Time) -> None:
        self._available = self._available | resources

    def decide(self, requirement: ConcurrentRequirement, now: Time) -> PolicyDecision:
        if requirement.deadline <= now:
            return PolicyDecision(False, reason="deadline already passed")
        window = Interval(max(requirement.start, now), requirement.deadline)
        needed: Dict[LocatedType, Time] = dict(requirement.total_demands)
        # Charge overlapping commitments against the same window.
        for other_window, other_demand in self._commitments:
            if not window.overlaps(other_window):
                continue
            for ltype, quantity in other_demand.items():
                needed[ltype] = needed.get(ltype, 0) + quantity
        for ltype, quantity in needed.items():
            if self._available.quantity(ltype, window) < quantity:
                return PolicyDecision(
                    False,
                    reason=f"aggregate shortfall of {ltype} within {window}",
                )
        self._commitments.append((window, requirement.total_demands))
        return PolicyDecision(True)
