"""Retrying admission: rejected computations watch for new frontiers.

The paper's introduction: "The dynamicity that makes opportunities
visible at runtime also leads to uncertainty ... Meeting these challenges
can be helped by computations' ability to reason about future
availability of resources" — and its conclusion pictures computations
that keep "searching for resources before giving up".

:class:`RetryingPolicy` wraps any admission policy with a retry queue: an
arrival the inner policy rejects is remembered and re-offered every time
resources join, until its deadline passes (or a retry budget runs out).
Wrapped around ROTA, rejections stop being final verdicts and become
"not with what I can see today" — admissions arrive late but remain fully
assured, because every retry goes through the same Theorem 4 check.

:class:`ExponentialBackoff` generalizes the retry cadence: instead of
re-offering on *every* new frontier, attempts are spaced by a capped
exponential delay.  The fault-recovery pipeline
(:mod:`repro.faults.recovery`) reuses the same schedule between
re-admission offers for promise-violation victims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.backoff import Backoff
from repro.baselines.base import AdmissionPolicy, PolicyDecision
from repro.computation.requirements import ConcurrentRequirement
from repro.intervals.interval import Time
from repro.resources.resource_set import ResourceSet


@dataclass(frozen=True)
class ExponentialBackoff(Backoff):
    """The shared :class:`repro.backoff.Backoff` under its historical
    name, jitter off by default: ``min(cap, base * factor**attempt)``.

    ``attempt`` counts completed attempts, so the first re-offer waits
    ``base`` and each rejection doubles (by default) the wait, up to
    ``cap``.  Deterministic on purpose: fault experiments must replay
    bit-identically — and when jitter *is* enabled, it is the stateless
    seeded kind, never a shared RNG stream.
    """


@dataclass
class _Pending:
    label: str
    requirement: ConcurrentRequirement
    attempts: int = 0
    #: earliest time the next re-offer may happen (backoff gating)
    eligible_at: Time = 0


class RetryingPolicy(AdmissionPolicy):
    """Wrap an admission policy with a bounded, optionally backed-off
    retry queue."""

    def __init__(
        self,
        inner: AdmissionPolicy,
        *,
        max_retries: int = 10,
        backoff: ExponentialBackoff | None = None,
    ) -> None:
        self._inner = inner
        self._max_retries = max_retries
        self._backoff = backoff
        self._pending: Dict[str, _Pending] = {}
        self.name = f"{inner.name}+retry"
        #: labels admitted on a retry rather than on first offer
        self.late_admissions: List[str] = []

    @property
    def inner(self) -> AdmissionPolicy:
        return self._inner

    @property
    def pending_labels(self) -> tuple[str, ...]:
        return tuple(self._pending)

    # ------------------------------------------------------------------
    def observe_resources(self, resources: ResourceSet, now: Time) -> None:
        self._inner.observe_resources(resources, now)

    def decide(self, requirement: ConcurrentRequirement, now: Time) -> PolicyDecision:
        decision = self._inner.decide(requirement, now)
        if not decision.admitted and requirement.deadline > now:
            label = requirement.components[0].label.split("[")[0] or "arrival"
            if label in self._pending:
                # a retry round: count the attempt, push out the next one
                pending = self._pending[label]
                pending.attempts += 1
                if pending.attempts >= self._max_retries:
                    del self._pending[label]
                elif self._backoff is not None:
                    pending.eligible_at = now + self._backoff.delay(
                        pending.attempts
                    )
            else:
                self._pending[label] = _Pending(label, requirement)
        elif decision.admitted:
            label = requirement.components[0].label.split("[")[0] or "arrival"
            if label in self._pending:
                del self._pending[label]
                self.late_admissions.append(label)
        return decision

    def on_leave(self, label: str, now: Time) -> None:
        self._inner.on_leave(label, now)

    def observe_loss(self, lost: ResourceSet, now: Time) -> None:
        self._inner.observe_loss(lost, now)

    def forfeit(self, label: str, now: Time) -> None:
        self._inner.forfeit(label, now)

    def retry_candidates(
        self, now: Time
    ) -> list[Tuple[str, ConcurrentRequirement]]:
        expired = [
            label
            for label, pending in self._pending.items()
            if pending.requirement.deadline <= now
        ]
        for label in expired:
            del self._pending[label]
        return [
            (pending.label, pending.requirement)
            for pending in self._pending.values()
            if pending.eligible_at <= now
        ]
