"""Start-point capacity baseline (parcPlan-style).

The paper's related work describes parcPlan as determining resource
feasibility "by checking the resource capacity constraint at starting
points of resource requests".  This baseline emulates that: it divides the
arrival's window evenly among its phases and checks, at each phase's
nominal starting instant, that the *instantaneous* rate then available
covers the phase's average required rate.

Two blind spots, by construction:

* no commitment tracking — capacity looks free even when an earlier
  admission will be consuming it (over-admission under load);
* instantaneous rates only — a burst of capacity just after the checked
  instant is invisible (under-admission on bursty profiles).

Both directions are measured in the accuracy benchmark.
"""

from __future__ import annotations

from repro.baselines.base import AdmissionPolicy, PolicyDecision
from repro.computation.requirements import ConcurrentRequirement
from repro.intervals.interval import Time
from repro.resources.profile import exact_div
from repro.resources.resource_set import ResourceSet


class StartPointAdmission(AdmissionPolicy):
    """Instantaneous-rate checks at nominal phase start points."""

    name = "startpoint"

    def __init__(self) -> None:
        self._available = ResourceSet.empty()

    def observe_resources(self, resources: ResourceSet, now: Time) -> None:
        self._available = self._available | resources

    def decide(self, requirement: ConcurrentRequirement, now: Time) -> PolicyDecision:
        if requirement.deadline <= now:
            return PolicyDecision(False, reason="deadline already passed")
        start = max(requirement.start, now)
        for component in requirement.components:
            phases = component.phases
            span = component.deadline - start
            if span <= 0:
                return PolicyDecision(False, reason="window already closed")
            slot = exact_div(span, len(phases))
            for index, demands in enumerate(phases):
                instant = start + slot * index
                required_rate_scale = slot
                for ltype, quantity in demands.items():
                    have = self._available.rate_at(ltype, instant)
                    need = exact_div(quantity, required_rate_scale)
                    if have < need:
                        return PolicyDecision(
                            False,
                            reason=(
                                f"rate of {ltype} at t={instant} is {have}, "
                                f"phase needs {need}"
                            ),
                        )
        return PolicyDecision(True)
