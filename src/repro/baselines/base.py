"""Admission-policy interface shared by ROTA and the baselines.

The paper's thesis is that reasoning about *future* resource availability
— not just instantaneous capacity or aggregate totals — is what makes
deadline assurance possible.  To make that claim measurable, every
admission approach (ROTA's and the related-work stand-ins) implements the
same small interface; the simulator feeds them identical event streams and
scores the outcomes.

A policy is *stateful*: it learns about resources as they join and about
its own earlier admissions, exactly like a real controller embedded in an
open system.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from repro.computation.requirements import ConcurrentRequirement
from repro.decision.schedule import ConcurrentSchedule
from repro.intervals.interval import Time
from repro.resources.resource_set import ResourceSet


@dataclass(frozen=True)
class PolicyDecision:
    """Admit/reject, optionally with a witness schedule (ROTA only)."""

    admitted: bool
    reason: str = ""
    schedule: Optional[ConcurrentSchedule] = None

    def __bool__(self) -> bool:
        return self.admitted


class AdmissionPolicy(abc.ABC):
    """Stateful admission controller fed by the simulator."""

    #: Short name used in reports and benchmark tables.
    name: str = "policy"

    @abc.abstractmethod
    def observe_resources(self, resources: ResourceSet, now: Time) -> None:
        """Resources joined the system at ``now``."""

    @abc.abstractmethod
    def decide(self, requirement: ConcurrentRequirement, now: Time) -> PolicyDecision:
        """Admit or reject an arrival; on admit, the policy must account
        for the commitment in its own state."""

    def on_leave(self, label: str, now: Time) -> None:
        """An admitted computation withdrew before starting (optional)."""

    def observe_loss(self, lost: ResourceSet, now: Time) -> None:
        """Capacity vanished unannounced at ``now`` (optional).

        Only called by fault-aware simulations running a recovery
        pipeline: honest recovery re-admits against *surviving* resources,
        so the policy's availability view must shrink.  Fault runs without
        recovery deliberately leave policies blind — measuring what the
        pre-declared-leave assumption is worth is their whole point.
        """

    def forfeit(self, label: str, now: Time) -> None:
        """An admitted computation's promise was violated (optional).

        The simulator evicted it; policies tracking commitments should
        release the victim's claims so re-admission sees the freed slack.
        """

    def admit_resources(self, resources: ResourceSet, now: Time) -> ResourceSet:
        """Screen a resource join before the system acquires it (optional).

        Returns the accepted part; anything withheld is recorded by the
        simulator as *shed* capacity — the ``+ shed`` leg of the extended
        conservation identity.  The default accepts everything; the
        service front door (:class:`repro.service.FrontDoorPolicy`)
        overrides this to wall off joins from enclaves whose circuit
        breaker is open.
        """
        return resources

    def retry_candidates(
        self, now: Time
    ) -> list[tuple[str, ConcurrentRequirement]]:
        """Previously rejected arrivals worth re-deciding now (optional).

        Called by the simulator after resources join.  Policies that keep
        a retry queue (see :class:`repro.baselines.retry.RetryingPolicy`)
        return ``(label, requirement)`` pairs; each is re-offered through
        :meth:`decide` and, on success, accommodated late — the paper's
        computations "seeking out new frontiers" as opportunity appears.
        """
        return []
