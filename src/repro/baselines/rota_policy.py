"""ROTA admission as a policy: the paper's contribution, pluggable.

Wraps :class:`repro.decision.admission.AdmissionController` (Theorem 4's
expiring-slack reasoning) behind the shared
:class:`~repro.baselines.base.AdmissionPolicy` interface, so it can be
raced head-to-head against the related-work baselines on identical event
streams.

Soundness property (checked by integration tests and the accuracy
benchmark): a computation this policy admits never misses its deadline,
provided the simulator executes with a reservation-following or
work-conserving allocation over the committed claims.
"""

from __future__ import annotations

from repro.baselines.base import AdmissionPolicy, PolicyDecision
from repro.computation.requirements import ConcurrentRequirement
from repro.decision.admission import AdmissionController
from repro.intervals.interval import Time
from repro.resources.resource_set import ResourceSet


class RotaAdmission(AdmissionPolicy):
    """Theorem 4 admission: check newcomers against expiring slack."""

    name = "rota"

    def __init__(self, *, exhaustive: bool = False, align: Time | None = 1) -> None:
        # ``align`` defaults to the simulator's standard slice of 1 so the
        # committed witnesses are executable by a slice-atomic scheduler;
        # pass None for exact (continuous-time) admission.
        self._controller = AdmissionController(align=align)
        self._exhaustive = exhaustive

    @property
    def controller(self) -> AdmissionController:
        """The underlying controller (exposed for inspection in tests)."""
        return self._controller

    def observe_resources(self, resources: ResourceSet, now: Time) -> None:
        self._controller.advance_to(now)
        self._controller.add_resources(resources)

    def decide(self, requirement: ConcurrentRequirement, now: Time) -> PolicyDecision:
        self._controller.advance_to(now)
        decision = self._controller.admit(requirement, exhaustive=self._exhaustive)
        if decision.admitted:
            return PolicyDecision(True, schedule=decision.schedule)
        return PolicyDecision(False, reason=decision.reason)

    def on_leave(self, label: str, now: Time) -> None:
        try:
            self._controller.withdraw(label, now=now)
        except Exception:
            # The simulator already validated the leave rule; a label the
            # controller tracked under a different key is not an error.
            pass

    def observe_loss(self, lost: ResourceSet, now: Time) -> None:
        self._controller.advance_to(now)
        self._controller.revoke_resources(lost)

    def forfeit(self, label: str, now: Time) -> None:
        self._controller.advance_to(now)
        try:
            self._controller.forfeit(label)
        except Exception:
            # A victim admitted by a wrapped/aliased label may be tracked
            # under a different key; eviction is best-effort by design.
            pass
