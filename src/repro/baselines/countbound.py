"""Single-count baseline (step logic / TRL / BMCL-style).

The paper criticises prior logics where "resources are represented by some
count, and usually only one type of resource is considered".  This
baseline collapses every located type into one undifferentiated pool: it
admits when the total quantity of *anything* available during the window
covers the newcomer's total demand plus outstanding commitments.

Expected failure mode: wildly over-admits whenever demand is concentrated
on one located type (CPU at one node cannot be paid for with bandwidth
elsewhere), demonstrating why ROTA reifies located types.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.baselines.base import AdmissionPolicy, PolicyDecision
from repro.computation.requirements import ConcurrentRequirement
from repro.intervals.interval import Interval, Time
from repro.resources.resource_set import ResourceSet


class CountBoundAdmission(AdmissionPolicy):
    """One global count, no types, no ordering."""

    name = "countbound"

    def __init__(self) -> None:
        self._available = ResourceSet.empty()
        self._commitments: List[Tuple[Interval, Time]] = []

    def observe_resources(self, resources: ResourceSet, now: Time) -> None:
        self._available = self._available | resources

    def decide(self, requirement: ConcurrentRequirement, now: Time) -> PolicyDecision:
        if requirement.deadline <= now:
            return PolicyDecision(False, reason="deadline already passed")
        window = Interval(max(requirement.start, now), requirement.deadline)
        pool = sum(
            self._available.quantity(ltype, window)
            for ltype in self._available.located_types
        )
        committed = sum(
            amount
            for other_window, amount in self._commitments
            if window.overlaps(other_window)
        )
        demand = requirement.total_demands.total
        if pool < committed + demand:
            return PolicyDecision(
                False, reason=f"count bound: pool {pool} < {committed + demand}"
            )
        self._commitments.append((window, demand))
        return PolicyDecision(True)
