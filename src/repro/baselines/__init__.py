"""Admission policies: ROTA vs related-work stand-ins.

* :class:`RotaAdmission` — Theorem 4 expiring-slack reasoning (the paper).
* :class:`AggregateAdmission` — order-blind totals (the unsound check
  Section III warns about).
* :class:`StartPointAdmission` — parcPlan-style instantaneous capacity at
  request start points.
* :class:`CountBoundAdmission` — step-logic/TRL/BMCL-style single count.
* :class:`OptimisticAdmission` — admit everything.
"""

from repro.baselines.aggregate import AggregateAdmission
from repro.baselines.base import AdmissionPolicy, PolicyDecision
from repro.baselines.countbound import CountBoundAdmission
from repro.baselines.optimistic import OptimisticAdmission
from repro.baselines.retry import RetryingPolicy
from repro.baselines.rota_policy import RotaAdmission
from repro.baselines.startpoint import StartPointAdmission

ALL_POLICIES = (
    RotaAdmission,
    AggregateAdmission,
    StartPointAdmission,
    CountBoundAdmission,
    OptimisticAdmission,
)

__all__ = [
    "AdmissionPolicy",
    "PolicyDecision",
    "RetryingPolicy",
    "RotaAdmission",
    "AggregateAdmission",
    "StartPointAdmission",
    "CountBoundAdmission",
    "OptimisticAdmission",
    "ALL_POLICIES",
]
