"""Computation representation (paper Section IV).

Actors, actions, the cost function ``Phi`` (pluggable cost models), demand
maps, and the three requirement levels ``rho(gamma/Gamma/Lambda, s, d)``.
"""

from repro.computation.actions import (
    ACTION_KINDS,
    Action,
    Create,
    Evaluate,
    Migrate,
    Ready,
    Send,
)
from repro.computation.actor import (
    ActionRequirement,
    Actor,
    ActorComputation,
    Phase,
    derive_requirements,
)
from repro.computation.computation import (
    Computation,
    concurrent,
    from_phase_demands,
    sequential,
)
from repro.computation.cost_model import (
    CallableCostModel,
    CostModel,
    DEFAULT_COST_MODEL,
    Placement,
    ScaledCostModel,
    StandardCostModel,
)
from repro.computation.demands import NO_DEMAND, Demands

__all__ = [
    "ACTION_KINDS",
    "Action",
    "Create",
    "Evaluate",
    "Migrate",
    "Ready",
    "Send",
    "ActionRequirement",
    "Actor",
    "ActorComputation",
    "Phase",
    "derive_requirements",
    "Computation",
    "concurrent",
    "from_phase_demands",
    "sequential",
    "CallableCostModel",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "Placement",
    "ScaledCostModel",
    "StandardCostModel",
    "NO_DEMAND",
    "Demands",
]

from repro.computation.requirements import (  # noqa: E402  (re-export)
    ComplexRequirement,
    ConcurrentRequirement,
    SimpleRequirement,
)

__all__ += ["ComplexRequirement", "ConcurrentRequirement", "SimpleRequirement"]

from repro.computation.interaction import (  # noqa: E402  (re-export)
    SegmentedRequirement,
    Wait,
    request_reply,
)

__all__ += ["SegmentedRequirement", "Wait", "request_reply"]
