"""Actors and their derived resource-requirement sequences (Section IV).

The paper abstracts away *what* a computation does and keeps only the
resources each step needs: "we use a sequence of these resource
requirements to refer an actor."  :class:`Actor` holds the behavioural
sequence; :func:`derive_requirements` folds the cost model over it —
tracking the actor's location across ``migrate`` actions — to produce the
sequence of :class:`ActionRequirement` amounts; and
:class:`ActorComputation` (the paper's ``Gamma``) groups that sequence
into ordered *phases* (the paper's subcomputations ``Gamma_1..Gamma_m``).

Phase grouping rule (paper, Section IV-B.2): consecutive actions that
require "the same single type of resource" need not be broken into
separate subcomputations — possessing the total quantity within an
interval already guarantees completion.  Actions demanding multiple types
(e.g. ``migrate``) form phases of their own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.computation.actions import Action, Migrate
from repro.computation.cost_model import CostModel, DEFAULT_COST_MODEL, Placement
from repro.computation.demands import Demands
from repro.errors import InvalidComputationError
from repro.resources.located_type import Node


@dataclass(frozen=True)
class Actor:
    """A named actor with a home location and a behaviour sequence."""

    name: str
    home: Node
    behaviour: tuple[Action, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidComputationError("actor name must be non-empty")
        if not isinstance(self.home, Node):
            raise InvalidComputationError(
                f"actor home must be a Node, got {self.home!r}"
            )
        object.__setattr__(self, "behaviour", tuple(self.behaviour))

    @property
    def final_location(self) -> Node:
        """Where the actor ends up after executing its behaviour."""
        location = self.home
        for action in self.behaviour:
            if isinstance(action, Migrate):
                location = action.destination
        return location

    def with_actions(self, *actions: Action) -> "Actor":
        """A copy with actions appended (builder convenience)."""
        return Actor(self.name, self.home, self.behaviour + tuple(actions))


@dataclass(frozen=True)
class ActionRequirement:
    """One action bound to its resolved resource amounts ``Phi(a, gamma)``."""

    action: Action
    demands: Demands
    location: Node  # where the actor is when the action runs


def derive_requirements(
    actor: Actor,
    placement: Placement | None = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> tuple[ActionRequirement, ...]:
    """Resolve ``Phi`` over the actor's behaviour, tracking migrations.

    ``placement`` resolves the locations of *other* actors (message
    receivers); the subject actor's own location evolves from ``home``
    through each ``migrate``.
    """
    placement = placement or Placement({actor.name: actor.home})
    location = actor.home
    out: list[ActionRequirement] = []
    for action in actor.behaviour:
        demands = cost_model.requirements(action, location, placement)
        out.append(ActionRequirement(action, demands, location))
        if isinstance(action, Migrate):
            location = action.destination
    return tuple(out)


@dataclass(frozen=True)
class Phase:
    """A maximal run of the requirement sequence treated as one
    subcomputation: its demands may be consumed in any order within the
    phase's eventual subinterval."""

    demands: Demands
    actions: tuple[Action, ...]

    @property
    def is_empty(self) -> bool:
        return self.demands.is_empty


class ActorComputation:
    """The paper's ``Gamma``: an actor's computation as ordered phases.

    Iterable over :class:`Phase`; exposes both the fine-grained action
    requirements and the merged phase view used by Theorem 2 reasoning.
    """

    def __init__(self, actor: Actor, requirements: Sequence[ActionRequirement]) -> None:
        self._actor = actor
        self._requirements = tuple(requirements)
        self._phases = _group_phases(self._requirements)

    # ------------------------------------------------------------------
    @classmethod
    def derive(
        cls,
        actor: Actor,
        placement: Placement | None = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> "ActorComputation":
        """Build from an actor via the cost model (the usual entry point)."""
        return cls(actor, derive_requirements(actor, placement, cost_model))

    @classmethod
    def from_phases(cls, actor: Actor, phases: Iterable[Demands]) -> "ActorComputation":
        """Build directly from explicit phase demands (for tests and
        workloads that bypass the action layer)."""
        instance = cls.__new__(cls)
        instance._actor = actor
        instance._requirements = ()
        instance._phases = tuple(
            Phase(Demands(d), ()) for d in phases if not Demands(d).is_empty
        )
        return instance

    # ------------------------------------------------------------------
    @property
    def actor(self) -> Actor:
        return self._actor

    @property
    def name(self) -> str:
        return self._actor.name

    @property
    def requirements(self) -> tuple[ActionRequirement, ...]:
        """Per-action demands, in execution order."""
        return self._requirements

    @property
    def phases(self) -> tuple[Phase, ...]:
        """The subcomputations ``Gamma_1 .. Gamma_m``."""
        return self._phases

    @property
    def phase_count(self) -> int:
        return len(self._phases)

    @property
    def total_demands(self) -> Demands:
        """Aggregate demand ignoring ordering (baseline view)."""
        total = Demands()
        for phase in self._phases:
            total = total.merge(phase.demands)
        return total

    @property
    def is_empty(self) -> bool:
        return not self._phases

    def __iter__(self) -> Iterator[Phase]:
        return iter(self._phases)

    def __len__(self) -> int:
        return len(self._phases)

    def __repr__(self) -> str:
        return (
            f"ActorComputation({self._actor.name!r}, "
            f"{len(self._phases)} phases)"
        )


def _group_phases(requirements: Sequence[ActionRequirement]) -> tuple[Phase, ...]:
    """Merge consecutive single-type requirements of the same located type."""
    phases: list[Phase] = []
    for req in requirements:
        if req.demands.is_empty:
            continue
        if (
            phases
            and req.demands.is_single_type
            and phases[-1].demands.is_single_type
            and phases[-1].demands.located_types() == req.demands.located_types()
        ):
            last = phases[-1]
            phases[-1] = Phase(
                last.demands.merge(req.demands), last.actions + (req.action,)
            )
        else:
            phases.append(Phase(req.demands, (req.action,)))
    return tuple(phases)
