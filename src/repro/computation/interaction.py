"""Interacting actors: computations segmented by waits (Section VI).

The paper's first future-work item: ROTA "does not address the wider
range of actor computations where actors can interact", and proposes "to
break down an actor's computation into sequences of independent
computations separated by states in which it is waiting to hear back from
a blocking operation".

This module implements exactly that decomposition:

* a :class:`Wait` separates two segments: the actor blocks on a reply
  (message receive, blocking ``create``), with a *bounded* delay
  ``[min_delay, max_delay]`` — the bound is what keeps deadline assurance
  possible despite "unpredictable delays";
* a :class:`SegmentedRequirement` is an alternating sequence
  ``segment (wait segment)*`` inside one ``(s, d)`` window.

The decision procedure (:mod:`repro.decision.segmented`) reasons with the
*worst-case* delay of every wait: if the requirement is feasible under
maximal delays, it is feasible under any admissible delays — executing a
segment later than its earliest readiness is always allowed, so the
claimed (worst-case-positioned) resources remain usable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

from repro.computation.demands import Demands
from repro.computation.requirements import ComplexRequirement
from repro.errors import InvalidComputationError
from repro.intervals.interval import Interval, Time


@dataclass(frozen=True)
class Wait:
    """A blocking pause between segments with bounded reply delay."""

    min_delay: Time = 0
    max_delay: Time = 0
    reason: str = "reply"

    def __post_init__(self) -> None:
        if self.min_delay < 0:
            raise InvalidComputationError("wait min_delay must be >= 0")
        if self.max_delay < self.min_delay:
            raise InvalidComputationError(
                f"wait max_delay {self.max_delay!r} must be >= min_delay "
                f"{self.min_delay!r}"
            )


class SegmentedRequirement:
    """``segment (wait segment)*`` within one window.

    Each segment is an ordered phase list (the same shape as a
    :class:`ComplexRequirement`); each wait bounds the pause before the
    next segment may begin.
    """

    __slots__ = ("_segments", "_waits", "_window", "_label")

    def __init__(
        self,
        segments: Sequence[Sequence[Demands]],
        waits: Sequence[Wait],
        window: Interval,
        label: str = "",
    ) -> None:
        if window.is_empty:
            raise InvalidComputationError("window must be non-empty")
        cleaned: list[Tuple[Demands, ...]] = []
        for segment in segments:
            phases = tuple(Demands(p) for p in segment)
            phases = tuple(p for p in phases if not p.is_empty)
            if not phases:
                raise InvalidComputationError(
                    "every segment needs at least one non-empty phase"
                )
            cleaned.append(phases)
        if not cleaned:
            raise InvalidComputationError("need at least one segment")
        if len(waits) != len(cleaned) - 1:
            raise InvalidComputationError(
                f"expected {len(cleaned) - 1} waits between {len(cleaned)} "
                f"segments, got {len(waits)}"
            )
        self._segments = tuple(cleaned)
        self._waits = tuple(waits)
        self._window = window
        self._label = label

    # ------------------------------------------------------------------
    @property
    def segments(self) -> tuple[Tuple[Demands, ...], ...]:
        return self._segments

    @property
    def waits(self) -> tuple[Wait, ...]:
        return self._waits

    @property
    def window(self) -> Interval:
        return self._window

    @property
    def start(self) -> Time:
        return self._window.start

    @property
    def deadline(self) -> Time:
        return self._window.end

    @property
    def label(self) -> str:
        return self._label

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    @property
    def total_worst_case_wait(self) -> Time:
        return sum((w.max_delay for w in self._waits), 0)

    @property
    def total_demands(self) -> Demands:
        total = Demands()
        for segment in self._segments:
            for phase in segment:
                total = total.merge(phase)
        return total

    def segment_requirement(self, index: int, start: Time) -> ComplexRequirement:
        """Segment ``index`` as a plain complex requirement released at
        ``start`` (used by the decision procedure)."""
        return ComplexRequirement(
            self._segments[index],
            Interval(start, self.deadline),
            label=f"{self._label or 'seg'}[{index}]",
        )

    def flattened(self) -> ComplexRequirement:
        """The wait-free flattening: the same phases with no pauses.  The
        optimistic bound — useful as a baseline and for lower-bounding the
        finish time."""
        phases: list[Demands] = []
        for segment in self._segments:
            phases.extend(segment)
        return ComplexRequirement(phases, self._window, label=self._label)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SegmentedRequirement):
            return NotImplemented
        return (
            self._segments == other._segments
            and self._waits == other._waits
            and self._window == other._window
            and self._label == other._label
        )

    def __hash__(self) -> int:
        return hash((self._segments, self._waits, self._window, self._label))

    def __repr__(self) -> str:
        return (
            f"SegmentedRequirement({self._label or '?'}: "
            f"{len(self._segments)} segments, {self._window})"
        )


def request_reply(
    request: Iterable[Demands],
    reply_handling: Iterable[Demands],
    *,
    window: Interval,
    max_delay: Time,
    min_delay: Time = 0,
    label: str = "",
) -> SegmentedRequirement:
    """The common two-segment shape: do work, await a reply, handle it."""
    return SegmentedRequirement(
        [list(request), list(reply_handling)],
        [Wait(min_delay, max_delay)],
        window,
        label=label,
    )
