"""The cost function ``Phi`` (paper Section IV-A).

``Phi(a, action)`` maps an actor's action to the set of resource amounts
required to complete it.  The paper treats ``Phi`` as given ("any-time
algorithms, approximate algorithms ... estimates could be used and revised
as necessary"); here it is a pluggable strategy object.

:class:`StandardCostModel` reproduces the paper's illustrative amounts:

===========  =======================================================
``send``     4 units of ``<network, l(sender) -> l(receiver)>``
``evaluate`` 8 units of ``<cpu, l(actor)>``
``create``   5 units of ``<cpu, l(actor)>``
``ready``    1 unit  of ``<cpu, l(actor)>``
``migrate``  3 cpu at the source + 6 network + 3 cpu at the target
===========  =======================================================

(The paper leaves migrate's network amount as ``[.]``; we use 6 and record
the choice in EXPERIMENTS.md.)  Amounts scale linearly with the action's
``work``/``size`` where it has one.

Location resolution: an action's located types depend on where the actor
(and, for ``send``, the receiver) is at the moment the action runs.  Cost
models therefore receive the sender's current location and a
:class:`Placement` for resolving other actors.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping

from repro.computation.actions import Action, Create, Evaluate, Migrate, Ready, Send
from repro.computation.demands import Demands
from repro.errors import InvalidComputationError
from repro.intervals.interval import Time
from repro.resources.located_type import Node, cpu, network


class Placement:
    """Where each actor lives: the paper's location function ``l``.

    Mutable by design — the simulator updates it when actors migrate.
    """

    def __init__(self, locations: Mapping[str, Node] | None = None) -> None:
        self._locations: Dict[str, Node] = dict(locations or {})

    def locate(self, actor_name: str) -> Node:
        """``l(a)`` — the location of the named actor."""
        try:
            return self._locations[actor_name]
        except KeyError:
            raise InvalidComputationError(
                f"no known location for actor {actor_name!r}"
            ) from None

    def place(self, actor_name: str, location: Node) -> None:
        self._locations[actor_name] = location

    def knows(self, actor_name: str) -> bool:
        return actor_name in self._locations

    def copy(self) -> "Placement":
        return Placement(self._locations)

    def __repr__(self) -> str:
        inner = ", ".join(f"{a}@{n}" for a, n in self._locations.items())
        return f"Placement({inner})"


class CostModel(abc.ABC):
    """Strategy interface for the paper's ``Phi`` function."""

    @abc.abstractmethod
    def requirements(
        self, action: Action, location: Node, placement: Placement
    ) -> Demands:
        """Resource amounts for ``action`` executed by an actor currently
        at ``location``, with other actors resolved through ``placement``.
        """

    def phi(self, actor_location: Node, action: Action, placement: Placement) -> Demands:
        """Alias matching the paper's ``Phi(a, action)`` reading order."""
        return self.requirements(action, actor_location, placement)


@dataclass(frozen=True)
class StandardCostModel(CostModel):
    """The paper's illustrative amounts, linearly scaled by action size.

    All amounts are per-unit-of-work; override any field to recalibrate.
    """

    evaluate_cpu: Time = 8
    send_network: Time = 4
    create_cpu: Time = 5
    ready_cpu: Time = 1
    migrate_cpu_out: Time = 3
    migrate_network: Time = 6
    migrate_cpu_in: Time = 3

    def requirements(
        self, action: Action, location: Node, placement: Placement
    ) -> Demands:
        if isinstance(action, Evaluate):
            return Demands({cpu(location): self.evaluate_cpu * action.work})
        if isinstance(action, Send):
            destination = placement.locate(action.target)
            if destination == location:
                # Local delivery costs CPU rather than network bandwidth.
                return Demands({cpu(location): self.ready_cpu * action.size})
            link = network(location, destination)
            return Demands({link: self.send_network * action.size})
        if isinstance(action, Create):
            return Demands({cpu(location): self.create_cpu})
        if isinstance(action, Ready):
            return Demands({cpu(location): self.ready_cpu})
        if isinstance(action, Migrate):
            if action.destination == location:
                # Migrating to the current location degenerates to a no-op
                # state commit.
                return Demands({cpu(location): self.ready_cpu})
            return Demands(
                {
                    cpu(location): self.migrate_cpu_out * action.size,
                    network(location, action.destination): self.migrate_network
                    * action.size,
                    cpu(action.destination): self.migrate_cpu_in * action.size,
                }
            )
        raise InvalidComputationError(f"unknown action {action!r}")


@dataclass(frozen=True)
class CallableCostModel(CostModel):
    """Adapts a plain function ``(action, location, placement) -> Demands``."""

    fn: Callable[[Action, Node, Placement], Demands]

    def requirements(
        self, action: Action, location: Node, placement: Placement
    ) -> Demands:
        return Demands(self.fn(action, location, placement))


@dataclass(frozen=True)
class ScaledCostModel(CostModel):
    """Wraps another model, multiplying every amount by ``factor``.

    Useful for modelling heterogeneous hardware or estimate inflation
    ("estimates could be used and revised as necessary").
    """

    inner: CostModel
    factor: Time = 1

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise InvalidComputationError("cost scale factor must be positive")

    def requirements(
        self, action: Action, location: Node, placement: Placement
    ) -> Demands:
        return self.inner.requirements(action, location, placement).scale(self.factor)


#: Default model used across examples and tests.
DEFAULT_COST_MODEL = StandardCostModel()
