"""Distributed computations ``(Lambda, s, d)`` (paper Section IV-B).

A distributed computation is a triple of a multi-actor computation
``Lambda``, an earliest start time ``s``, and a deadline ``d``.  The
actors are independent (created en masse, never waiting on each other) and
do not migrate for resource reasons, so their requirement sequences are
fully determined by the cost model and the initial placement.

:class:`Computation` binds actors to a window and derives the
:class:`~repro.computation.requirements.ConcurrentRequirement` the
decision procedures and the logic operate on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.computation.actor import Actor, ActorComputation
from repro.computation.cost_model import CostModel, DEFAULT_COST_MODEL, Placement
from repro.computation.demands import Demands
from repro.computation.requirements import (
    ComplexRequirement,
    ConcurrentRequirement,
)
from repro.errors import InvalidComputationError
from repro.intervals.interval import Interval, Time

_counter = itertools.count(1)


def _default_name() -> str:
    return f"computation-{next(_counter)}"


@dataclass(frozen=True)
class Computation:
    """The paper's ``(Lambda, s, d)`` triple.

    ``actors`` is the multi-actor computation Lambda; ``window`` carries
    the earliest start ``s`` and the deadline ``d``.  Construction
    validates the triple; :meth:`requirement` derives ``rho(Lambda, s, d)``
    against a cost model.
    """

    actors: tuple[Actor, ...]
    window: Interval
    name: str = field(default_factory=_default_name)

    def __post_init__(self) -> None:
        object.__setattr__(self, "actors", tuple(self.actors))
        if not self.actors:
            raise InvalidComputationError("a computation needs at least one actor")
        if self.window.is_empty:
            raise InvalidComputationError(
                f"computation window must be non-empty, got {self.window}"
            )
        names = [a.name for a in self.actors]
        if len(set(names)) != len(names):
            raise InvalidComputationError(
                f"actor names must be globally unique, got duplicates in {names}"
            )
        for actor in self.actors:
            if not actor.behaviour:
                raise InvalidComputationError(
                    f"actor {actor.name!r} has an empty behaviour"
                )

    # ------------------------------------------------------------------
    @property
    def start(self) -> Time:
        """``s`` — the computation does not seek to begin before this."""
        return self.window.start

    @property
    def deadline(self) -> Time:
        """``d`` — the computation seeks to complete before this."""
        return self.window.end

    @property
    def is_sequential(self) -> bool:
        """True for single-actor computations (Theorem 2's setting)."""
        return len(self.actors) == 1

    def default_placement(self) -> Placement:
        """Each actor at its home location."""
        return Placement({actor.name: actor.home for actor in self.actors})

    # ------------------------------------------------------------------
    def actor_computations(
        self,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        placement: Placement | None = None,
    ) -> tuple[ActorComputation, ...]:
        """Derive each actor's ``Gamma`` under the cost model."""
        placement = placement or self.default_placement()
        return tuple(
            ActorComputation.derive(actor, placement, cost_model)
            for actor in self.actors
        )

    def requirement(
        self,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        placement: Placement | None = None,
    ) -> ConcurrentRequirement:
        """``rho(Lambda, s, d)`` — the requirement the system must satisfy."""
        components = tuple(
            ComplexRequirement.from_computation(gamma, self.window)
            for gamma in self.actor_computations(cost_model, placement)
        )
        return ConcurrentRequirement(components, self.window)

    def __iter__(self) -> Iterator[Actor]:
        return iter(self.actors)

    def __len__(self) -> int:
        return len(self.actors)


def sequential(
    actor: Actor, start: Time, deadline: Time, name: str | None = None
) -> Computation:
    """Single-actor computation ``(Gamma, s, d)``."""
    return Computation((actor,), Interval(start, deadline), name or _default_name())


def concurrent(
    actors: Sequence[Actor], start: Time, deadline: Time, name: str | None = None
) -> Computation:
    """Multi-actor computation ``(Lambda, s, d)``."""
    return Computation(tuple(actors), Interval(start, deadline), name or _default_name())


def from_phase_demands(
    phases_per_actor: Iterable[Sequence[Demands]],
    start: Time,
    deadline: Time,
    name: str | None = None,
) -> ConcurrentRequirement:
    """Build a concurrent requirement straight from phase demand lists,
    bypassing the action layer (workload-generator entry point)."""
    window = Interval(start, deadline)
    components = []
    for index, phases in enumerate(phases_per_actor):
        components.append(
            ComplexRequirement(phases, window, label=f"{name or 'lambda'}[{index}]")
        )
    return ConcurrentRequirement(tuple(components), window)
