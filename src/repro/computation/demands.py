"""Immutable demand maps: located type -> required quantity.

The paper's cost function ``Phi`` returns "a set of resource amounts",
each written ``{q}_xi``.  :class:`Demands` is that set as a value object:
an immutable mapping from :class:`~repro.resources.located_type.LocatedType`
to a non-negative quantity, with the arithmetic requirement composition
needs (merge by addition, scaling, subtraction with floor at zero).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Tuple, Union

from repro.errors import InvalidComputationError
from repro.intervals.interval import Time
from repro.resources.located_type import LocatedType

DemandsLike = Union["Demands", Mapping[LocatedType, Time], Iterable[Tuple[LocatedType, Time]]]


class Demands(Mapping[LocatedType, Time]):
    """An immutable ``{q1}_xi1, {q2}_xi2, ...`` amount set.

    Zero-quantity entries are dropped on construction so that equality
    means "same effective demand".
    """

    __slots__ = ("_items", "_hash")

    def __init__(self, items: DemandsLike = ()) -> None:
        if isinstance(items, Demands):
            pairs: Iterable[Tuple[LocatedType, Time]] = items.items()
        elif isinstance(items, Mapping):
            pairs = items.items()
        else:
            pairs = items
        merged: dict[LocatedType, Time] = {}
        for ltype, quantity in pairs:
            if not isinstance(ltype, LocatedType):
                raise InvalidComputationError(
                    f"demand key must be a LocatedType, got {ltype!r}"
                )
            if quantity < 0:
                raise InvalidComputationError(
                    f"demand quantity must be >= 0, got {quantity!r} for {ltype}"
                )
            if quantity == 0:
                continue
            merged[ltype] = merged.get(ltype, 0) + quantity
        self._items: dict[LocatedType, Time] = merged
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # Mapping protocol
    # ------------------------------------------------------------------
    def __getitem__(self, key: LocatedType) -> Time:
        return self._items[key]

    def __iter__(self) -> Iterator[LocatedType]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def get(self, key: LocatedType, default: Time = 0) -> Time:  # type: ignore[override]
        return self._items.get(key, default)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def is_single_type(self) -> bool:
        """Whether the demand involves exactly one located type.

        The paper notes that consecutive actions demanding one and the
        same single resource type need not be split into separate
        subcomputations; this predicate drives that phase merging.
        """
        return len(self._items) == 1

    @property
    def total(self) -> Time:
        """Sum of quantities across all types (the single-count view used
        by the BMCL/TRL-style baseline)."""
        return sum(self._items.values())

    def located_types(self) -> tuple[LocatedType, ...]:
        return tuple(self._items)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def merge(self, other: DemandsLike) -> "Demands":
        """Pointwise sum of two demand maps."""
        other = Demands(other)
        combined = dict(self._items)
        for ltype, quantity in other.items():
            combined[ltype] = combined.get(ltype, 0) + quantity
        return Demands(combined)

    def scale(self, factor: Time) -> "Demands":
        if factor < 0:
            raise InvalidComputationError("scale factor must be >= 0")
        return Demands({lt: q * factor for lt, q in self._items.items()})

    def saturating_sub(self, other: DemandsLike) -> "Demands":
        """Pointwise ``max(0, self - other)`` — demand remaining after some
        consumption.  Over-supply of one type never creates credit."""
        other = Demands(other)
        return Demands(
            {lt: max(0, q - other.get(lt, 0)) for lt, q in self._items.items()}
        )

    def __add__(self, other: DemandsLike) -> "Demands":
        return self.merge(other)

    # ------------------------------------------------------------------
    # Value semantics
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Demands):
            return self._items == other._items
        if isinstance(other, Mapping):
            return self._items == {k: v for k, v in other.items() if v != 0}
        return NotImplemented

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._items.items()))
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{{{q}}}_{lt}" for lt, q in self._items.items())
        return f"Demands({inner})"


#: The empty demand.
NO_DEMAND = Demands()
