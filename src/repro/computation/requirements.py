"""Resource requirements ``rho`` (paper Section IV-B).

Three levels, mirroring the paper exactly:

* :class:`SimpleRequirement` — ``rho(gamma, s, d)``: one action's amounts
  needed somewhere inside window ``(s, d)``.
* :class:`ComplexRequirement` — ``rho(Gamma, s, d)``: an actor's ordered
  phases, each of which must be satisfied inside its own subinterval of
  ``(s, d)``; the subinterval boundaries (the paper's ``t_1..t_{m-1}``)
  are *not* fixed in advance — finding them is the decision problem of
  Theorem 2.
* :class:`ConcurrentRequirement` — ``rho(Lambda, s, d)``: independent
  actors' complex requirements overlapping on the same window.

The satisfaction function ``f(Theta, rho(gamma, s, d))`` of the paper is
:meth:`SimpleRequirement.satisfied_by`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.computation.actor import ActorComputation
from repro.computation.demands import Demands
from repro.errors import InvalidComputationError
from repro.intervals.interval import Interval, Time
from repro.resources.resource_set import ResourceSet


def _check_window(window: Interval) -> None:
    if window.is_empty:
        raise InvalidComputationError(
            f"requirement window must be non-empty, got {window}"
        )


@dataclass(frozen=True)
class SimpleRequirement:
    """``rho(gamma, s, d) = [Phi(a, gamma)]^{(s,d)}``."""

    demands: Demands
    window: Interval

    def __post_init__(self) -> None:
        _check_window(self.window)

    @property
    def start(self) -> Time:
        return self.window.start

    @property
    def deadline(self) -> Time:
        return self.window.end

    def satisfied_by(self, available: ResourceSet) -> bool:
        """The paper's ``f(Theta, rho(gamma, s, d))``: for every located
        type, the quantity of it existing within the window covers the
        demand (``U_s^d Theta >= Phi(gamma)``)."""
        return available.can_supply(self.demands, self.window)

    def __repr__(self) -> str:
        return f"SimpleRequirement({self.demands!r}, {self.window})"


class ComplexRequirement:
    """``rho(Gamma, s, d)``: ordered phases within a shared window."""

    __slots__ = ("_phases", "_window", "_label")

    def __init__(
        self,
        phases: Iterable[Demands],
        window: Interval,
        label: str = "",
    ) -> None:
        _check_window(window)
        cleaned = tuple(Demands(p) for p in phases)
        cleaned = tuple(p for p in cleaned if not p.is_empty)
        if not cleaned:
            raise InvalidComputationError(
                "a complex requirement needs at least one non-empty phase"
            )
        self._phases = cleaned
        self._window = window
        self._label = label

    # ------------------------------------------------------------------
    @classmethod
    def from_computation(
        cls, computation: ActorComputation, window: Interval
    ) -> "ComplexRequirement":
        """``rho`` applied to an actor computation."""
        return cls(
            (phase.demands for phase in computation.phases),
            window,
            label=computation.name,
        )

    # ------------------------------------------------------------------
    @property
    def phases(self) -> tuple[Demands, ...]:
        return self._phases

    @property
    def window(self) -> Interval:
        return self._window

    @property
    def start(self) -> Time:
        return self._window.start

    @property
    def deadline(self) -> Time:
        return self._window.end

    @property
    def label(self) -> str:
        """The owning actor's name, when derived from one."""
        return self._label

    @property
    def phase_count(self) -> int:
        return len(self._phases)

    @property
    def total_demands(self) -> Demands:
        """Order-blind aggregate over all phases."""
        total = Demands()
        for phase in self._phases:
            total = total.merge(phase)
        return total

    def simple(self, index: int, window: Interval) -> SimpleRequirement:
        """The ``index``-th phase pinned to a concrete subinterval — one
        term of the paper's decomposition ``rho(Gamma_1, s, t_1) ...``."""
        return SimpleRequirement(self._phases[index], window)

    def decompose(self, breakpoints: Sequence[Time]) -> tuple[SimpleRequirement, ...]:
        """Pin every phase using the given interior breakpoints
        ``t_1 < ... < t_{m-1}`` (Theorem 2's witnesses).

        ``len(breakpoints)`` must be ``phase_count - 1`` and the points
        must be non-decreasing within the window.
        """
        if len(breakpoints) != len(self._phases) - 1:
            raise InvalidComputationError(
                f"expected {len(self._phases) - 1} breakpoints, got {len(breakpoints)}"
            )
        bounds = [self.start, *breakpoints, self.deadline]
        for earlier, later in zip(bounds, bounds[1:]):
            if earlier > later:
                raise InvalidComputationError(
                    f"breakpoints must be non-decreasing within the window, got {bounds}"
                )
        pinned: list[SimpleRequirement] = []
        for i, phase in enumerate(self._phases):
            if bounds[i] >= bounds[i + 1]:
                raise InvalidComputationError(
                    f"phase {i} was assigned an empty subinterval "
                    f"({bounds[i]}, {bounds[i + 1]}) but has demand {phase!r}"
                )
            pinned.append(SimpleRequirement(phase, Interval(bounds[i], bounds[i + 1])))
        return tuple(pinned)

    def __iter__(self) -> Iterator[Demands]:
        return iter(self._phases)

    def __len__(self) -> int:
        return len(self._phases)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ComplexRequirement):
            return NotImplemented
        return (
            self._phases == other._phases
            and self._window == other._window
            and self._label == other._label
        )

    def __hash__(self) -> int:
        return hash((self._phases, self._window, self._label))

    def __repr__(self) -> str:
        return (
            f"ComplexRequirement({self._label or '?'}: {len(self._phases)} phases, "
            f"{self._window})"
        )


class ConcurrentRequirement:
    """``rho(Lambda, s, d)``: independent actors sharing one window."""

    __slots__ = ("_components", "_window")

    def __init__(
        self, components: Iterable[ComplexRequirement], window: Interval
    ) -> None:
        _check_window(window)
        parts = tuple(components)
        if not parts:
            raise InvalidComputationError(
                "a concurrent requirement needs at least one component"
            )
        for part in parts:
            if not window.contains(part.window):
                raise InvalidComputationError(
                    f"component window {part.window} exceeds computation window {window}"
                )
        self._components = parts
        self._window = window

    @property
    def components(self) -> tuple[ComplexRequirement, ...]:
        return self._components

    @property
    def window(self) -> Interval:
        return self._window

    @property
    def start(self) -> Time:
        return self._window.start

    @property
    def deadline(self) -> Time:
        return self._window.end

    @property
    def total_demands(self) -> Demands:
        total = Demands()
        for part in self._components:
            total = total.merge(part.total_demands)
        return total

    def __iter__(self) -> Iterator[ComplexRequirement]:
        return iter(self._components)

    def __len__(self) -> int:
        return len(self._components)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConcurrentRequirement):
            return NotImplemented
        return self._components == other._components and self._window == other._window

    def __hash__(self) -> int:
        return hash((self._components, self._window))

    def __repr__(self) -> str:
        return (
            f"ConcurrentRequirement({len(self._components)} actors, {self._window})"
        )
