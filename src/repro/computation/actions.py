"""Actor actions (paper Section IV-A).

An actor's behaviour is a sequence of five primitive actions:

* :class:`Evaluate` — evaluate an expression (CPU at the actor's location),
* :class:`Send` — send an asynchronous message to another actor
  (network from sender's to receiver's location),
* :class:`Create` — create a new actor with a predefined behaviour (CPU),
* :class:`Ready` — change state and become ready for the next message (CPU),
* :class:`Migrate` — move to another location and resume there (CPU at the
  source to serialise, network to ship the state, CPU at the destination
  to deserialise).

Actions are pure descriptions; the resources they need are assigned by a
cost model (the paper's ``Phi``), and locations are resolved against a
placement at requirement-derivation time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import InvalidComputationError
from repro.resources.located_type import Node


def _positive(value: object, what: str) -> None:
    if not isinstance(value, (int, float)) or value <= 0:
        raise InvalidComputationError(f"{what} must be a positive number, got {value!r}")


@dataclass(frozen=True)
class Evaluate:
    """``evaluate(e)`` — local computation.

    ``work`` scales the CPU cost: an expression with ``work=2`` costs twice
    the model's base evaluate amount.
    """

    expression: str = "e"
    work: float = 1

    def __post_init__(self) -> None:
        _positive(self.work, "evaluate work")

    @property
    def kind(self) -> str:
        return "evaluate"


@dataclass(frozen=True)
class Send:
    """``send(target, message)`` — asynchronous point-to-point message.

    ``size`` scales the network cost with the message payload.
    """

    target: str
    message: str = "m"
    size: float = 1

    def __post_init__(self) -> None:
        if not self.target:
            raise InvalidComputationError("send target must be a non-empty actor name")
        _positive(self.size, "message size")

    @property
    def kind(self) -> str:
        return "send"


@dataclass(frozen=True)
class Create:
    """``create(behaviour)`` — spawn a new actor locally."""

    behaviour: str = "b"

    @property
    def kind(self) -> str:
        return "create"


@dataclass(frozen=True)
class Ready:
    """``ready(state)`` — commit state, ready for the next message."""

    state: str = "s"

    @property
    def kind(self) -> str:
        return "ready"


@dataclass(frozen=True)
class Migrate:
    """``migrate(l)`` — move to location ``destination`` and resume there.

    ``size`` scales the serialisation/transfer cost with actor state size.
    """

    destination: Node
    size: float = 1

    def __post_init__(self) -> None:
        if not isinstance(self.destination, Node):
            raise InvalidComputationError(
                f"migrate destination must be a Node, got {self.destination!r}"
            )
        _positive(self.size, "migration size")

    @property
    def kind(self) -> str:
        return "migrate"


Action = Union[Evaluate, Send, Create, Ready, Migrate]

#: Every concrete action class, for registration-style cost models.
ACTION_KINDS: tuple[str, ...] = ("evaluate", "send", "create", "ready", "migrate")
