"""Command-line interface: ``python -m repro``.

Three subcommands cover the library's everyday uses without writing code:

* ``scenario`` — run a named scenario under one or all admission policies
  and print the comparison table::

      python -m repro scenario pipeline --seed 3
      python -m repro scenario cloud --policy rota

  Fault-injection flags run the faulty variant (see :mod:`repro.faults`)::

      python -m repro scenario volunteer --crash-rate 0.05 \\
          --revocation-rate 0.3 --fault-seed 7 --recover

* ``check`` — one-shot feasibility: read a JSON document holding a
  resource set and a requirement (the wire format of
  :mod:`repro.serialization`), print the verdict and witness::

      python -m repro check request.json

* ``table1`` — print the reproduced Table I (interval relations).
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager
from typing import Sequence

from repro.analysis import policy_table, score
from repro.baselines import ALL_POLICIES, RotaAdmission
from repro.decision import AdmissionController
from repro.serialization import (
    requirement_from_wire,
    resource_set_from_wire,
    schedule_to_wire,
)
from repro.service import SHED_POLICIES
from repro.system import OpenSystemSimulator, ReservationPolicy
from repro.workloads import cloud_scenario, pipeline_scenario, volunteer_scenario

SCENARIOS = {
    "cloud": cloud_scenario,
    "pipeline": pipeline_scenario,
    "volunteer": volunteer_scenario,
}


def _unit_rate(text: str) -> float:
    """Argparse type for probabilities/rates constrained to ``[0, 1]``."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(
            f"must be in [0, 1], got {text!r}"
        )
    return value


def _nonnegative_int(text: str) -> int:
    """Argparse type for seeds and counters that must be ``>= 0``."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text!r}")
    return value


def _positive_int(text: str) -> int:
    """Argparse type for durations that must be ``>= 1``."""
    value = _nonnegative_int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {text!r}")
    return value


def _partition_window(text: str) -> tuple[int, int]:
    """Argparse type for ``--partition-plan START:DURATION``."""
    head, sep, tail = text.partition(":")
    if not sep:
        raise argparse.ArgumentTypeError(
            f"expected START:DURATION (e.g. 18:10), got {text!r}"
        )
    try:
        start, duration = int(head), int(tail)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"START and DURATION must be integers, got {text!r}"
        )
    if start < 0 or duration < 0:
        raise argparse.ArgumentTypeError(
            f"START and DURATION must be >= 0, got {text!r}"
        )
    return start, duration


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ROTA: deadline assurance for open distributed systems",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    scenario = sub.add_parser("scenario", help="run a named scenario")
    scenario.add_argument("name", choices=sorted([*SCENARIOS, "mesh"]))
    scenario.add_argument("--seed", type=int, default=None)
    scenario.add_argument(
        "--policy",
        choices=["all", *(cls.name for cls in ALL_POLICIES)],
        default="all",
    )
    faults = scenario.add_argument_group(
        "fault injection", "run the scenario's faulty variant (repro.faults)"
    )
    faults.add_argument(
        "--crash-rate", type=_unit_rate, default=0.0,
        help="Poisson rate of unannounced node crashes per time unit",
    )
    faults.add_argument(
        "--revocation-rate", type=_unit_rate, default=0.0,
        help="per-session probability of early capacity revocation",
    )
    faults.add_argument(
        "--straggler-rate", type=_unit_rate, default=0.0,
        help="Poisson rate of rate-degradation (straggler) faults",
    )
    faults.add_argument(
        "--fault-seed", type=_nonnegative_int, default=0,
        help="seed of the deterministic fault plan",
    )
    faults.add_argument(
        "--recover", action="store_true",
        help="route promise-violation victims through the recovery "
        "pipeline (re-admission with capped exponential backoff)",
    )
    durability = scenario.add_argument_group(
        "durability",
        "crash-consistent checkpoints and write-ahead journaling "
        "(repro.system.checkpoint)",
    )
    durability.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="write checkpoints and a journal under DIR/<policy>/",
    )
    durability.add_argument(
        "--checkpoint-every", type=_nonnegative_int, default=25,
        metavar="N",
        help="snapshot every N applied events (default: 25; "
        "requires --checkpoint-dir)",
    )
    durability.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted run from the latest checkpoint in "
        "--checkpoint-dir/<policy>/ instead of starting fresh "
        "(requires a single explicit --policy)",
    )
    _add_front_door_flags(scenario)
    _add_network_flags(scenario)
    _add_metrics_flags(scenario)

    check = sub.add_parser("check", help="one-shot admission check from JSON")
    check.add_argument(
        "request",
        help="path to a JSON file with {'resources': ..., 'requirement': ...}"
        " in the repro.serialization wire format ('-' for stdin)",
    )
    check.add_argument(
        "--align", type=int, default=None,
        help="round witness breakpoints up to this time grid",
    )
    check.add_argument(
        "--lint", action="store_true",
        help="screen the request with the repro-lint spec rules before "
        "admission; errors block the check (exit 1), warnings print to "
        "stderr and the check proceeds",
    )

    sub.add_parser("table1", help="print the reproduced Table I")

    replay = sub.add_parser(
        "replay", help="replay a recorded event trace through a policy"
    )
    replay.add_argument("trace", help="JSONL event trace (see repro.workloads.persistence)")
    replay.add_argument(
        "--resources",
        default=None,
        help="JSON file with the initial resource set (wire format); "
        "default: empty (resources must join via trace events)",
    )
    replay.add_argument("--horizon", type=float, required=True)
    replay.add_argument(
        "--policy",
        choices=[cls.name for cls in ALL_POLICIES],
        default="rota",
    )
    _add_front_door_flags(replay)
    _add_network_flags(replay)
    _add_metrics_flags(replay)
    return parser


def _add_network_flags(parser: argparse.ArgumentParser) -> None:
    net = parser.add_argument_group(
        "unreliable network",
        "partition/loss fault model over the enclave mesh "
        "(repro.faults.netfaults): message passing on the virtual clock, "
        "lease-backed capacity grants, degraded autonomy under partition",
    )
    net.add_argument(
        "--partition-plan", type=_partition_window, default=None,
        metavar="START:DURATION",
        help="sever the door<->n1 link for DURATION ticks starting at "
        "START (scenario: requires the 'mesh' scenario; replay: runs the "
        "trace through the mesh policy's channel)",
    )
    net.add_argument(
        "--link-delay", type=_nonnegative_int, default=None, metavar="TICKS",
        help="base one-way delay of every mesh link (default: 0; "
        "requires the mesh)",
    )
    net.add_argument(
        "--link-loss", type=_unit_rate, default=None, metavar="P",
        help="per-message loss probability on every mesh link "
        "(default: 0; requires the mesh)",
    )
    net.add_argument(
        "--link-jitter", type=_nonnegative_int, default=None,
        metavar="TICKS",
        help="extra per-message delay drawn uniformly from {0..TICKS} "
        "on every mesh link; reordering is emergent (default: 0; "
        "requires the mesh)",
    )
    net.add_argument(
        "--lease-ttl", type=_positive_int, default=None, metavar="TICKS",
        help="time-to-live of leased capacity grants; unrenewable leases "
        "expire conservatively under partition (default: 6; requires "
        "the mesh)",
    )
    net.add_argument(
        "--network-seed", type=_nonnegative_int, default=None, metavar="N",
        help="seed of the channel's message-fate draws; pass the original "
        "run's seed to replay its exact loss/jitter pattern "
        "(default: --seed where available, else 0)",
    )


def _add_front_door_flags(parser: argparse.ArgumentParser) -> None:
    door = parser.add_argument_group(
        "overload protection",
        "deadline-aware admission front door (repro.service): bounded "
        "queues, load shedding, per-enclave circuit breakers, brownout",
    )
    door.add_argument(
        "--front-door", action="store_true",
        help="run the policy behind the admission front door "
        "(bounded queues + deadline-aware shedding) and print the "
        "shed/breaker/brownout summary",
    )
    door.add_argument(
        "--max-queue", type=_nonnegative_int, default=None, metavar="N",
        help="per-enclave queue bound; arrivals beyond it are shed "
        "(default: 64; requires --front-door)",
    )
    door.add_argument(
        "--shed-policy", choices=SHED_POLICIES, default=None,
        help="what to shed when queues fill: 'deadline' drops requests "
        "whose slack cannot survive the estimated wait, 'tail-drop' "
        "drops newest arrivals (default: deadline; requires --front-door)",
    )
    door.add_argument(
        "--brownout-threshold", type=_nonnegative_int, default=None,
        metavar="DEPTH",
        help="total queue depth at which the door degrades low-criticality "
        "requests to the conservative screen (default: 48; "
        "requires --front-door)",
    )


def _add_metrics_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group(
        "observability",
        "runtime metrics and span timings (repro.observability)",
    )
    group.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write a metrics snapshot (counters, histograms, span "
        "timing trees) to PATH after the run",
    )
    group.add_argument(
        "--metrics-format", choices=["jsonl", "prom"], default=None,
        help="metrics dump format: jsonl (lossless, spans included) or "
        "prom (Prometheus text exposition); default jsonl "
        "(requires --metrics-out)",
    )


def _check_metrics_flags(args: argparse.Namespace) -> str | None:
    """Flag-interaction validation shared by scenario and replay."""
    if args.metrics_format is not None and args.metrics_out is None:
        return (
            "--metrics-format selects the dump format for --metrics-out; "
            "pass --metrics-out PATH or drop --metrics-format"
        )
    return None


def _check_front_door_flags(args: argparse.Namespace) -> str | None:
    """Front-door tuning flags mean nothing without the front door.

    Shared by ``scenario`` and ``replay``; only ``scenario`` has
    ``--resume``, hence the ``getattr``."""
    tuned = [
        flag
        for flag, value in (
            ("--max-queue", args.max_queue),
            ("--shed-policy", args.shed_policy),
            ("--brownout-threshold", args.brownout_threshold),
        )
        if value is not None
    ]
    if tuned and not args.front_door:
        return (
            f"{'/'.join(tuned)} tune{'s' if len(tuned) == 1 else ''} the "
            "admission front door; pass --front-door to put policies "
            "behind it, or drop "
            f"{'the flag' if len(tuned) == 1 else 'the flags'}"
        )
    if args.front_door and getattr(args, "resume", False):
        return (
            "--resume restores the recorded policy (front door included) "
            "from the checkpoint; front-door flags shape fresh runs only"
        )
    return None


def _check_network_flags(args: argparse.Namespace) -> str | None:
    """Unreliable-network flag interactions, shared by scenario and replay.

    The mesh is its own closed world — one admission path (ROTA-exact
    enclaves over the channel), its own fault model (the network), its
    own recovery pipeline — so flags that would compose a second fault
    model or a second admission layer on top of it are refused."""
    tuned = _network_tuning(args)
    networked = bool(tuned) or args.partition_plan is not None
    is_mesh = getattr(args, "name", None) == "mesh"
    if is_mesh:
        if args.front_door:
            return (
                "--front-door layers a second admission path over the "
                "mesh's own enclave admission; drop one of the two"
            )
        if args.policy not in ("all", "rota"):
            return (
                "the mesh scenario runs the ROTA-exact enclave path; "
                f"--policy {args.policy} cannot drive it"
            )
        for flag, rate in (
            ("--crash-rate", args.crash_rate),
            ("--revocation-rate", args.revocation_rate),
            ("--straggler-rate", args.straggler_rate),
        ):
            if rate:
                return (
                    f"{flag} injects the unannounced fault model; the mesh "
                    "scenario's fault model is the network itself "
                    "(--partition-plan/--link-loss) — drop one of the two"
                )
        if args.resume and (tuned or args.partition_plan is not None):
            return (
                "--resume restores the recorded mesh plan from the "
                "checkpoint; network flags shape fresh runs only"
            )
        return None
    if networked and hasattr(args, "name"):
        offending = tuned or ["--partition-plan"]
        return (
            f"{'/'.join(offending)} shape{'s' if len(offending) == 1 else ''} "
            "the unreliable-network mesh; run `scenario mesh`, or drop "
            f"{'the flag' if len(offending) == 1 else 'the flags'}"
        )
    # replay: any network flag engages the mesh — link flags alone get a
    # zero-duration (benign-window) plan synthesized for them.
    if networked and args.front_door:
        return (
            "--front-door layers a second admission path over the "
            "mesh's own enclave admission; drop one of the two"
        )
    if networked and args.policy != "rota":
        return (
            "the mesh replay runs the ROTA-exact enclave path; "
            f"--policy {args.policy} cannot drive it"
        )
    return None


def _network_tuning(args: argparse.Namespace) -> list[str]:
    """The network-shaping flags the user actually passed."""
    return [
        flag
        for flag, value in (
            ("--link-delay", args.link_delay),
            ("--link-jitter", args.link_jitter),
            ("--link-loss", args.link_loss),
            ("--lease-ttl", args.lease_ttl),
            ("--network-seed", args.network_seed),
        )
        if value is not None
    ]


def _mesh_plan(
    args: argparse.Namespace,
    *,
    horizon: int | None = None,
    default_benign: bool = False,
):
    """Build the :class:`PartitionPlan` the network flags describe.

    ``default_benign`` (the replay path) disables the plan's default
    partition window when no ``--partition-plan`` was given, so link
    flags alone describe a lossy-but-unpartitioned wire.  Raises
    :class:`~repro.errors.FaultInjectionError` on bad values (e.g. a
    partition starting past the horizon, or a TTL too short to fit a
    renewal inside)."""
    from repro.faults import PartitionPlan

    seed = args.network_seed
    if seed is None:
        seed = getattr(args, "seed", None) or 0
    kwargs: dict = {"seed": seed}
    if horizon is not None:
        kwargs["horizon"] = horizon
    if args.partition_plan is not None:
        start, duration = args.partition_plan
        kwargs["partition_start"] = start
        kwargs["partition_duration"] = duration
    elif default_benign:
        kwargs["partition_duration"] = 0
    if args.link_delay is not None:
        kwargs["link_delay"] = args.link_delay
    if args.link_jitter is not None:
        kwargs["link_jitter"] = args.link_jitter
    if args.link_loss is not None:
        kwargs["link_loss"] = args.link_loss
    if args.lease_ttl is not None:
        kwargs["lease_ttl"] = args.lease_ttl
        # Keep the default 3:1 ttl/renewal cadence of the plan.
        kwargs["renew_every"] = max(1, args.lease_ttl // 3)
    return PartitionPlan(**kwargs)


def _mesh_lines(report, policy) -> list[str]:
    """Channel/lease/recovery digest lines for a mesh run."""
    stats = policy.channel.stats
    return [
        f"  messages: sent={stats.sent} delivered={stats.delivered} "
        f"lost={stats.lost} severed={stats.severed} "
        f"duplicated={stats.duplicated}",
        f"  leases: granted={len(policy.leases)} "
        f"expired={len(policy.leases.expired())} "
        f"late_acks={policy.late_acks}",
        f"  rpc: failures={policy.rpc_failures} "
        f"strays={policy.stray_verdicts} "
        f"delay_charged={float(policy.network_delay_charged):g}",
        f"  promises: violations={len(report.violations)} "
        f"recovered={report.recovered} abandoned={report.abandoned}",
    ]


def _service_config(args: argparse.Namespace):
    """Build the :class:`ServiceConfig` the scenario flags describe.

    Raises :class:`~repro.errors.ServiceConfigError` on bad combinations
    (e.g. a brownout threshold too small to leave hysteresis room).
    """
    from repro.service import ServiceConfig

    # replay has no --seed; the door's tie-breaking seed defaults to 0.
    kwargs: dict = {"seed": getattr(args, "seed", None) or 0}
    if args.max_queue is not None:
        kwargs["max_queue"] = args.max_queue
    if args.shed_policy is not None:
        kwargs["shed_policy"] = args.shed_policy
    if args.brownout_threshold is not None:
        kwargs["brownout_enter"] = args.brownout_threshold
        # Preserve the 3:1 enter/exit hysteresis ratio of the defaults.
        kwargs["brownout_exit"] = max(1, args.brownout_threshold // 3)
    return ServiceConfig(**kwargs)


def _door_summary_line(policy, horizon) -> str:
    """One shed/breaker/brownout digest line for a front-door policy."""
    from repro.service import ServiceReport

    digest = ServiceReport.from_door(policy.door, horizon).summary()
    line = (
        f"  {policy.name}: offered={digest['offered']} "
        f"admitted={digest['admitted']} rejected={digest['rejected']} "
        f"shed={digest['shed']} breaker_opens={digest['breaker_opens']} "
        f"brownout_entries={digest['brownout_entries']}"
    )
    reasons = ", ".join(
        f"{reason}={count}"
        for reason, count in sorted(digest["shed_reasons"].items())
    )
    if reasons:
        line += f" ({reasons})"
    return line


@contextmanager
def _metrics_session(args: argparse.Namespace):
    """Install a live registry for the run when ``--metrics-out`` asks
    for one (the default registry is a no-op), and dump the snapshot —
    even on failure, so a crashed run still leaves its partial metrics."""
    from repro.observability import (
        MetricsRegistry,
        use_registry,
        write_jsonl,
        write_prometheus,
    )

    if args.metrics_out is None:
        yield
        return
    registry = MetricsRegistry()
    try:
        with use_registry(registry):
            yield
    finally:
        if (args.metrics_format or "jsonl") == "prom":
            write_prometheus(registry.snapshot(), args.metrics_out)
        else:
            write_jsonl(registry.snapshot(), args.metrics_out)


def _cmd_scenario(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.faults import FaultPlan, RecoveryPolicy, faulty_scenario

    from repro.errors import (
        CheckpointError,
        FaultInjectionError,
        ServiceConfigError,
    )

    if args.resume and args.policy == "all" and args.name != "mesh":
        # The mesh has exactly one admission path, so --policy stays at
        # its "all" default there and is unambiguous.
        print(
            "error: --resume restores one interrupted run; pick the policy "
            "explicitly with --policy",
            file=sys.stderr,
        )
        return 2
    if args.resume and args.checkpoint_dir is None:
        print(
            "error: --resume restores a run from its durable artifacts; "
            "pass --checkpoint-dir DIR to say where they live, or drop "
            "--resume to start fresh",
            file=sys.stderr,
        )
        return 2
    metrics_error = _check_metrics_flags(args)
    if metrics_error is not None:
        print(f"error: {metrics_error}", file=sys.stderr)
        return 2
    door_error = _check_front_door_flags(args)
    if door_error is not None:
        print(f"error: {door_error}", file=sys.stderr)
        return 2
    network_error = _check_network_flags(args)
    if network_error is not None:
        print(f"error: {network_error}", file=sys.stderr)
        return 2
    if args.name == "mesh":
        return _cmd_scenario_mesh(args)
    service_config = None
    if args.front_door:
        try:
            service_config = _service_config(args)
        except ServiceConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    factory = SCENARIOS[args.name]
    scenario = factory(args.seed) if args.seed is not None else factory()
    try:
        plan = FaultPlan(
            seed=args.fault_seed,
            crash_rate=args.crash_rate,
            revocation_rate=args.revocation_rate,
            straggler_rate=args.straggler_rate,
        )
    except FaultInjectionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not plan.is_benign:
        scenario = faulty_scenario(scenario, plan)
    recovery = RecoveryPolicy() if args.recover else None
    chosen = (
        ALL_POLICIES
        if args.policy == "all"
        else tuple(cls for cls in ALL_POLICIES if cls.name == args.policy)
    )
    rows = []
    fault_lines = []
    door_lines = []
    with _metrics_session(args):
        for cls in chosen:
            policy = cls()
            allocation = (
                ReservationPolicy() if isinstance(policy, RotaAdmission) else None
            )
            if service_config is not None:
                from repro.service import FrontDoorPolicy

                policy = FrontDoorPolicy(policy, service_config)
            durable: dict = {}
            if args.checkpoint_dir is not None and not args.resume:
                policy_dir = Path(args.checkpoint_dir) / cls.name
                policy_dir.mkdir(parents=True, exist_ok=True)
                # A fresh run starts fresh artifacts: checkpoints from an
                # earlier run at higher step numbers would otherwise shadow
                # this run's snapshots on a later --resume.
                for stale in policy_dir.glob("ckpt-*.json"):
                    stale.unlink()
                durable = {
                    "checkpoint_every": args.checkpoint_every,
                    "checkpoint_dir": policy_dir,
                    "journal": policy_dir / "journal.jsonl",
                }
            try:
                if args.resume:
                    report = _resume_scenario(
                        Path(args.checkpoint_dir), cls.name
                    )
                else:
                    simulator = OpenSystemSimulator(
                        policy,
                        initial_resources=scenario.initial_resources,
                        allocation_policy=allocation,
                        recovery=recovery,
                    )
                    simulator.schedule(*scenario.events)
                    report = simulator.run(scenario.horizon, **durable)
            except CheckpointError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            rows.append(score(report))
            if not plan.is_benign:
                fault_lines.append(
                    f"  {report.policy_name}: "
                    f"violations={len(report.violations)} "
                    f"recovered={report.recovered} abandoned={report.abandoned}"
                )
            if service_config is not None:
                door_lines.append(
                    _door_summary_line(policy, scenario.horizon)
                )
    print(policy_table(rows, title=f"scenario={scenario.name}"))
    if fault_lines:
        print("promise violations under faults:")
        print("\n".join(fault_lines))
    if door_lines:
        print("front door (shed/breaker/brownout):")
        print("\n".join(door_lines))
    return 0


def _cmd_scenario_mesh(args: argparse.Namespace) -> int:
    """The mesh scenario: enclaves admitting over an unreliable network."""
    from pathlib import Path

    from repro.errors import CheckpointError, FaultInjectionError
    from repro.faults import MeshPolicy, resume_mesh, run_mesh

    if args.resume:
        mesh_dir = Path(args.checkpoint_dir) / MeshPolicy.name
        try:
            with _metrics_session(args):
                report, policy = resume_mesh(mesh_dir)
        except CheckpointError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        # The plan travels inside the checkpoint with the policy; the
        # resumed report is titled from what was actually recorded.
        plan = policy.plan
    else:
        try:
            plan = _mesh_plan(args)
        except FaultInjectionError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        durable: dict = {}
        if args.checkpoint_dir is not None:
            mesh_dir = Path(args.checkpoint_dir) / MeshPolicy.name
            mesh_dir.mkdir(parents=True, exist_ok=True)
            # Same fresh-run discipline as the per-policy scenarios:
            # higher-step checkpoints from an earlier run would shadow
            # this run's snapshots on a later --resume.
            for stale in mesh_dir.glob("ckpt-*.json"):
                stale.unlink()
            durable = {
                "checkpoint_every": args.checkpoint_every,
                "checkpoint_dir": mesh_dir,
                "journal": mesh_dir / "journal.jsonl",
            }
        try:
            with _metrics_session(args):
                report, policy = run_mesh(plan, **durable)
        except CheckpointError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    window = (
        f"[{plan.partition_start}, {plan.partition_end})"
        if plan.partition_duration
        else "none"
    )
    print(policy_table(
        [score(report)],
        title=f"scenario=mesh partition={window} "
        f"loss={plan.link_loss:g} delay={plan.link_delay}",
    ))
    print("unreliable network:")
    print("\n".join(_mesh_lines(report, policy)))
    return 0


def _resume_scenario(checkpoint_dir, policy_name):
    """Restore the latest checkpoint under ``checkpoint_dir/policy_name``
    and run the simulation to completion."""
    from repro.errors import CheckpointError
    from repro.system import latest_checkpoint

    policy_dir = checkpoint_dir / policy_name
    checkpoint_path = latest_checkpoint(policy_dir)
    if checkpoint_path is None:
        raise CheckpointError(
            f"no usable checkpoint under {policy_dir}; "
            "run with --checkpoint-dir first"
        )
    journal_path = policy_dir / "journal.jsonl"
    simulator = OpenSystemSimulator.resume(
        checkpoint_path,
        journal_path if journal_path.exists() else None,
        checkpoint_dir=policy_dir,
    )
    return simulator.resume_run()


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.errors import RotaError

    try:
        if args.request == "-":
            payload = json.load(sys.stdin)
        else:
            with open(args.request) as handle:
                payload = json.load(handle)
    except OSError as exc:
        print(f"error: cannot read {args.request}: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: {args.request} is not valid JSON: {exc}", file=sys.stderr)
        return 2
    if not isinstance(payload, dict) or not {
        "resources", "requirement"
    } <= set(payload):
        print(
            "error: a check request is a JSON object with 'resources' and "
            "'requirement' keys (repro.serialization wire format)",
            file=sys.stderr,
        )
        return 2
    if args.lint:
        from repro.analysis.lint import check_request_document, render_text

        findings = check_request_document(payload, args.request)
        if findings:
            print(render_text(findings, 1), file=sys.stderr)
        if any(f.severity == "error" for f in findings):
            return 1
    try:
        resources = resource_set_from_wire(payload["resources"])
        requirement = requirement_from_wire(payload["requirement"])
    except RotaError as exc:
        print(f"error: malformed request: {exc}", file=sys.stderr)
        return 2
    controller = AdmissionController(resources, align=args.align)
    decision = controller.can_admit(requirement)
    result = {"admitted": decision.admitted}
    if decision.admitted and decision.schedule is not None:
        result["schedules"] = [
            schedule_to_wire(s) for s in decision.schedule.schedules
        ]
    else:
        result["reason"] = decision.reason
    json.dump(result, sys.stdout, indent=2)
    print()
    return 0 if decision.admitted else 1


def _cmd_table1(_args: argparse.Namespace) -> int:
    from repro.analysis import render_table
    from repro.intervals import ALL_RELATIONS, BASE_RELATIONS, INTERPRETATION

    rows = [
        (
            relation.value,
            INTERPRETATION[relation],
            "base" if relation in BASE_RELATIONS else "inverse",
        )
        for relation in ALL_RELATIONS
    ]
    print(render_table(("symbol", "interpretation", "kind"), rows,
                       title="Table I — interval relations"))
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.resources import ResourceSet
    from repro.workloads.persistence import load_events

    from repro.errors import RotaError

    metrics_error = _check_metrics_flags(args)
    if metrics_error is not None:
        print(f"error: {metrics_error}", file=sys.stderr)
        return 2
    door_error = _check_front_door_flags(args)
    if door_error is not None:
        print(f"error: {door_error}", file=sys.stderr)
        return 2
    network_error = _check_network_flags(args)
    if network_error is not None:
        print(f"error: {network_error}", file=sys.stderr)
        return 2
    service_config = None
    if args.front_door:
        from repro.errors import ServiceConfigError

        try:
            service_config = _service_config(args)
        except ServiceConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        if args.resources is not None:
            with open(args.resources) as handle:
                initial = resource_set_from_wire(json.load(handle))
        else:
            initial = ResourceSet.empty()
        events = load_events(args.trace)
    except OSError as exc:
        print(f"error: cannot read input: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: not valid JSON: {exc}", file=sys.stderr)
        return 2
    except RotaError as exc:
        print(f"error: malformed input: {exc}", file=sys.stderr)
        return 2
    recovery = None
    networked = (
        args.partition_plan is not None or bool(_network_tuning(args))
    )
    if networked:
        from repro.errors import FaultInjectionError
        from repro.faults import MeshPolicy, RecoveryPolicy

        try:
            # Link flags alone mean a lossy wire with no partition
            # window — synthesize a zero-duration plan for them.
            plan = _mesh_plan(
                args, horizon=max(1, int(args.horizon)), default_benign=True
            )
        except FaultInjectionError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        policy = MeshPolicy(plan)
        allocation = None
        recovery = RecoveryPolicy()
    else:
        policy_cls = next(
            cls for cls in ALL_POLICIES if cls.name == args.policy
        )
        policy = policy_cls()
        allocation = (
            ReservationPolicy() if isinstance(policy, RotaAdmission) else None
        )
        if service_config is not None:
            from repro.service import FrontDoorPolicy

            policy = FrontDoorPolicy(policy, service_config)
    with _metrics_session(args):
        simulator = OpenSystemSimulator(
            policy,
            initial_resources=initial,
            allocation_policy=allocation,
            recovery=recovery,
        )
        simulator.schedule(*events)
        report = simulator.run(args.horizon)
    print(policy_table([score(report)], title=f"replay of {args.trace}"))
    if service_config is not None:
        print("front door (shed/breaker/brownout):")
        print(_door_summary_line(policy, args.horizon))
    if networked:
        print("unreliable network:")
        print("\n".join(_mesh_lines(report, policy)))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "scenario":
        return _cmd_scenario(args)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "table1":
        return _cmd_table1(args)
    if args.command == "replay":
        return _cmd_replay(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
