"""Theorem 4 — accommodating additional computations.

Theorem 4: a new computation ``(Gamma, s, d)`` can be accommodated
*without affecting the computations already in the system* if the
resources expiring (going unused) along a committed computation path
during ``(s, d)`` satisfy the new computation's complex requirement.  The
combined path — existing transitions merged with the new computation's —
is then itself a valid concurrent path.

:class:`AdmissionController` maintains exactly that committed path:

* ``_available``  — all resources the system knows about (``Theta``),
* ``_committed``  — the union of admitted schedules' claimed consumption.

The *expiring slack* ``available - committed`` is the executable analogue
of the paper's ``U Theta_expire``: whatever the committed path will not
consume would expire, and is therefore free for newcomers.  Admission
checks the newcomer against the slack only, so prior commitments are never
disturbed — the controller never re-plans admitted work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.computation.requirements import (
    ComplexRequirement,
    ConcurrentRequirement,
)
from repro.decision.concurrent import find_concurrent_schedule
from repro.decision.schedule import ConcurrentSchedule, Schedule
from repro.decision.sequential import find_schedule
from repro.errors import TransitionError, UndefinedOperationError
from repro.intervals.interval import Time
from repro.markers import checkpointable
from repro.observability import get_registry
from repro.resources.resource_set import ResourceSet
from repro.resources.term import ResourceTerm


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of an admission attempt."""

    admitted: bool
    label: str
    schedule: Optional[ConcurrentSchedule] = None
    reason: str = ""

    def __bool__(self) -> bool:
        return self.admitted


@checkpointable
class AdmissionController:
    """Deadline-assurance admission control per Theorem 4.

    The controller is the paper's intended application: at any time,
    given a computation, evaluate whether its deadline constraint can be
    assured by the available resources — and if admitted, guarantee it
    stays assured as further computations and resources arrive.
    """

    def __init__(
        self,
        available: ResourceSet | None = None,
        *,
        now: Time = 0,
        align: Time | None = None,
        slack_check_interval: int = 0,
    ) -> None:
        if slack_check_interval < 0:
            raise ValueError(
                f"slack_check_interval must be >= 0, got {slack_check_interval!r}"
            )
        self._available = available or ResourceSet.empty()
        self._committed = ResourceSet.empty()
        # Cached ``available - committed``, maintained incrementally: the
        # one-more-admission query is the hot path and recomputing the
        # relative complement per call is the dominant cost (measured in
        # bench_profile_ops.py's slack-cache ablation).
        self._slack = self._available
        self._schedules: Dict[str, ConcurrentSchedule] = {}
        self._now = now
        #: Witness breakpoints are rounded up to this grid when set: pass
        #: the executor's ``Delta t`` so committed schedules survive
        #: slice-atomic execution (see ``find_schedule``).
        self._align = align
        #: Invalidation check: every N slack mutations, realign the
        #: incremental cache with the reference ``available - committed``
        #: (0 = trust the algebraic updates; see ``_slack_mutated``).
        self._slack_check_interval = slack_check_interval
        self._mutations_since_check = 0

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> Time:
        return self._now

    @property
    def available(self) -> ResourceSet:
        """All resources known to the system (``Theta``)."""
        return self._available

    @property
    def committed(self) -> ResourceSet:
        """Consumption claimed by admitted schedules."""
        return self._committed

    @property
    def expiring_slack(self) -> ResourceSet:
        """``U Theta_expire``: resources the committed path will not use.

        Maintained incrementally; always equal to
        ``available - committed`` (property-tested invariant).
        """
        return self._slack

    def reference_slack(self) -> ResourceSet:
        """The slack recomputed from scratch: ``available - committed``.

        This is the oracle the incremental cache is pinned to.  The exact
        relative complement applies whenever it is defined; after
        unannounced revocations the committed path may exceed what
        survives, and the clamped (saturating) difference is the sound
        reading — capacity that no longer exists is not free.
        """
        try:
            return self._available - self._committed
        except UndefinedOperationError:
            return self._available.saturating_minus(self._committed)

    def verify_slack(self) -> bool:
        """Whether the incremental slack equals :meth:`reference_slack`.

        Fault-free runs maintain this invariant exactly (property-tested).
        Under revocation the incremental view can drift optimistic —
        capacity joining after a loss re-enters the cached slack even
        where still-committed schedules need it — which is what the
        periodic invalidation check repairs.
        """
        return self._slack == self.reference_slack()

    def _slack_mutated(self) -> None:
        """Count a slack mutation; every ``slack_check_interval`` of them,
        rebuild the cache from the reference when it has drifted."""
        if not self._slack_check_interval:
            return
        self._mutations_since_check += 1
        if self._mutations_since_check >= self._slack_check_interval:
            self._mutations_since_check = 0
            reference = self.reference_slack()
            registry = get_registry()
            if self._slack != reference:
                self._slack = reference
                registry.counter(
                    "rota_slack_cache_checks_total",
                    "incremental-slack invalidation checks by result",
                    labels=("result",),
                ).inc(result="miss")
            else:
                registry.counter(
                    "rota_slack_cache_checks_total",
                    "incremental-slack invalidation checks by result",
                    labels=("result",),
                ).inc(result="hit")

    # ------------------------------------------------------------------
    # Pickling (checkpoint payloads)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Elide the slack cache from pickles when it is derivable.

        ``_slack`` is ``available - committed`` maintained incrementally;
        serializing it duplicates both operands' profiles in every
        checkpoint.  It is persisted only when it has *drifted* from the
        derivable value (possible under unannounced revocation), so a
        restored controller is field-for-field identical to the live one
        while fault-free checkpoints stay lean.
        """
        state = dict(self.__dict__)
        if state["_slack"] == self.reference_slack():
            state["_slack"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if self._slack is None:
            self._slack = self.reference_slack()

    @property
    def admitted_labels(self) -> tuple[str, ...]:
        return tuple(self._schedules)

    def schedule_of(self, label: str) -> ConcurrentSchedule:
        return self._schedules[label]

    # ------------------------------------------------------------------
    # Resource dynamics (the open-system rules)
    # ------------------------------------------------------------------
    def add_resources(self, joining: ResourceSet | Iterable[ResourceTerm]) -> None:
        """Resource acquisition rule: ``Theta := Theta U Theta_join``.

        Per the paper there is no resource-leave rule — a term's interval
        already states when it leaves.
        """
        if not isinstance(joining, ResourceSet):
            joining = ResourceSet(joining)
        self._available = self._available | joining
        self._slack = self._slack | joining
        self._slack_mutated()

    @property
    def align(self) -> Time | None:
        """The witness-alignment grid (None = exact continuous time)."""
        return self._align

    def revoke_resources(self, lost: ResourceSet) -> None:
        """Capacity vanished unannounced (a promise violation, outside the
        paper's model): shrink the availability view, clamped at zero.

        Committed schedules are *not* re-planned here — their backing may
        be gone, which is exactly what :meth:`forfeit` accounts for when
        the violation is detected.  Pointwise, the surviving slack is
        ``max(0, available - committed - lost)``, and
        ``slack.saturating_minus(lost)`` computes exactly that, so the
        Theorem-4 check never sees free capacity that no longer exists.
        """
        if not isinstance(lost, ResourceSet):
            lost = ResourceSet(lost)
        self._available = self._available.saturating_minus(lost)
        self._slack = self._slack.saturating_minus(lost)
        self._slack_mutated()

    def forfeit(self, label: str) -> None:
        """Remove an admitted computation whose promise was violated.

        Unlike :meth:`withdraw` (the paper's leave rule, valid only while
        ``t < s``), forfeiture is a *recovery* action: the victim may have
        started.  Its claimed consumption leaves the committed path and
        the slack is rebuilt from surviving availability, so re-admission
        attempts reason against reality.
        """
        schedule = self._schedules.pop(label, None)
        if schedule is None:
            raise TransitionError(f"no admitted computation labelled {label!r}")
        consumption = schedule.consumption()
        try:
            self._committed = self._committed - consumption
        except UndefinedOperationError:
            # Numerical dust can leave the committed union fractionally
            # below one component's claim; clamp instead of failing.
            self._committed = self._committed.saturating_minus(consumption)
        self._slack = self._available.saturating_minus(self._committed)
        self._slack_mutated()

    def reserve(self, resources: ResourceSet) -> None:
        """Mark ``resources`` as committed without a schedule — used by
        resource encapsulations carving out a child's allotment.  The
        reservation must fit inside the current expiring slack."""
        if not self.expiring_slack.dominates(resources):
            raise TransitionError(
                "reservation exceeds the expiring slack"
            )
        self._committed = self._committed | resources
        self._slack = self._slack - resources
        self._slack_mutated()

    def release(self, resources: ResourceSet) -> None:
        """Return a previously reserved set to the slack pool."""
        self._committed = self._committed - resources
        self._slack = self._slack | resources
        self._slack_mutated()

    def advance_to(self, t: Time) -> None:
        """Move the clock forward; past availability and consumption expire
        together, so the slack accounting stays consistent."""
        if t < self._now:
            raise TransitionError(f"cannot move time backwards: {t} < {self._now}")
        self._now = t

    # ------------------------------------------------------------------
    # Admission (Theorem 4)
    # ------------------------------------------------------------------
    def can_admit(
        self,
        requirement: ComplexRequirement | ConcurrentRequirement,
        *,
        exhaustive: bool = False,
    ) -> AdmissionDecision:
        """Check a newcomer against the expiring slack, without committing."""
        requirement = _as_concurrent(requirement)
        label = _requirement_label(requirement)
        if requirement.deadline <= self._now:
            decision = AdmissionDecision(
                False, label, reason="deadline has already passed (t >= d)"
            )
            _count_decision(decision, "deadline-passed")
            return decision
        effective = requirement
        if requirement.start < self._now:
            # The computation cannot consume resources in the past; clip
            # its window to (now, d).
            effective = clip_start(requirement, self._now)
        registry = get_registry()
        started = registry.now() if registry.enabled else 0
        schedule = find_concurrent_schedule(
            self.expiring_slack, effective, exhaustive=exhaustive, align=self._align
        )
        if registry.enabled:
            registry.histogram(
                "rota_admission_check_seconds",
                "Theorem-4 slack-check latency (find_concurrent_schedule)",
            ).observe(registry.now() - started)
        if schedule is None:
            decision = AdmissionDecision(
                False,
                label,
                reason="expiring slack cannot satisfy the complex requirement",
            )
            _count_decision(decision, "insufficient-slack")
            return decision
        decision = AdmissionDecision(True, label, schedule=schedule)
        _count_decision(decision, "")
        return decision

    def admit(
        self,
        requirement: ComplexRequirement | ConcurrentRequirement,
        *,
        exhaustive: bool = False,
    ) -> AdmissionDecision:
        """Computation-accommodation rule: commit the newcomer's schedule.

        On success the newcomer's claimed consumption joins the committed
        path, so later admissions see only the remaining slack.
        """
        decision = self.can_admit(requirement, exhaustive=exhaustive)
        if decision.admitted and decision.schedule is not None:
            consumption = decision.schedule.consumption()
            self._committed = self._committed | consumption
            self._slack = self._slack - consumption
            self._slack_mutated()
            self._schedules[_unique_label(decision.label, self._schedules)] = (
                decision.schedule
            )
        return decision

    def withdraw(self, label: str, *, now: Time | None = None) -> None:
        """Computation-leave rule: a computation that has not started may
        leave; its claimed resources return to the slack pool."""
        now = self._now if now is None else now
        schedule = self._schedules.get(label)
        if schedule is None:
            raise TransitionError(f"no admitted computation labelled {label!r}")
        started = any(s.requirement.start < now for s in schedule.schedules)
        if started:
            raise TransitionError(
                f"computation {label!r} has already started (t >= s); "
                "the paper's leave rule requires t < s"
            )
        consumption = schedule.consumption()
        self._committed = self._committed - consumption
        self._slack = self._slack | consumption
        self._slack_mutated()
        del self._schedules[label]


def _count_decision(decision: AdmissionDecision, reason_key: str) -> None:
    """Tally one Theorem-4 verdict (reasons as a compact label vocabulary,
    not the human-readable sentences, to keep series cardinality fixed)."""
    registry = get_registry()
    if not registry.enabled:
        return
    registry.counter(
        "rota_admission_decisions_total",
        "Theorem-4 admission verdicts by outcome and refusal reason",
        labels=("outcome", "reason"),
    ).inc(
        outcome="admitted" if decision.admitted else "refused",
        reason=reason_key,
    )


def _as_concurrent(
    requirement: ComplexRequirement | ConcurrentRequirement,
) -> ConcurrentRequirement:
    if isinstance(requirement, ConcurrentRequirement):
        return requirement
    return ConcurrentRequirement((requirement,), requirement.window)


def clip_start(
    requirement: ConcurrentRequirement, now: Time
) -> ConcurrentRequirement:
    """``requirement`` with every window clipped to start no earlier than
    ``now`` — the executable form of "time already spent is charged
    against the deadline".  Used here for arrivals whose declared start
    lies in the past, and by the service front door
    (:mod:`repro.service`) to charge queueing delay before the exact
    Theorem-4 check runs.  The deadline never moves; only the usable
    window shrinks, so a check on the clipped requirement is exactly the
    check a punctual arrival at ``now`` would get."""
    from repro.intervals.interval import Interval

    window = Interval(now, requirement.deadline)
    components = tuple(
        ComplexRequirement(
            part.phases,
            Interval(max(part.start, now), part.deadline),
            label=part.label,
        )
        for part in requirement.components
    )
    return ConcurrentRequirement(components, window)


def _requirement_label(requirement: ConcurrentRequirement) -> str:
    labels = [part.label for part in requirement.components if part.label]
    return labels[0].split("[")[0] if labels else "computation"


def _unique_label(label: str, existing: Dict[str, ConcurrentSchedule]) -> str:
    """Smallest ``label#N`` not yet scheduled.

    Derived from the controller's own table, never from process-global
    state: a counter shared across controllers would make labels depend
    on every admission the *process* ever made, not the controller —
    untestable in isolation and unstable across enclave-parallel runs.
    """
    if label not in existing:
        return label
    ordinal = 2
    while f"{label}#{ordinal}" in existing:
        ordinal += 1
    return f"{label}#{ordinal}"
