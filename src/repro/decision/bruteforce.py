"""Brute-force feasibility oracles.

Independent, exhaustive implementations used to validate the fast decision
procedures.  They quantise time into ``dt`` slices and explore the ROTA
transition tree (Theorem 3's "all possible evolutions of the system")
directly:

* at every slice, each admitted component may consume its current phase's
  resources, up to both the available rate and its remaining demand;
* unconsumed capacity *expires* — it cannot be banked (the paper's
  resource-expiration rule) — so only the split of capacity among
  competing components is a genuine choice point;
* a computation completes when its last phase's demands reach zero.

Quantised feasibility implies continuous feasibility (a quantised
execution is a continuous one), so these oracles are sound; they are
complete for instances whose rates, demands and window endpoints are
integer multiples of ``dt`` *and* whose phase finishes land on the grid —
the property-test generators produce exactly such instances.

Complexity is exponential; keep instances tiny (the oracles guard with
:data:`MAX_STATES`).
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, Sequence, Tuple

from repro.computation.requirements import ComplexRequirement, ConcurrentRequirement
from repro.errors import SimulationError
from repro.intervals.interval import Interval, Time
from repro.resources.located_type import LocatedType
from repro.resources.resource_set import ResourceSet

#: Exploration budget; exceeded means the instance is too big for an oracle.
MAX_STATES = 2_000_000

#: Remaining demands of one component: ((ltype, qty), ...) sorted for hashing.
_Remaining = Tuple[Tuple[LocatedType, Time], ...]
#: One component's state: (phase index, remaining demands of that phase).
_ComponentState = Tuple[int, _Remaining]


def _freeze(demands: Dict[LocatedType, Time]) -> _Remaining:
    return tuple(sorted(
        ((lt, q) for lt, q in demands.items() if q > 0),
        key=lambda item: (item[0].kind, str(item[0].location)),
    ))


def _advance(
    component: ComplexRequirement, state: _ComponentState
) -> _ComponentState:
    """Skip fully satisfied phases (demand exhausted -> next phase)."""
    index, remaining = state
    phases = component.phases
    while not remaining and index < len(phases):
        index += 1
        if index < len(phases):
            remaining = _freeze(dict(phases[index]))
    return (index, remaining)


def _splits(capacity: int, wants: Sequence[int]) -> Iterator[Tuple[int, ...]]:
    """All maximal integer splits of ``capacity`` among ``wants``.

    Maximal: total allocated = min(capacity, sum(wants)); no component gets
    more than it wants.  Unallocated capacity expires, so non-maximal
    splits are dominated and skipped.
    """
    total = min(capacity, sum(wants))

    def rec(i: int, left: int) -> Iterator[Tuple[int, ...]]:
        if i == len(wants) - 1:
            if left <= wants[i]:
                yield (left,)
            return
        tail_max = sum(wants[i + 1:])
        lo = max(0, left - tail_max)
        hi = min(wants[i], left)
        for x in range(lo, hi + 1):
            for rest in rec(i + 1, left - x):
                yield (x, *rest)

    if not wants:
        yield ()
        return
    yield from rec(0, total)


def concurrent_feasible(
    available: ResourceSet,
    requirement: ConcurrentRequirement,
    *,
    dt: int = 1,
) -> bool:
    """Exhaustive Theorem 3 oracle over the quantised transition tree.

    Requires integer rates/demands/window endpoints (multiples of ``dt``).
    Returns whether *some* computation path completes every component's
    phases before its own deadline.
    """
    components = requirement.components
    for component in components:
        for phase in component.phases:
            for quantity in phase.values():
                if quantity != int(quantity):
                    raise SimulationError(
                        "brute-force oracle requires integer demands"
                    )
    start = requirement.start
    horizon = max(part.deadline for part in components)
    if math.isinf(horizon):
        raise SimulationError("brute-force oracle requires finite deadlines")

    ltypes = sorted(
        {lt for part in components for phase in part.phases for lt in phase},
        key=lambda lt: (lt.kind, str(lt.location)),
    )

    initial = tuple(
        _advance(part, (0, _freeze(dict(part.phases[0]))))
        for part in components
    )

    seen: set[Tuple[Time, Tuple[_ComponentState, ...]]] = set()
    explored = 0

    def done(states: Tuple[_ComponentState, ...]) -> bool:
        return all(index >= len(components[j].phases) for j, (index, _) in enumerate(states))

    def dead(t: Time, states: Tuple[_ComponentState, ...]) -> bool:
        return any(
            index < len(components[j].phases) and t >= components[j].deadline
            for j, (index, _) in enumerate(states)
        )

    def search(t: Time, states: Tuple[_ComponentState, ...]) -> bool:
        nonlocal explored
        if done(states):
            return True
        if t >= horizon or dead(t, states):
            return False
        key = (t, states)
        if key in seen:
            return False
        seen.add(key)
        explored += 1
        if explored > MAX_STATES:
            raise SimulationError(
                f"brute-force exploration exceeded {MAX_STATES} states"
            )
        # Who may consume during (t, t + dt)?  Components whose window has
        # opened, whose deadline has not passed, with remaining demand.
        slice_window = Interval(t, t + dt)
        per_type_choices: list[list[Tuple[Tuple[int, int], ...]]] = []
        # For each ltype: list of ((component index, allocation), ...) options
        options_per_type: list[list[Tuple[Tuple[int, int], ...]]] = []
        for ltype in ltypes:
            capacity = int(available.quantity(ltype, slice_window))
            claimants: list[int] = []
            wants: list[int] = []
            for j, (index, remaining) in enumerate(states):
                part = components[j]
                if index >= len(part.phases):
                    continue
                if t < part.start or t >= part.deadline:
                    continue
                want = dict(remaining).get(ltype, 0)
                if want > 0:
                    claimants.append(j)
                    wants.append(int(min(want, capacity)))
            if not claimants or capacity <= 0:
                options_per_type.append([()])
                continue
            options = [
                tuple(zip(claimants, split))
                for split in _splits(capacity, wants)
            ]
            options_per_type.append(options or [()])

        def assemble(type_index: int, states_now: Tuple[_ComponentState, ...]) -> bool:
            if type_index == len(ltypes):
                advanced = tuple(
                    _advance(components[j], state) for j, state in enumerate(states_now)
                )
                return search(t + dt, advanced)
            for option in options_per_type[type_index]:
                updated = list(states_now)
                for j, amount in option:
                    if amount == 0:
                        continue
                    index, remaining = updated[j]
                    demand = dict(remaining)
                    demand[ltypes[type_index]] = demand.get(ltypes[type_index], 0) - amount
                    updated[j] = (index, _freeze(demand))
                if assemble(type_index + 1, tuple(updated)):
                    return True
            return False

        return assemble(0, states)

    return search(start, initial)


def sequential_feasible(
    available: ResourceSet,
    requirement: ComplexRequirement,
    *,
    dt: int = 1,
) -> bool:
    """Single-actor specialisation of :func:`concurrent_feasible`."""
    return concurrent_feasible(
        available,
        ConcurrentRequirement((requirement,), requirement.window),
        dt=dt,
    )
