"""Theorem-1 necessary-condition screen — the cheap, conservative gate.

Theorem 1 (single action): a requirement is satisfiable only if, for
every located type it demands, the quantity of that type existing inside
the window covers the demand (``U_s^d Theta >= Phi``).  This is a
*necessary* condition for every richer check in the calculus — a
sequential, concurrent, or Theorem-4 admission check decomposes the
window into subintervals whose supplies sum to at most the whole
window's, so a requirement failing the aggregate screen is guaranteed
infeasible.

That direction is the only one the screen asserts, which is what makes
it safe to run *instead of* the exact check when rejection is the only
action taken on its verdict:

* the spec linter (``repro-lint spec``, PR 5) flags screen failures as
  ``spec-supply-shortfall`` before any simulation touches a document;
* the service front door's brownout mode (:mod:`repro.service`) degrades
  low-criticality admission checks to this screen under overload —
  reject on failure, *defer* (never admit) on success — so degradation
  can only refuse work the exact Theorem-4 check would refuse too.

Both callers share :func:`supply_shortfall` so the screen cannot drift
from the theorem it implements.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional

from repro.intervals.interval import Interval
from repro.resources.resource_set import ResourceSet


def requirement_demands(requirement) -> Mapping:
    """Order-blind aggregate demand of any requirement level.

    ``SimpleRequirement`` exposes its demands directly; complex and
    concurrent requirements aggregate across phases/components — exactly
    the quantity Theorem 1 compares against window supply.
    """
    demands = getattr(requirement, "demands", None)
    if demands is not None:
        return demands
    return requirement.total_demands


def supply_shortfall(
    available: ResourceSet,
    requirement,
    *,
    window: Optional[Interval] = None,
    require_presence: bool = False,
) -> Optional[str]:
    """The Theorem-1 screen: ``None`` when the necessary condition holds.

    Returns a human-readable shortfall description naming the first
    located type whose aggregate demand exceeds everything ``available``
    can supply inside ``window`` (default: the requirement's own window).
    A non-``None`` result is a *proof of infeasibility*: no exact check
    against ``available`` (or any subset of it) can admit the
    requirement on that window.  ``None`` proves nothing — the exact
    check must still run before any admission.

    ``require_presence`` additionally treats a demanded located type
    that ``available`` never provides at all as a shortfall (the
    linter's ``spec-missing-resource`` reports that case separately, so
    it defaults off here).
    """
    window = requirement.window if window is None else window
    if window.is_empty:
        return f"window {window} is empty"
    if isinstance(window.end, float) and math.isinf(window.end):
        # An unbounded window supplies everything any finite profile
        # holds; the screen cannot refute it.
        return None
    provided = set(available.located_types)
    for ltype, demanded in requirement_demands(requirement).items():
        if ltype not in provided:
            if require_presence:
                return (
                    f"demands {demanded} of {ltype} but nothing ever "
                    "provides that located type"
                )
            continue
        supply = available.quantity(ltype, window)
        if demanded > supply:
            return (
                f"demands {demanded} of {ltype} inside {window} but "
                f"the resource set can supply at most {supply} there "
                "(Theorem-1 necessary condition fails)"
            )
    return None
