"""Theorem 2 — sequential computation accommodation.

A system can accommodate ``(Gamma, s, d)`` iff breakpoints
``t_1 < .. < t_{m-1}`` exist dividing ``(s, d)`` so that every phase's
simple requirement is satisfied within its own subinterval.

The procedure here finds such breakpoints greedily: each phase starts when
the previous one finished and claims each of its located types as early as
possible at the full available rate; the phase finishes when the slowest
of its types has accumulated its amount.  Greedy earliest-finish is exact
for a single computation against a fixed availability profile:

* availability integrals are monotone non-decreasing in the window end,
  so finishing a phase earlier never shrinks what later phases can use;
* a standard exchange argument turns any feasible breakpoint vector into
  the greedy one without violating any phase's requirement.

``tests/test_decision_sequential.py`` cross-validates this claim against
the independent brute-force searcher on randomized instances.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.computation.demands import Demands
from repro.computation.requirements import ComplexRequirement
from repro.decision.schedule import PhaseAssignment, Schedule
from repro.intervals.interval import Interval, Time
from repro.resources.located_type import LocatedType
from repro.resources.profile import RateProfile
from repro.resources.resource_set import ResourceSet


def _phase_plan(
    available: ResourceSet, demands: Demands, start: Time
) -> Optional[Dict[LocatedType, Time]]:
    """Per-type earliest finish times of one phase started at ``start``.

    One ``earliest_accumulation`` call per located type, shared by the
    feasibility check and the consumption claim (the split helpers below
    each recomputed it).  ``None`` when some amount can never be
    accumulated.
    """
    finishes: Dict[LocatedType, Time] = {}
    for ltype, quantity in demands.items():
        t = available.profile(ltype).earliest_accumulation(start, quantity)
        if t is None:
            return None
        finishes[ltype] = t
    return finishes


def earliest_phase_finish(
    available: ResourceSet, demands: Demands, start: Time
) -> Optional[Time]:
    """Earliest time by which every amount in ``demands`` can be
    accumulated when consumption starts at ``start``; ``None`` if some
    amount can never be accumulated."""
    finishes = _phase_plan(available, demands, start)
    if finishes is None:
        return None
    return max(finishes.values(), default=start)


def _phase_consumption(
    available: ResourceSet, demands: Demands, start: Time
) -> Dict[LocatedType, RateProfile]:
    """The earliest-finish consumption of one phase: each type is claimed
    at the full available rate from ``start`` until exactly its amount has
    been accumulated."""
    finishes = _phase_plan(available, demands, start)
    if finishes is None:  # pragma: no cover - caller checks feasibility first
        raise AssertionError("consumption requested for infeasible phase")
    return {
        ltype: available.profile(ltype).clamp(Interval(start, finish))
        for ltype, finish in finishes.items()
    }


def _align_up(t: Time, align: Time) -> Time:
    """Smallest multiple of ``align`` that is >= ``t`` (grid anchored at 0)."""
    quotient = t / align
    rounded = math.ceil(quotient)
    # Guard against float fuzz pushing an exact multiple up a full step.
    if (rounded - 1) * align >= t:
        rounded -= 1
    return rounded * align


def find_schedule(
    available: ResourceSet,
    requirement: ComplexRequirement,
    *,
    align: Optional[Time] = None,
) -> Optional[Schedule]:
    """Greedy earliest-finish witness for ``rho(Gamma, s, d)``.

    Returns a :class:`Schedule` whose breakpoints satisfy Theorem 2, or
    ``None`` when the requirement cannot be accommodated by ``available``.

    ``align`` rounds every phase boundary up to the given time grid.  The
    paper's transition rules advance in slices of ``Delta t`` — "the
    smallest time slice that the system can account for" — and an executor
    that switches phases only at slice boundaries can follow a witness
    exactly only if the witness's breakpoints lie on the grid.  Exact
    (continuous) reasoning is the default; admission controllers feeding a
    ``Delta t`` executor pass their slice length.
    """
    t = requirement.start
    deadline = requirement.deadline
    assignments: list[PhaseAssignment] = []
    for index, demands in enumerate(requirement.phases):
        finishes = _phase_plan(available, demands, t)
        if finishes is None:
            return None
        finish = max(finishes.values(), default=t)
        if align is not None:
            finish = _align_up(finish, align)
        if finish > deadline:
            return None
        # The claim reuses the per-type finish times computed above: each
        # type is clamped to its own accumulation window (alignment moves
        # only the phase boundary, not the claimed consumption).
        consumption = {
            ltype: available.profile(ltype).clamp(Interval(t, type_finish))
            for ltype, type_finish in finishes.items()
        }
        assignments.append(
            PhaseAssignment(index, Interval(t, max(finish, t)), consumption)
        )
        t = finish
    return Schedule(requirement, tuple(assignments))


def is_feasible(available: ResourceSet, requirement: ComplexRequirement) -> bool:
    """Theorem 2 as a predicate."""
    return find_schedule(available, requirement) is not None


def earliest_finish_time(
    available: ResourceSet, requirement: ComplexRequirement
) -> Optional[Time]:
    """The earliest completion time of the whole computation, ignoring the
    deadline (useful for laxity metrics); ``None`` when never completable."""
    t = requirement.start
    for demands in requirement.phases:
        finish = earliest_phase_finish(available, demands, t)
        if finish is None:
            return None
        t = finish
    return t
