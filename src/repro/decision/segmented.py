"""Deciding segmented (interacting-actor) requirements.

Extends Theorem 2's witness search to computations with waits (paper
Section VI, future work #1).  Reasoning is worst case in the delays:

* segment 0 may start at ``s``;
* segment ``i+1`` may start at ``finish_i + wait_i.max_delay``;
* the whole computation is assured iff the last segment finishes by ``d``
  under this pessimistic placement.

Soundness: an actual run's wait is at most ``max_delay``, so every
segment is *ready* no later than the schedule assumes; the claimed
resources sit at the worst-case positions and a ready-early segment
simply waits for its claimed window.  (Claiming at actual-readiness would
be tighter but loses assurance — an early reply cannot be promised.)

The slack between the optimistic (wait-free) finish and the worst-case
finish quantifies the price of interaction; see
``benchmarks/bench_interaction.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.computation.interaction import SegmentedRequirement
from repro.decision.schedule import Schedule
from repro.decision.sequential import find_schedule
from repro.intervals.interval import Time
from repro.resources.resource_set import ResourceSet


@dataclass(frozen=True)
class SegmentedSchedule:
    """Witness: one plain schedule per segment, worst-case released."""

    requirement: SegmentedRequirement
    segments: tuple[Schedule, ...]

    @property
    def finish_time(self) -> Time:
        return self.segments[-1].finish_time

    @property
    def slack(self) -> Time:
        return self.requirement.deadline - self.finish_time

    def consumption(self) -> ResourceSet:
        total = ResourceSet.empty()
        for schedule in self.segments:
            total = total | schedule.consumption()
        return total

    def release_times(self) -> tuple[Time, ...]:
        """Worst-case start of each segment."""
        return tuple(s.requirement.start for s in self.segments)


def find_segmented_schedule(
    available: ResourceSet,
    requirement: SegmentedRequirement,
    *,
    align: Optional[Time] = None,
) -> Optional[SegmentedSchedule]:
    """Worst-case witness for a segmented requirement, or None."""
    t = requirement.start
    remaining = available
    schedules: list[Schedule] = []
    for index in range(requirement.segment_count):
        if index > 0:
            t = t + requirement.waits[index - 1].max_delay
        if t >= requirement.deadline:
            return None
        segment_requirement = requirement.segment_requirement(index, t)
        schedule = find_schedule(remaining, segment_requirement, align=align)
        if schedule is None:
            return None
        schedules.append(schedule)
        remaining = remaining - schedule.consumption()
        t = schedule.finish_time
    return SegmentedSchedule(requirement, tuple(schedules))


def is_feasible(
    available: ResourceSet,
    requirement: SegmentedRequirement,
    *,
    align: Optional[Time] = None,
) -> bool:
    """Segmented accommodation as a predicate."""
    return find_segmented_schedule(available, requirement, align=align) is not None


def interaction_cost(
    available: ResourceSet, requirement: SegmentedRequirement
) -> Optional[Time]:
    """How much later the worst-case segmented finish is than the
    wait-free flattening's finish: the assured price of interaction.
    None when even the flattening is infeasible (cost is moot)."""
    from repro.decision.sequential import earliest_finish_time

    optimistic = earliest_finish_time(available, requirement.flattened())
    if optimistic is None:
        return None
    pessimistic = find_segmented_schedule(available, requirement)
    if pessimistic is None:
        return None
    return pessimistic.finish_time - optimistic
