"""Concurrent (multi-actor) accommodation (paper Section IV-B.3).

The paper reduces the concurrent question to a sequence of single-actor
questions: "Can the system accommodate one more actor computation when it
has already made commitments to the others?" — solved "step by step, by
trying to accommodate one more computation at a time".

:func:`find_concurrent_schedule` does exactly that: it admits the
components one at a time, subtracting each admitted schedule's claimed
consumption from availability before trying the next.  The admission
*order* matters; the default heuristic orders components by deadline then
by laxity (how tight the component is against availability), and
``exhaustive=True`` searches every admission order depth-first with
shared prefixes (each ordered prefix is scheduled once, and a component
failing against a prefix prunes every order extending it) — exact, but
worst-case factorial, so only sensible for small actor counts.

One-at-a-time admission is sound (an admitted set is executable: the
claimed consumptions are disjoint by construction) but not complete —
there are instances where only a cross-actor interleaving works.  The
completeness gap is measured in ``benchmarks/bench_theorem4_admission.py``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.computation.requirements import ComplexRequirement, ConcurrentRequirement
from repro.decision.schedule import ConcurrentSchedule, Schedule
from repro.decision.sequential import earliest_finish_time, find_schedule
from repro.resources.resource_set import ResourceSet

#: Safety bound for ``exhaustive=True``.
MAX_EXHAUSTIVE_COMPONENTS = 7


def _try_order(
    available: ResourceSet,
    components: Sequence[ComplexRequirement],
    align=None,
) -> Optional[ConcurrentSchedule]:
    remaining = available
    schedules: list[Schedule] = []
    for component in components:
        schedule = find_schedule(remaining, component, align=align)
        if schedule is None:
            return None
        schedules.append(schedule)
        remaining = remaining - schedule.consumption()
    return ConcurrentSchedule(tuple(schedules))


def _search_orders(
    remaining: ResourceSet,
    components: Sequence[ComplexRequirement],
    placed: list[Schedule],
    align=None,
) -> Optional[ConcurrentSchedule]:
    """Depth-first search over admission orders with shared prefixes.

    Explores the same permutation tree as trying every order outright, in
    the same lexicographic order (so the first witness found is identical)
    — but each ordered prefix is scheduled once instead of once per
    permutation, and a component that fails against a prefix prunes every
    permutation extending it.
    """
    if not components:
        return ConcurrentSchedule(tuple(placed))
    for index, component in enumerate(components):
        schedule = find_schedule(remaining, component, align=align)
        if schedule is None:
            continue
        placed.append(schedule)
        found = _search_orders(
            remaining - schedule.consumption(),
            components[:index] + components[index + 1 :],
            placed,
            align,
        )
        if found is not None:
            return found
        placed.pop()
    return None


def _laxity_key(available: ResourceSet, component: ComplexRequirement):
    finish = earliest_finish_time(available, component)
    laxity = (
        float("inf") if finish is None else component.deadline - finish
    )
    return (component.deadline, laxity)


def find_concurrent_schedule(
    available: ResourceSet,
    requirement: ConcurrentRequirement,
    *,
    exhaustive: bool = False,
    align=None,
) -> Optional[ConcurrentSchedule]:
    """Witness for ``rho(Lambda, s, d)`` via one-at-a-time admission.

    With ``exhaustive=False`` (default) a single deadline/laxity order is
    tried; with ``exhaustive=True`` all component permutations are tried
    (capped at :data:`MAX_EXHAUSTIVE_COMPONENTS` components).
    """
    components = list(requirement.components)
    if exhaustive:
        if len(components) > MAX_EXHAUSTIVE_COMPONENTS:
            raise ValueError(
                f"exhaustive admission is limited to "
                f"{MAX_EXHAUSTIVE_COMPONENTS} components, got {len(components)}"
            )
        return _search_orders(available, tuple(components), [], align)
    components.sort(key=lambda c: _laxity_key(available, c))
    return _try_order(available, components, align)


def is_feasible(
    available: ResourceSet,
    requirement: ConcurrentRequirement,
    *,
    exhaustive: bool = False,
    align=None,
) -> bool:
    """Concurrent accommodation as a predicate."""
    return (
        find_concurrent_schedule(
            available, requirement, exhaustive=exhaustive, align=align
        )
        is not None
    )
