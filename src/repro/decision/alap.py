"""As-late-as-possible scheduling: the time-reversed dual of Theorem 2.

The greedy earliest-finish procedure (:mod:`repro.decision.sequential`)
claims resources as early as possible.  Its mirror — claim as *late* as
the deadline allows — is equally valid as a Theorem 2 witness and answers
two questions the forward pass cannot:

* :func:`latest_start` — how long may the computation safely procrastinate?
  (the classical latest-release-time / criticality analysis);
* :func:`find_alap_schedule` — a witness whose claims hug the deadline,
  leaving the *earliest* resources free.

Duality (property-tested): an instance is ALAP-feasible iff it is
ASAP-feasible, and ``asap.finish_time <= deadline`` iff
``alap.start >= requirement.start``.

Which claiming strategy serves *future* admissions better is genuinely
workload-dependent: ASAP preserves late resources (good when newcomers
have later windows), ALAP preserves early ones (which would otherwise
expire first).  Experiment E17 (``benchmarks/bench_claim_strategy.py``)
measures the difference.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.computation.demands import Demands
from repro.computation.requirements import ComplexRequirement
from repro.decision.schedule import PhaseAssignment, Schedule
from repro.intervals.interval import Interval, Time
from repro.resources.located_type import LocatedType
from repro.resources.profile import RateProfile
from repro.resources.resource_set import ResourceSet


def latest_phase_start(
    available: ResourceSet, demands: Demands, end: Time
) -> Optional[Time]:
    """Latest time consumption may begin so that every amount in
    ``demands`` accumulates by ``end``; None when impossible."""
    start = end
    for ltype, quantity in demands.items():
        t = available.profile(ltype).latest_accumulation(end, quantity)
        if t is None:
            return None
        start = min(start, t)
    return start


def _phase_consumption_backward(
    available: ResourceSet, demands: Demands, end: Time
) -> Dict[LocatedType, RateProfile]:
    claimed: Dict[LocatedType, RateProfile] = {}
    for ltype, quantity in demands.items():
        profile = available.profile(ltype)
        start = profile.latest_accumulation(end, quantity)
        if start is None:  # pragma: no cover - caller checks feasibility
            raise AssertionError("backward consumption on infeasible phase")
        claimed[ltype] = profile.clamp(Interval(start, end))
    return claimed


def find_alap_schedule(
    available: ResourceSet, requirement: ComplexRequirement
) -> Optional[Schedule]:
    """Backward-greedy witness: phases pinned as late as the deadline and
    the sequencing allow.  Returns None iff the forward procedure would
    also return None (duality, property-tested)."""
    t = requirement.deadline
    start_bound = requirement.start
    assignments_reversed: list[PhaseAssignment] = []
    for index in range(len(requirement.phases) - 1, -1, -1):
        demands = requirement.phases[index]
        start = latest_phase_start(available, demands, t)
        if start is None or start < start_bound:
            return None
        consumption = _phase_consumption_backward(available, demands, t)
        assignments_reversed.append(
            PhaseAssignment(index, Interval(min(start, t), t), consumption)
        )
        t = start
    return Schedule(requirement, tuple(reversed(assignments_reversed)))


def latest_start(
    available: ResourceSet, requirement: ComplexRequirement
) -> Optional[Time]:
    """The latest time the computation could begin and still meet its
    deadline against ``available`` — None when it cannot even start at
    ``s``.  ``latest_start - s`` is the computation's scheduling slack
    (zero = critical)."""
    schedule = find_alap_schedule(available, requirement)
    if schedule is None:
        return None
    return schedule.assignments[0].window.start


def criticality(
    available: ResourceSet, requirement: ComplexRequirement
) -> Optional[Time]:
    """Slack before the computation becomes critical: ``latest_start - s``."""
    start = latest_start(available, requirement)
    if start is None:
        return None
    return start - requirement.start
