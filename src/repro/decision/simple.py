"""Theorem 1 — single-action accommodation.

The satisfaction function ``f(Theta, rho(gamma, s, d))`` returns whether
the resources existing within ``(s, d)`` cover the action's amounts:
``U_s^d Theta >= Phi(gamma)``.  Theorem 1: a single-action computation can
be accommodated iff the action is possible by ``s`` and ``f`` holds.

Besides the boolean answer the module produces a :class:`SimpleCheck`
report with per-type shortfalls — a practical necessity for callers that
must decide *where* to look for more resources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.computation.requirements import SimpleRequirement
from repro.intervals.interval import Time
from repro.resources.located_type import LocatedType
from repro.resources.resource_set import ResourceSet


@dataclass(frozen=True)
class SimpleCheck:
    """Outcome of evaluating ``f`` on one simple requirement."""

    satisfied: bool
    #: quantity available within the window, per demanded type
    available: Mapping[LocatedType, Time]
    #: max(0, demand - available), per demanded type
    shortfall: Mapping[LocatedType, Time]

    @property
    def total_shortfall(self) -> Time:
        return sum(self.shortfall.values())

    def __bool__(self) -> bool:
        return self.satisfied


def satisfies(available: ResourceSet, requirement: SimpleRequirement) -> bool:
    """The paper's ``f(Theta, rho(gamma, s, d))``."""
    return requirement.satisfied_by(available)


def check(available: ResourceSet, requirement: SimpleRequirement) -> SimpleCheck:
    """``f`` with a per-type availability/shortfall report."""
    supply: dict[LocatedType, Time] = {}
    shortfall: dict[LocatedType, Time] = {}
    satisfied = True
    for ltype, demand in requirement.demands.items():
        have = available.quantity(ltype, requirement.window)
        supply[ltype] = have
        missing = max(0, demand - have)
        shortfall[ltype] = missing
        if missing > 0:
            satisfied = False
    return SimpleCheck(satisfied, supply, shortfall)
