"""Witness schedules produced by the decision procedures.

Theorem 2 characterises feasibility of a sequential computation by the
*existence* of breakpoints ``t_1 .. t_{m-1}``.  Our procedures do better
than a yes/no answer: they return a :class:`Schedule` — the breakpoints
plus the exact consumption profile the computation would claim under the
earliest-finish execution.  Schedules are what admission control commits
to, what the simulator executes, and what Theorem 4's expiring-slack
reasoning subtracts from availability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.computation.requirements import ComplexRequirement
from repro.intervals.interval import Interval, Time
from repro.resources.located_type import LocatedType
from repro.resources.profile import RateProfile
from repro.resources.resource_set import ResourceSet


@dataclass(frozen=True)
class PhaseAssignment:
    """One phase pinned to its subinterval, with its claimed consumption."""

    index: int
    window: Interval
    consumption: Mapping[LocatedType, RateProfile]

    def claimed_quantity(self, ltype: LocatedType) -> Time:
        profile = self.consumption.get(ltype)
        return profile.integral(self.window) if profile is not None else 0


@dataclass(frozen=True)
class Schedule:
    """A feasible execution witness for one complex requirement."""

    requirement: ComplexRequirement
    assignments: tuple[PhaseAssignment, ...]

    @property
    def breakpoints(self) -> tuple[Time, ...]:
        """The interior breakpoints ``t_1 .. t_{m-1}`` of Theorem 2."""
        return tuple(a.window.end for a in self.assignments[:-1])

    @property
    def finish_time(self) -> Time:
        """When the last phase completes (<= the deadline)."""
        return self.assignments[-1].window.end if self.assignments else (
            self.requirement.start
        )

    @property
    def slack(self) -> Time:
        """Time to spare before the deadline."""
        return self.requirement.deadline - self.finish_time

    def consumption(self) -> ResourceSet:
        """Everything the schedule claims, as a resource set.

        This is what must be subtracted from system availability when the
        schedule is committed (and what Theorem 4 reasoning treats as
        *not* expiring).
        """
        per_type: Dict[LocatedType, list[RateProfile]] = {}
        for assignment in self.assignments:
            for ltype, profile in assignment.consumption.items():
                per_type.setdefault(ltype, []).append(profile)
        return ResourceSet.from_profiles(
            {ltype: RateProfile.sum(group) for ltype, group in per_type.items()}
        )

    def __repr__(self) -> str:
        return (
            f"Schedule({self.requirement.label or '?'}: finish={self.finish_time}, "
            f"breakpoints={list(self.breakpoints)})"
        )


@dataclass(frozen=True)
class ConcurrentSchedule:
    """Witness for a concurrent requirement: one schedule per actor."""

    schedules: tuple[Schedule, ...]

    @property
    def finish_time(self) -> Time:
        return max((s.finish_time for s in self.schedules), default=0)

    def consumption(self) -> ResourceSet:
        per_type: Dict[LocatedType, list[RateProfile]] = {}
        for schedule in self.schedules:
            for assignment in schedule.assignments:
                for ltype, profile in assignment.consumption.items():
                    per_type.setdefault(ltype, []).append(profile)
        return ResourceSet.from_profiles(
            {ltype: RateProfile.sum(group) for ltype, group in per_type.items()}
        )

    def __iter__(self):
        return iter(self.schedules)

    def __len__(self) -> int:
        return len(self.schedules)
