"""Decision procedures for Theorems 1-4 (the paper's reasoning, executable).

* :mod:`repro.decision.simple` — Theorem 1 (single action, the ``f`` check)
* :mod:`repro.decision.sequential` — Theorem 2 (breakpoint search)
* :mod:`repro.decision.concurrent` — Section IV-B.3 (one-at-a-time admission)
* :mod:`repro.decision.admission` — Theorem 4 (expiring-slack admission)
* :mod:`repro.decision.bruteforce` — exhaustive transition-tree oracles
"""

from repro.decision.admission import (
    AdmissionController,
    AdmissionDecision,
    clip_start,
)
from repro.decision.screen import requirement_demands, supply_shortfall
from repro.decision.alap import (
    criticality,
    find_alap_schedule,
    latest_phase_start,
    latest_start,
)
from repro.decision.bruteforce import concurrent_feasible, sequential_feasible
from repro.decision.concurrent import (
    MAX_EXHAUSTIVE_COMPONENTS,
    find_concurrent_schedule,
)
from repro.decision.schedule import ConcurrentSchedule, PhaseAssignment, Schedule
from repro.decision.sequential import (
    earliest_finish_time,
    earliest_phase_finish,
    find_schedule,
)
from repro.decision.segmented import (
    SegmentedSchedule,
    find_segmented_schedule,
    interaction_cost,
)
from repro.decision.simple import SimpleCheck, check, satisfies

# Predicate aliases: both sequential and concurrent expose ``is_feasible``;
# re-export them under unambiguous names.
from repro.decision.sequential import is_feasible as is_sequential_feasible
from repro.decision.concurrent import is_feasible as is_concurrent_feasible

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "clip_start",
    "requirement_demands",
    "supply_shortfall",
    "criticality",
    "find_alap_schedule",
    "latest_phase_start",
    "latest_start",
    "concurrent_feasible",
    "sequential_feasible",
    "MAX_EXHAUSTIVE_COMPONENTS",
    "find_concurrent_schedule",
    "ConcurrentSchedule",
    "PhaseAssignment",
    "Schedule",
    "earliest_finish_time",
    "earliest_phase_finish",
    "find_schedule",
    "SimpleCheck",
    "check",
    "satisfies",
    "SegmentedSchedule",
    "find_segmented_schedule",
    "interaction_cost",
    "is_sequential_feasible",
    "is_concurrent_feasible",
]
