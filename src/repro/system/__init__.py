"""Open-system simulation substrate.

Event-driven execution of the ROTA transition rules with pluggable
admission and allocation policies; topologies; traces; fault events.
"""

from repro.system.events import (
    ComputationArrivalEvent,
    ComputationLeaveEvent,
    Event,
    NodeCrashEvent,
    RateDegradationEvent,
    PartitionHealEvent,
    PartitionStartEvent,
    RecoveryOfferEvent,
    ResourceJoinEvent,
    ResourceRevocationEvent,
    arrival,
    node_crash,
    partition_heal,
    partition_start,
    rate_degradation,
    resource_join,
)
from repro.system.channel import (
    ChannelStats,
    LinkConfig,
    MessageChannel,
    NetworkModel,
    PartitionSpan,
    RpcOutcome,
    WireRecord,
)
from repro.system.checkpoint import (
    CheckpointStore,
    DeltaSnapshotter,
    Journal,
    SimulatorCheckpoint,
    VersionedDict,
    VersionedSet,
    atomic_writer,
    latest_checkpoint,
)
from repro.system.node import Topology
from repro.system.scheduler import (
    AllocationPolicy,
    EdfPolicy,
    FcfsPolicy,
    ReservationPolicy,
)
from repro.system.simulator import (
    ComputationRecord,
    OpenSystemSimulator,
    SimulationReport,
)
from repro.system.tracing import (
    PromiseViolation,
    ResourceLoss,
    SimulationTrace,
    TraceNote,
)

__all__ = [
    "ComputationArrivalEvent",
    "ComputationLeaveEvent",
    "Event",
    "NodeCrashEvent",
    "PartitionHealEvent",
    "PartitionStartEvent",
    "RateDegradationEvent",
    "RecoveryOfferEvent",
    "ResourceJoinEvent",
    "ResourceRevocationEvent",
    "arrival",
    "node_crash",
    "partition_heal",
    "partition_start",
    "rate_degradation",
    "resource_join",
    "ChannelStats",
    "LinkConfig",
    "MessageChannel",
    "NetworkModel",
    "PartitionSpan",
    "RpcOutcome",
    "WireRecord",
    "Topology",
    "AllocationPolicy",
    "EdfPolicy",
    "FcfsPolicy",
    "ReservationPolicy",
    "CheckpointStore",
    "DeltaSnapshotter",
    "Journal",
    "SimulatorCheckpoint",
    "VersionedDict",
    "VersionedSet",
    "atomic_writer",
    "latest_checkpoint",
    "ComputationRecord",
    "OpenSystemSimulator",
    "SimulationReport",
    "PromiseViolation",
    "ResourceLoss",
    "SimulationTrace",
    "TraceNote",
]
