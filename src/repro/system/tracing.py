"""Simulation traces: an audit log of states, transitions, and notes.

Traces let tests and benchmarks assert not only final outcomes but also
*how* the system evolved: per-slice consumption and expiry, the moments
arrivals were admitted or rejected, aggregate accounting that must
balance, and — under fault injection — every capacity loss and promise
violation.

The conservation identity the trace supports is::

    offered = consumed + expired + revoked + degraded + crash-lost
              (+ capacity still ahead of the clock, mid-run)

:meth:`SimulationTrace.conservation_gaps` checks it both at run end (no
remaining capacity inside the horizon) and mid-run (remaining capacity
passed in), which is what lets the simulator use the auditor as a runtime
invariant checker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.intervals.interval import Time
from repro.logic.transitions import Transition
from repro.resources.located_type import LocatedType

#: Causes a capacity loss can carry (anything else is a modelling bug).
#: The first three are *faults* — capacity the system believed in that
#: vanished.  ``"shed"`` is deliberate: capacity the admission front door
#: refused at the gate (e.g. joins from an enclave whose circuit breaker
#: is open, see :mod:`repro.service`) — never acquired, so never part of
#: any promise, but still offered and therefore still owed a leg in the
#: conservation identity: ``offered = consumed + expired + lost + shed``.
#: ``"lease-expired"`` is *conservative renunciation*: leased capacity an
#: enclave stops trusting because renewals could not cross a network
#: partition (see :mod:`repro.faults.netfaults`) — the enclave evicts
#: whatever relied on it and the identity gains its final leg:
#: ``offered = consumed + expired + lost + shed + lease-expired``.
LOSS_CAUSES = ("revocation", "crash", "degradation", "shed", "lease-expired")


def _check_cause(cause: str) -> None:
    """Reject cause strings outside the known event vocabulary."""
    if cause not in LOSS_CAUSES:
        raise ValueError(
            f"unknown loss cause {cause!r}; expected one of {LOSS_CAUSES}"
        )


@dataclass(frozen=True)
class TraceNote:
    """A timestamped free-form annotation (event outcomes etc.)."""

    time: Time
    message: str


@dataclass(frozen=True)
class ResourceLoss:
    """Capacity that vanished outside the declared model: one located
    type's quantity lost to one fault event."""

    time: Time
    cause: str  # one of LOSS_CAUSES
    ltype: LocatedType
    quantity: Time


@dataclass(frozen=True)
class PromiseViolation:
    """An admitted computation whose assurance died: at ``time`` the
    surviving resources can no longer cover its remaining demand within
    its window."""

    time: Time
    label: str
    cause: str  # the fault cause that triggered detection
    deadline: Time
    #: order-blind total demand still outstanding when detected
    remaining_total: Time


@dataclass
class SimulationTrace:
    """Ordered record of every timed transition plus annotations."""

    transitions: List[Transition] = field(default_factory=list)
    notes: List[TraceNote] = field(default_factory=list)
    losses: List[ResourceLoss] = field(default_factory=list)
    violations: List[PromiseViolation] = field(default_factory=list)

    def record(self, transition: Transition) -> None:
        self.transitions.append(transition)

    def note(self, time: Time, message: str) -> None:
        self.notes.append(TraceNote(time, message))

    def record_loss(
        self, time: Time, cause: str, ltype: LocatedType, quantity: Time
    ) -> None:
        _check_cause(cause)
        self.losses.append(ResourceLoss(time, cause, ltype, quantity))

    def record_violation(self, violation: PromiseViolation) -> None:
        self.violations.append(violation)

    # ------------------------------------------------------------------
    @property
    def steps(self) -> int:
        return len(self.transitions)

    @property
    def violated_labels(self) -> Tuple[str, ...]:
        """Labels of every promise-violation victim, in detection order."""
        return tuple(v.label for v in self.violations)

    def violations_of(
        self, label: str, *, cause: str | None = None
    ) -> Tuple[PromiseViolation, ...]:
        """Violations recorded against ``label`` (empty tuple when the
        trace recorded none — including on an empty trace).

        ``cause`` restricts to violations triggered (at least in part) by
        one fault cause; it must name a known cause from
        :data:`LOSS_CAUSES`, otherwise :class:`ValueError` is raised — an
        unknown cause would silently return the same empty tuple as "never
        violated".
        """
        if cause is not None:
            _check_cause(cause)
        return tuple(
            v
            for v in self.violations
            if v.label == label
            and (cause is None or cause in v.cause.split("+"))
        )

    def consumed_totals(self) -> Dict[LocatedType, Time]:
        """Total consumption per located type across the trace.

        Empty traces yield empty (zero-everywhere) totals, never an error.
        """
        totals: Dict[LocatedType, Time] = {}
        for transition in self.transitions:
            for _, ltype, quantity in transition.label.consumed:
                totals[ltype] = totals.get(ltype, 0) + quantity
        return totals

    def expired_totals(self) -> Dict[LocatedType, Time]:
        """Total expired (unused) quantity per located type."""
        totals: Dict[LocatedType, Time] = {}
        for transition in self.transitions:
            for ltype, quantity in transition.label.expired:
                totals[ltype] = totals.get(ltype, 0) + quantity
        return totals

    def lost_totals(self, cause: str | None = None) -> Dict[LocatedType, Time]:
        """Total capacity lost to faults per located type.

        ``cause`` restricts to one of :data:`LOSS_CAUSES` and is validated
        *before* the trace is consulted: an unknown cause raises
        :class:`ValueError` rather than returning an empty dict
        indistinguishable from "no losses".  With no cause, all losses
        aggregate (the ``+ revoked + crash-lost`` leg of the extended
        conservation identity).  An empty (or loss-free) trace yields
        empty, zero-everywhere totals, never an error.
        """
        if cause is not None:
            _check_cause(cause)
        if not self.losses:
            return {}
        totals: Dict[LocatedType, Time] = {}
        for loss in self.losses:
            if cause is not None and loss.cause != cause:
                continue
            totals[loss.ltype] = totals.get(loss.ltype, 0) + loss.quantity
        return totals

    def revoked_totals(self) -> Dict[LocatedType, Time]:
        return self.lost_totals("revocation")

    def crash_lost_totals(self) -> Dict[LocatedType, Time]:
        return self.lost_totals("crash")

    def shed_totals(self) -> Dict[LocatedType, Time]:
        """Capacity deliberately refused at the admission front door."""
        return self.lost_totals("shed")

    def lease_expired_totals(self) -> Dict[LocatedType, Time]:
        """Leased capacity conservatively renounced at lease expiry."""
        return self.lost_totals("lease-expired")

    def consumption_by_actor(self) -> Dict[str, Dict[LocatedType, Time]]:
        """Who consumed what, over the whole trace."""
        totals: Dict[str, Dict[LocatedType, Time]] = {}
        for transition in self.transitions:
            for actor, ltype, quantity in transition.label.consumed:
                bucket = totals.setdefault(actor, {})
                bucket[ltype] = bucket.get(ltype, 0) + quantity
        return totals

    # ------------------------------------------------------------------
    def conservation_gaps(
        self,
        offered: Mapping[LocatedType, Time],
        *,
        remaining: Optional[object] = None,  # ResourceSet, duck-typed
        remaining_window: Optional[object] = None,  # Interval
        include_losses: bool = True,
        tolerance: float = 1e-6,
    ) -> List[str]:
        """Extended conservation check, one message per imbalance.

        At run end: ``offered = consumed + expired (+ lost)`` per located
        type.  Mid-run, pass the live state's ``theta`` as ``remaining``
        and ``Interval(now, horizon)`` as ``remaining_window``: capacity
        still ahead of the clock has neither been consumed nor expired,
        and balances the identity at every instant.
        """
        consumed = self.consumed_totals()
        expired = self.expired_totals()
        all_lost = self.lost_totals()
        lost = all_lost if include_losses else {}
        gaps: List[str] = []
        # Key discovery always includes loss-only types: a located type
        # that shows up *only* in loss records (never offered, consumed,
        # or expired) is itself an accounting anomaly and must surface in
        # the report — even when ``include_losses=False`` keeps losses
        # out of the balanced side, where 0 == 0 would otherwise let it
        # vanish silently.
        keys = set(offered) | set(consumed) | set(expired) | set(all_lost)
        for ltype in sorted(keys, key=str):
            accounted = (
                consumed.get(ltype, 0)
                + expired.get(ltype, 0)
                + lost.get(ltype, 0)
            )
            if remaining is not None and remaining_window is not None:
                accounted = accounted + remaining.quantity(
                    ltype, remaining_window
                )
            total = offered.get(ltype, 0)
            if abs(float(accounted) - float(total)) > tolerance:
                legs = "consumed+expired+lost"
                if self.lost_totals("shed"):
                    # deliberate front-door refusals ride in the loss
                    # records; name the leg so the message matches the
                    # extended identity offered = c + e + lost + shed
                    legs += "+shed"
                if self.lost_totals("lease-expired"):
                    # conservative lease renunciations ride there too;
                    # the full identity reads
                    # offered = c + e + lost + shed + lease-expired
                    legs += "+lease-expired"
                gaps.append(
                    f"conservation: {ltype} offered {total} but "
                    f"accounted ({legs}"
                    f"{'+remaining' if remaining is not None else ''}) "
                    f"= {accounted}"
                )
            elif (
                not include_losses
                and ltype not in offered
                and abs(float(all_lost.get(ltype, 0))) > tolerance
            ):
                gaps.append(
                    f"conservation: {ltype} lost "
                    f"{all_lost[ltype]} but was never offered"
                )
        return gaps

    def timeline(self) -> Iterator[Tuple[Time, str]]:
        """Merged, time-ordered view of notes and transition summaries."""
        entries: List[Tuple[Time, str]] = [
            (note.time, note.message) for note in self.notes
        ]
        entries.extend(
            (tr.source.t, str(tr.label)) for tr in self.transitions
        )
        entries.extend(
            (loss.time, f"lost to {loss.cause}: {loss.quantity} {loss.ltype}")
            for loss in self.losses
        )
        entries.extend(
            (v.time, f"promise violated: {v.label!r} ({v.cause})")
            for v in self.violations
        )
        return iter(sorted(entries, key=lambda item: item[0]))
