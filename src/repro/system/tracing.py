"""Simulation traces: an audit log of states, transitions, and notes.

Traces let tests and benchmarks assert not only final outcomes but also
*how* the system evolved: per-slice consumption and expiry, the moments
arrivals were admitted or rejected, and aggregate accounting that must
balance (conservation check: offered = consumed + expired within the
traced horizon for every located type).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.intervals.interval import Time
from repro.logic.transitions import Transition
from repro.resources.located_type import LocatedType


@dataclass(frozen=True)
class TraceNote:
    """A timestamped free-form annotation (event outcomes etc.)."""

    time: Time
    message: str


@dataclass
class SimulationTrace:
    """Ordered record of every timed transition plus annotations."""

    transitions: List[Transition] = field(default_factory=list)
    notes: List[TraceNote] = field(default_factory=list)

    def record(self, transition: Transition) -> None:
        self.transitions.append(transition)

    def note(self, time: Time, message: str) -> None:
        self.notes.append(TraceNote(time, message))

    # ------------------------------------------------------------------
    @property
    def steps(self) -> int:
        return len(self.transitions)

    def consumed_totals(self) -> Dict[LocatedType, Time]:
        """Total consumption per located type across the trace."""
        totals: Dict[LocatedType, Time] = {}
        for transition in self.transitions:
            for _, ltype, quantity in transition.label.consumed:
                totals[ltype] = totals.get(ltype, 0) + quantity
        return totals

    def expired_totals(self) -> Dict[LocatedType, Time]:
        """Total expired (unused) quantity per located type."""
        totals: Dict[LocatedType, Time] = {}
        for transition in self.transitions:
            for ltype, quantity in transition.label.expired:
                totals[ltype] = totals.get(ltype, 0) + quantity
        return totals

    def consumption_by_actor(self) -> Dict[str, Dict[LocatedType, Time]]:
        """Who consumed what, over the whole trace."""
        totals: Dict[str, Dict[LocatedType, Time]] = {}
        for transition in self.transitions:
            for actor, ltype, quantity in transition.label.consumed:
                bucket = totals.setdefault(actor, {})
                bucket[ltype] = bucket.get(ltype, 0) + quantity
        return totals

    def timeline(self) -> Iterator[Tuple[Time, str]]:
        """Merged, time-ordered view of notes and transition summaries."""
        entries: List[Tuple[Time, str]] = [
            (note.time, note.message) for note in self.notes
        ]
        entries.extend(
            (tr.source.t, str(tr.label)) for tr in self.transitions
        )
        return iter(sorted(entries, key=lambda item: item[0]))
