"""Discrete-event simulator for open distributed systems.

The simulator executes the ROTA transition rules against a timeline of
open-system events (resources joining, computations arriving/leaving),
with two pluggable policies:

* an **admission policy** (see :mod:`repro.baselines`) decides whether an
  arriving computation is accommodated, and
* an **allocation policy** (see :mod:`repro.system.scheduler`) chooses a
  concrete branch of the evolution tree each ``dt`` slice.

The simulator is the *ground truth* for the reproduction's synthetic
evaluation: an admission policy's promise ("this computation's deadline is
assured") is checked against what actually happens when the admitted set
executes.  Deadline misses of admitted computations are the soundness
failures the paper's reasoning is designed to rule out.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.baselines.base import AdmissionPolicy
from repro.computation.requirements import ConcurrentRequirement
from repro.errors import SimulationError, TransitionError
from repro.intervals.interval import Interval, Time
from repro.logic.state import SystemState, initial_state
from repro.logic.transitions import Transition, accommodate, acquire, leave, step
from repro.resources.located_type import LocatedType
from repro.resources.resource_set import ResourceSet
from repro.system.events import (
    ComputationArrivalEvent,
    ComputationLeaveEvent,
    Event,
    ResourceJoinEvent,
    ResourceRevocationEvent,
)
from repro.system.scheduler import AllocationPolicy, EdfPolicy, ReservationPolicy
from repro.system.tracing import SimulationTrace


@dataclass
class ComputationRecord:
    """Lifecycle of one arrival, as observed by the simulator."""

    label: str
    arrival_time: Time
    window: Interval
    #: the arrival's order-blind total demand, for audit accounting
    total_demands: Optional[object] = None
    admitted: bool = False
    rejection_reason: str = ""
    completed: bool = False
    finish_time: Optional[Time] = None
    missed: bool = False

    @property
    def outcome(self) -> str:
        if not self.admitted:
            return "rejected"
        if self.completed:
            return "completed"
        if self.missed:
            return "missed"
        return "running"


@dataclass
class SimulationReport:
    """Everything a benchmark needs to score one simulation run."""

    policy_name: str
    records: List[ComputationRecord]
    offered: Dict[LocatedType, Time]
    consumed: Dict[LocatedType, Time]
    trace: SimulationTrace
    horizon: Time

    # ------------------------------------------------------------------
    @property
    def arrivals(self) -> int:
        return len(self.records)

    @property
    def admitted(self) -> int:
        return sum(1 for r in self.records if r.admitted)

    @property
    def completed(self) -> int:
        return sum(1 for r in self.records if r.completed)

    @property
    def missed(self) -> int:
        return sum(1 for r in self.records if r.missed)

    @property
    def rejected(self) -> int:
        return sum(1 for r in self.records if not r.admitted)

    @property
    def admission_precision(self) -> float:
        """Fraction of admitted computations whose deadline held."""
        admitted = self.admitted
        return self.completed / admitted if admitted else 1.0

    @property
    def utilization(self) -> float:
        """Consumed fraction of all offered resource quantity."""
        offered = sum(self.offered.values())
        if offered == 0:
            return 0.0
        return float(sum(self.consumed.values())) / float(offered)

    def record_of(self, label: str) -> ComputationRecord:
        for record in self.records:
            if record.label == label:
                return record
        raise KeyError(f"no record for {label!r}")


class OpenSystemSimulator:
    """Event-driven executor of the ROTA open-system rules."""

    def __init__(
        self,
        admission_policy: AdmissionPolicy,
        *,
        initial_resources: ResourceSet | None = None,
        allocation_policy: AllocationPolicy | None = None,
        dt: Time = 1,
        start_time: Time = 0,
    ) -> None:
        if dt <= 0:
            raise SimulationError(f"dt must be positive, got {dt!r}")
        self._admission = admission_policy
        self._allocation = allocation_policy or EdfPolicy()
        self._dt = dt
        self._events: List[tuple] = []
        self._state = initial_state(
            initial_resources or ResourceSet.empty(), start_time
        )
        self._start_time = start_time
        if initial_resources is not None and not initial_resources.is_empty:
            self._admission.observe_resources(initial_resources, start_time)

    # ------------------------------------------------------------------
    # Event scheduling
    # ------------------------------------------------------------------
    def schedule(self, *events: Event) -> None:
        # The heap holds (time, seq, event) tuples: event classes differ,
        # and dataclass-generated ordering never compares across classes.
        for event in events:
            heapq.heappush(self._events, (event.time, event.seq, event))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, horizon: Time) -> SimulationReport:
        """Execute until ``horizon``; returns the scored report."""
        state = self._state
        records: Dict[str, ComputationRecord] = {}
        offered: Dict[LocatedType, Time] = {}
        consumed: Dict[LocatedType, Time] = {}
        trace = SimulationTrace()
        run_window = Interval(self._start_time, horizon)

        def tally_offered(resources: ResourceSet) -> None:
            for ltype in resources.located_types:
                amount = resources.quantity(ltype, run_window)
                if amount > 0:
                    offered[ltype] = offered.get(ltype, 0) + amount

        tally_offered(state.theta)

        while state.t < horizon:
            # 1. Instantaneous rules at the current instant.
            while self._events and self._events[0][0] <= state.t:
                _, _, event = heapq.heappop(self._events)
                state = self._apply_event(event, state, records, tally_offered, trace)

            # 2. One timed slice via the general transition rule.
            allocations = self._allocation.allocate(state, self._dt)
            transition = step(state, self._dt, allocations)
            trace.record(transition)
            for _, ltype, quantity in transition.label.consumed:
                consumed[ltype] = consumed.get(ltype, 0) + quantity
            state = transition.target

            # 3. Outcome bookkeeping.  A multi-actor arrival completes when
            # every component completes; it misses when any component is
            # still unfinished at the arrival's deadline.
            for record in records.values():
                if not record.admitted or record.completed or record.missed:
                    continue
                components = [
                    p
                    for p in state.rho
                    if p.label == record.label
                    or p.label.startswith(record.label + "[")
                ]
                if not components:
                    continue
                if all(p.is_complete for p in components):
                    record.completed = True
                    record.finish_time = state.t
                elif state.t >= record.window.end:
                    record.missed = True

        self._state = state
        return SimulationReport(
            policy_name=self._admission.name,
            records=list(records.values()),
            offered=offered,
            consumed=consumed,
            trace=trace,
            horizon=horizon,
        )

    # ------------------------------------------------------------------
    def _apply_event(
        self,
        event: Event,
        state: SystemState,
        records: Dict[str, "ComputationRecord"],
        tally_offered,
        trace: SimulationTrace,
    ) -> SystemState:
        if isinstance(event, ResourceJoinEvent):
            joining = event.resources.truncate_before(state.t)
            tally_offered(joining)
            self._admission.observe_resources(joining, state.t)
            trace.note(state.t, f"resources join: {len(joining.located_types)} types")
            state = acquire(state, joining)
            # New capacity is a new frontier: re-offer rejected arrivals
            # still inside their windows.
            for label, requirement in self._admission.retry_candidates(state.t):
                record = records.get(label)
                if record is None or record.admitted:
                    continue
                decision = self._admission.decide(requirement, state.t)
                if not decision.admitted:
                    continue
                record.admitted = True
                record.rejection_reason = ""
                trace.note(state.t, f"retry admitted {label!r}")
                if decision.schedule is not None and isinstance(
                    self._allocation, ReservationPolicy
                ):
                    self._allocation.reserve(label, decision.schedule)
                state = accommodate(state, _relabel(requirement, label))
            return state

        if isinstance(event, ComputationArrivalEvent):
            label = event.label
            if label in records:
                raise SimulationError(f"duplicate computation label {label!r}")
            record = ComputationRecord(
                label=label,
                arrival_time=state.t,
                window=event.requirement.window,
                total_demands=event.requirement.total_demands,
            )
            records[label] = record
            decision = self._admission.decide(event.requirement, state.t)
            record.admitted = decision.admitted
            record.rejection_reason = decision.reason
            trace.note(
                state.t,
                f"arrival {label!r}: "
                f"{'admitted' if decision.admitted else 'rejected'}"
                + (f" ({decision.reason})" if decision.reason else ""),
            )
            if decision.admitted:
                if decision.schedule is not None and isinstance(
                    self._allocation, ReservationPolicy
                ):
                    self._allocation.reserve(label, decision.schedule)
                relabelled = _relabel(event.requirement, label)
                return accommodate(state, relabelled)
            return state

        if isinstance(event, ResourceRevocationEvent):
            # A promise violation: future capacity disappears.  The state's
            # theta shrinks (clamped at zero); admission policies are NOT
            # told — their committed schedules silently lost their backing,
            # which is exactly the failure mode being measured.
            revoked = event.resources.truncate_before(state.t)
            trace.note(
                state.t,
                f"revocation: {len(revoked.located_types)} types lose capacity",
            )
            return SystemState(
                state.theta.saturating_minus(revoked), state.rho, state.t
            )

        if isinstance(event, ComputationLeaveEvent):
            try:
                state = leave(state, event.label)
            except (KeyError, TransitionError):
                trace.note(state.t, f"leave {event.label!r} refused")
                return state
            self._admission.on_leave(event.label, state.t)
            if isinstance(self._allocation, ReservationPolicy):
                self._allocation.release(event.label)
            record = records.get(event.label)
            if record is not None:
                record.admitted = False
                record.rejection_reason = "withdrew before start"
            trace.note(state.t, f"leave {event.label!r}")
            return state

        raise SimulationError(f"unknown event {event!r}")


def _relabel(
    requirement: ConcurrentRequirement, label: str
) -> ConcurrentRequirement:
    """Prefix component labels with the arrival label so state progress
    records are unambiguous across arrivals."""
    from repro.computation.requirements import ComplexRequirement

    components = []
    for index, part in enumerate(requirement.components):
        new_label = label if len(requirement.components) == 1 else f"{label}[{index}]"
        components.append(
            ComplexRequirement(part.phases, part.window, label=new_label)
        )
    return ConcurrentRequirement(tuple(components), requirement.window)
