"""Discrete-event simulator for open distributed systems.

The simulator executes the ROTA transition rules against a timeline of
open-system events (resources joining, computations arriving/leaving),
with two pluggable policies:

* an **admission policy** (see :mod:`repro.baselines`) decides whether an
  arriving computation is accommodated, and
* an **allocation policy** (see :mod:`repro.system.scheduler`) chooses a
  concrete branch of the evolution tree each ``dt`` slice.

The simulator is the *ground truth* for the reproduction's synthetic
evaluation: an admission policy's promise ("this computation's deadline is
assured") is checked against what actually happens when the admitted set
executes.  Deadline misses of admitted computations are the soundness
failures the paper's reasoning is designed to rule out.

Beyond the paper's model, the simulator also executes *fault* events
(crashes, unannounced revocations, stragglers — see :mod:`repro.faults`):
every capacity loss is measured into the trace so the extended
conservation identity ``offered = consumed + expired + lost`` stays
checkable, victims of dead promises are detected at the instant of the
fault, and — when a :class:`~repro.faults.recovery.RecoveryPolicy` is
configured — routed through re-admission with capped exponential backoff,
or gracefully abandoned with salvage accounting.
"""

from __future__ import annotations

import heapq
import pickle
from dataclasses import dataclass, field as dataclasses_field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.baselines.base import AdmissionPolicy, PolicyDecision
from repro.computation.requirements import ConcurrentRequirement
from repro.errors import CheckpointError, SimulationError, TransitionError
from repro.intervals.interval import Interval, Time
from repro.logic.state import SystemState, initial_state
from repro.logic.transitions import accommodate, acquire, leave, step
from repro.observability import PhaseTimer, get_registry
from repro.resources.located_type import LocatedType, Node
from repro.resources.resource_set import ResourceSet
from repro.serialization import time_to_wire
from repro.system.checkpoint import (
    CheckpointStore,
    DeltaSnapshotter,
    Journal,
    SimulatorCheckpoint,
    VersionedDict,
    VersionedSet,
    check_journal_header,
    journal_header,
)
from repro.system.events import (
    ComputationArrivalEvent,
    ComputationLeaveEvent,
    Event,
    NodeCrashEvent,
    PartitionHealEvent,
    PartitionStartEvent,
    RateDegradationEvent,
    RecoveryOfferEvent,
    ResourceJoinEvent,
    ResourceRevocationEvent,
    restore_sequence,
    sequence_value,
)
from repro.system.scheduler import AllocationPolicy, EdfPolicy, ReservationPolicy
from repro.system.tracing import PromiseViolation, SimulationTrace


@dataclass
class ComputationRecord:
    """Lifecycle of one arrival, as observed by the simulator."""

    label: str
    arrival_time: Time
    window: Interval
    #: the arrival's order-blind total demand, for audit accounting
    total_demands: Optional[object] = None
    admitted: bool = False
    rejection_reason: str = ""
    completed: bool = False
    finish_time: Optional[Time] = None
    missed: bool = False
    #: time the admission promise was detected dead (None = never violated)
    violated_at: Optional[Time] = None
    #: re-admission offers made by the recovery pipeline
    recovery_attempts: int = 0
    #: re-admitted after a violation (completion then counts as recovered)
    recovered: bool = False
    #: the recovery pipeline gave up; the record is terminal, not stuck
    abandoned: bool = False
    #: consumed quantity credited to the computation when it was abandoned
    salvaged: float = 0.0

    @property
    def outcome(self) -> str:
        if not self.admitted:
            return "rejected"
        if self.abandoned:
            return "abandoned"
        if self.completed:
            return "recovered" if self.recovered else "completed"
        if self.missed:
            return "missed"
        return "running"


@dataclass
class SimulationReport:
    """Everything a benchmark needs to score one simulation run."""

    policy_name: str
    records: List[ComputationRecord]
    offered: Dict[LocatedType, Time]
    consumed: Dict[LocatedType, Time]
    trace: SimulationTrace
    horizon: Time
    #: the process-global metrics registry's snapshot at run end, when a
    #: live registry was installed (None under the default no-op one).
    #: Pure observation: never journaled, checkpointed, or fingerprinted.
    metrics: Optional[Dict[str, object]] = None
    #: non-fatal anomalies surfaced by resume (e.g. a torn journal tail
    #: truncated on recovery).  Pure observation, like ``metrics``: a
    #: resumed run must stay field-for-field identical to the
    #: uninterrupted one, so warnings never enter the trace or the
    #: replay fingerprint.
    warnings: List[str] = dataclasses_field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def arrivals(self) -> int:
        return len(self.records)

    @property
    def admitted(self) -> int:
        return sum(1 for r in self.records if r.admitted)

    @property
    def completed(self) -> int:
        return sum(1 for r in self.records if r.completed)

    @property
    def missed(self) -> int:
        return sum(1 for r in self.records if r.missed)

    @property
    def rejected(self) -> int:
        return sum(1 for r in self.records if not r.admitted)

    @property
    def recovered(self) -> int:
        """Violated computations that were re-admitted and completed."""
        return sum(1 for r in self.records if r.completed and r.recovered)

    @property
    def abandoned(self) -> int:
        return sum(1 for r in self.records if r.abandoned)

    @property
    def violations(self) -> tuple[PromiseViolation, ...]:
        return tuple(self.trace.violations)

    @property
    def admission_precision(self) -> float:
        """Fraction of admitted computations whose deadline held."""
        admitted = self.admitted
        return self.completed / admitted if admitted else 1.0

    @property
    def utilization(self) -> float:
        """Consumed fraction of all offered resource quantity."""
        offered = sum(self.offered.values())
        if offered == 0:
            return 0.0
        return float(sum(self.consumed.values())) / float(offered)

    def record_of(self, label: str) -> ComputationRecord:
        for record in self.records:
            if record.label == label:
                return record
        raise KeyError(f"no record for {label!r}")


def _make_phase(registry, histogram):
    """Per-run phase-timer factory: the live registry gets one reusable
    :class:`~repro.observability.PhaseTimer` per phase name (a span in
    the run's timing tree plus an observation in the per-phase latency
    histogram — wall-clock only, never simulation state), the no-op
    registry gets its shared null span (zero allocation)."""
    if not registry.enabled:
        return registry.span
    timers: Dict[str, PhaseTimer] = {}

    def phase(name: str) -> PhaseTimer:
        timer = timers.get(name)
        if timer is None:
            timer = timers[name] = PhaseTimer(
                registry, histogram.labels(phase=name), name
            )
        return timer

    return phase


def _metric_amount(quantity):
    """``float(quantity)`` for metric samples, minus the dispatch tax.

    Fractions reach ``float()`` through ``numbers.Rational.__float__``
    (abstract-property lookups plus method dispatch), which is the
    single largest per-sample cost in instrumented runs; ints and floats
    need no conversion at all.  Yields bit-identical values to
    ``float()``."""
    kind = type(quantity)
    if kind is int or kind is float:
        return quantity
    try:
        return quantity._numerator / quantity._denominator
    except AttributeError:
        return float(quantity)


def _as_versioned_dict(value: Dict) -> "VersionedDict":
    """Restored snapshot section as a :class:`VersionedDict` (pre-delta
    checkpoints pickled plain dicts)."""
    return value if isinstance(value, VersionedDict) else VersionedDict(value)


@dataclass
class _ActiveVictim:
    """A promise-violation victim between eviction and its final fate."""

    label: str
    residual: ConcurrentRequirement
    attempts: int = 0


class OpenSystemSimulator:
    """Event-driven executor of the ROTA open-system rules."""

    def __init__(
        self,
        admission_policy: AdmissionPolicy,
        *,
        initial_resources: ResourceSet | None = None,
        allocation_policy: AllocationPolicy | None = None,
        dt: Time = 1,
        start_time: Time = 0,
        recovery: "RecoveryPolicy | None" = None,
        invariant_interval: int = 0,
    ) -> None:
        if dt <= 0:
            raise SimulationError(f"dt must be positive, got {dt!r}")
        if invariant_interval < 0:
            raise SimulationError(
                f"invariant_interval must be >= 0, got {invariant_interval!r}"
            )
        self._admission = admission_policy
        self._allocation = allocation_policy or EdfPolicy()
        self._dt = dt
        self._events: List[tuple] = []
        self._state = initial_state(
            initial_resources or ResourceSet.empty(), start_time
        )
        self._start_time = start_time
        self._recovery = recovery
        self._invariant_interval = invariant_interval
        # Run-scoped fault/recovery bookkeeping (reset by run()).
        self._victims: Dict[str, _ActiveVictim] = {}
        # Versioned containers: their mutation counters let the delta
        # snapshotter skip unchanged sections without byte comparisons.
        # Only sections whose *values* are immutable qualify — records
        # and victims are mutated in place, so they stay plain dicts.
        self._flagged: VersionedSet = VersionedSet()
        self._horizon: Time = 0
        # Consumption per owning arrival, tallied as slices execute so
        # salvage accounting needs no rescan of the whole trace.
        self._consumed_by_owner: VersionedDict = VersionedDict()
        # Run-scoped report state (attributes, not run() locals, so a
        # checkpoint can snapshot them mid-run — see _snapshot()).
        self._records: Dict[str, ComputationRecord] = {}
        self._offered: VersionedDict = VersionedDict()
        self._consumed: VersionedDict = VersionedDict()
        self._trace = SimulationTrace()
        self._run_window: Optional[Interval] = None
        # Durability plumbing (configured per run()).
        self._journal: Optional[Journal] = None
        self._owns_journal = False
        self._journal_count = 0
        self._replay_records: List[dict] = []
        self._replay_pos = 0
        self._checkpoint_store: Optional[CheckpointStore] = None
        self._checkpoint_every = 0
        self._last_checkpoint_step = -1
        self._snapshotter: Optional[DeltaSnapshotter] = None
        self._mid_run = False
        # Observational resume anomalies (torn journal tails); reported,
        # never traced or fingerprinted.
        self._warnings: List[str] = []
        if initial_resources is not None and not initial_resources.is_empty:
            self._admission.observe_resources(initial_resources, start_time)

    # ------------------------------------------------------------------
    @property
    def admission_policy(self) -> AdmissionPolicy:
        """The policy deciding admissions — a resumed run's caller needs
        it back (the mesh report lines read channel/lease state)."""
        return self._admission

    # ------------------------------------------------------------------
    # Event scheduling
    # ------------------------------------------------------------------
    def schedule(self, *events: Event) -> None:
        # The heap holds (time, seq, event) tuples: event classes differ,
        # and dataclass-generated ordering never compares across classes.
        for event in events:
            heapq.heappush(self._events, (event.time, event.seq, event))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        horizon: Time,
        *,
        checkpoint_every: int = 0,
        checkpoint_dir: Union[str, Path, CheckpointStore, None] = None,
        journal: Union[str, Path, Journal, None] = None,
        journal_fsync: bool = False,
    ) -> SimulationReport:
        """Execute until ``horizon``; returns the scored report.

        Durability is opt-in: ``journal`` (a path or open
        :class:`~repro.system.checkpoint.Journal`) write-ahead-logs every
        applied event and admission decision; ``checkpoint_dir`` (with an
        optional cadence ``checkpoint_every``, in timed slices) snapshots
        the full simulator state atomically so a killed process resumes
        via :meth:`resume` to the *same* temporal state.
        """
        if self._mid_run:
            raise SimulationError(
                "this simulator holds restored mid-run state; "
                "call resume_run(), not run()"
            )
        self._horizon = horizon
        self._run_window = Interval(self._start_time, horizon)
        self._records = {}
        self._offered = VersionedDict()
        self._consumed = VersionedDict()
        self._trace = SimulationTrace()
        self._victims = {}
        self._flagged = VersionedSet()
        self._consumed_by_owner = VersionedDict()
        self._replay_records = []
        self._replay_pos = 0
        self._journal_count = 0
        self._last_checkpoint_step = -1
        self._warnings = []
        # Per-run bound-series caches (observability): id()-keyed, so a
        # fresh run must never inherit bindings from a previous one.
        self._offered_series = None
        self._lost_series = None
        self._tally_offered(self._state.theta)
        self._configure_durability(
            journal, checkpoint_every, checkpoint_dir, journal_fsync
        )
        # The initial checkpoint precedes the journal header: resume is
        # possible even when the crash tears the very first journal write.
        self._maybe_checkpoint(force=True)
        if self._journal is not None:
            self._journal_record(self._header_record())
        return self._execute()

    @classmethod
    def resume(
        cls,
        checkpoint_path: Union[str, Path],
        journal_path: Union[str, Path, None] = None,
        *,
        checkpoint_dir: Union[str, Path, CheckpointStore, None] = None,
        journal_fsync: bool = False,
        verify_conservation: bool = True,
    ) -> "OpenSystemSimulator":
        """Rebuild a mid-run simulator from its durable artifacts.

        The checkpoint restores the snapshot (state, records, pending
        recoveries mid-backoff, event heap, policy state, sequence
        counter); the journal's suffix past the checkpoint is replayed by
        deterministic re-execution, with every regenerated record verified
        against the journaled one — recorded admission promises stand,
        they are never re-decided.  The extended conservation identity
        ``offered = consumed + expired + lost (+ remaining)`` is
        re-verified at the restored instant before execution continues.
        Call :meth:`resume_run` on the result to finish the run.
        """
        registry = get_registry()
        restore_started = registry.now() if registry.enabled else 0.0
        store_source = (
            checkpoint_dir
            if checkpoint_dir is not None
            else Path(checkpoint_path).parent
        )
        store = (
            store_source
            if isinstance(store_source, CheckpointStore)
            else CheckpointStore(store_source)
        )
        # resolve() materializes delta checkpoints through their base
        # chain; a full checkpoint unpickles directly.
        checkpoint, payload = store.resolve(checkpoint_path)
        if registry.enabled:
            registry.histogram(
                "checkpoint_restore_seconds",
                "checkpoint load + unpickle time on resume "
                "(delta chains included)",
            ).observe(registry.now() - restore_started)
        sim = cls.__new__(cls)
        sim._admission = payload["admission"]
        # A channel-aware policy unpickles as a structurally valid shell
        # with an *empty* wire; the dedicated network section carries the
        # real in-flight queue, lease clocks, and RPC counters.
        restore_network = getattr(sim._admission, "restore_network", None)
        if restore_network is not None:
            network_state = payload.get(DeltaSnapshotter.NETWORK_SECTION)
            if network_state is None:
                raise CheckpointError(
                    "checkpoint has no 'network' section but the restored "
                    f"policy {sim._admission.name!r} carries wire state; "
                    "this checkpoint cannot resume the run soundly"
                )
            restore_network(network_state)
        sim._allocation = payload["allocation"]
        sim._recovery = payload["recovery"]
        sim._dt = payload["dt"]
        sim._start_time = payload["start_time"]
        sim._invariant_interval = payload["invariant_interval"]
        sim._state = payload["state"]
        sim._records = payload["records"]
        # Re-wrap as versioned containers: snapshots written by this
        # version round-trip them already, but checkpoints from older
        # runs hold plain dicts/sets.
        sim._offered = _as_versioned_dict(payload["offered"])
        sim._consumed = _as_versioned_dict(payload["consumed"])
        sim._trace = payload["trace"]
        sim._events = payload["events"]
        heapq.heapify(sim._events)
        sim._victims = payload["victims"]
        sim._flagged = (
            payload["flagged"]
            if isinstance(payload["flagged"], VersionedSet)
            else VersionedSet(payload["flagged"])
        )
        sim._consumed_by_owner = _as_versioned_dict(
            payload["consumed_by_owner"]
        )
        sim._horizon = payload["horizon"]
        sim._run_window = Interval(sim._start_time, sim._horizon)
        sim._checkpoint_every = payload.get("checkpoint_every", 0)
        # Post-resume events (recovery offers) must sort against the
        # restored heap exactly as the uninterrupted run's would have.
        restore_sequence(checkpoint.sequence)
        sim._last_checkpoint_step = checkpoint.step
        sim._checkpoint_store = store
        # The delta cache died with the crashed process: a fresh
        # snapshotter's first emission is a full snapshot that reseeds
        # the chain (created lazily by _maybe_checkpoint).
        sim._snapshotter = None
        sim._journal = None
        sim._owns_journal = False
        sim._replay_records = []
        sim._replay_pos = 0
        sim._journal_count = checkpoint.journal_records
        sim._warnings = []
        if journal_path is not None:
            journal, records = Journal.for_resume(
                journal_path, fsync=journal_fsync
            )
            if journal.torn_bytes:
                sim._warnings.append(
                    f"journal {journal.path}: torn tail of "
                    f"{journal.torn_bytes} bytes truncated on resume "
                    "(crash mid-append; the unacknowledged record is "
                    "regenerated by deterministic re-execution)"
                )
            if records:
                check_journal_header(records[0], journal.path)
            if len(records) < checkpoint.journal_records:
                # The sealed checkpoint is *newer* than the journal's
                # acknowledged tail (the journal was lost or rolled back
                # independently of the checkpoint directory).  The
                # checkpoint is self-contained, checksummed state — it
                # wins.  Start a fresh journal epoch from the restored
                # instant: deterministic re-execution regenerates the
                # suffix, so nothing is double-replayed and nothing from
                # the stale tail can pin a divergent record.
                journal.close()
                journal = Journal(
                    journal_path, fsync=journal_fsync, truncate=True
                )
                sim._journal_count = 0
                sim._journal = journal
                sim._owns_journal = True
            else:
                sim._journal = journal
                sim._owns_journal = True
                sim._replay_records = records[checkpoint.journal_records:]
        if verify_conservation:
            gaps = sim._trace.conservation_gaps(
                sim._offered,
                remaining=sim._state.theta,
                remaining_window=Interval(sim._state.t, sim._horizon),
            )
            if gaps:
                raise CheckpointError(
                    "conservation broken in restored state:\n  "
                    + "\n  ".join(gaps)
                )
        sim._mid_run = True
        return sim

    def resume_run(self) -> SimulationReport:
        """Continue a resumed run to its horizon; returns the full report
        (pre-crash history included — the restored trace keeps growing)."""
        if not self._mid_run:
            raise SimulationError(
                "resume_run() requires a simulator built by resume()"
            )
        self._mid_run = False
        if self._journal is not None and self._journal_count == 0:
            # The crashed run died before its header became durable.
            self._journal_record(self._header_record())
        return self._execute()

    # ------------------------------------------------------------------
    def _execute(self) -> SimulationReport:
        state = self._state
        horizon = self._horizon
        records = self._records
        consumed = self._consumed
        trace = self._trace
        registry = get_registry()
        # Null-registry instruments are shared no-op singletons, so the
        # per-slice metric calls below cost nothing when disabled.
        events_total = registry.counter(
            "sim_events_applied_total",
            "open-system events applied, by event kind",
            labels=("kind",),
        )
        slices_total = registry.counter(
            "sim_slices_total", "timed slices executed"
        )
        consumed_total = registry.counter(
            "sim_consumed_quantity_total",
            "resource quantity consumed, by located type",
            labels=("ltype",),
        )
        expired_total = registry.counter(
            "sim_expired_quantity_total",
            "resource quantity expired unused, by located type",
            labels=("ltype",),
        )
        phase_seconds = registry.histogram(
            "sim_phase_seconds",
            "wall-clock time per simulator phase per slice",
            labels=("phase",),
        )
        phase = _make_phase(registry, phase_seconds)
        instrumented = registry.enabled
        slices_series = slices_total.labels()
        # Per-sample label resolution (str(LocatedType) renders location
        # + type names; event kinds repeat every slice) would dominate
        # the instrumentation budget — bind each labeled series once and
        # memoize the handles per run.  Keys are id()s: LocatedType's
        # field-tuple hash is itself too hot for per-sample lookups, and
        # equal ltypes bind to the same underlying series either way.
        event_series: Dict[int, object] = {}
        # Consumed/expired quantities arrive in per-slice bursts (every
        # reservation leg of every slice); even a bound-series inc per
        # entry is too hot.  Accumulate into plain [ltype, total] cells
        # and flush into the counters once, after the loop.
        consumed_acc: Dict[int, list] = {}
        expired_acc: Dict[int, list] = {}

        # Channel-aware policies (repro.faults.netfaults) expose poll():
        # once per slice they deliver due wire messages, send due lease
        # renewals, and conservatively expire unrenewable leases.  Each
        # reported incident is a capacity loss measured through the
        # ordinary fault path, so lease expiry flows into victim
        # detection and the recovery pipeline exactly like a revocation.
        poll = getattr(self._admission, "poll", None)
        # Channel-aware policies also accumulate wire WAL entries (lease
        # grants/renewals/expiries, RPC verdicts, duplicate drops) while
        # polling and deciding; draining them through _journal_record
        # once per slice pins them in the journal, so a resumed run
        # re-verifies every wire outcome instead of re-deciding it.
        drain_wire = getattr(self._admission, "drain_wire_records", None)

        with registry.span("simulator.run"):
            while state.t < horizon:
                self._state = state
                self._maybe_checkpoint()
                slices_series.inc()

                # 1. Instantaneous rules at the current instant.
                fault_causes: List[str] = []
                if poll is not None:
                    with phase("offer"):
                        for lost, cause, message in poll(state.t):
                            if message:
                                trace.note(state.t, message)
                            if lost is not None and not lost.is_empty:
                                fault_causes.append(cause)
                                state = self._apply_loss(
                                    state, lost, cause, trace
                                )
                with phase("offer"):
                    while self._events and self._events[0][0] <= state.t:
                        _, _, event = heapq.heappop(self._events)
                        kind = type(event)
                        series = event_series.get(id(kind))
                        if series is None:
                            series = event_series[id(kind)] = (
                                events_total.labels(kind=kind.__name__)
                            )
                        series.inc()
                        self._journal_record(_event_journal_entry(event))
                        state = self._apply_event(
                            event, state, records, self._tally_offered,
                            trace, fault_causes,
                        )

                # 1b. Faults landed this instant: detect promise violations
                # and (when configured) route victims through recovery.
                if fault_causes:
                    with phase("recover"):
                        state = self._handle_violations(
                            state, records, trace, fault_causes
                        )

                # 1c. Pin this slice's wire outcomes in the journal (and
                # drain the buffer regardless, so it never grows when no
                # journal is configured).  Checkpoints happen at the top
                # of the loop, so the buffer is always empty there.
                if drain_wire is not None:
                    for entry in drain_wire():
                        self._journal_record(entry)

                # 2. One timed slice via the general transition rule.
                with phase("claim"):
                    allocations = self._allocation.allocate(state, self._dt)
                    transition = step(state, self._dt, allocations)
                trace.record(transition)
                for actor, ltype, quantity in transition.label.consumed:
                    consumed[ltype] = consumed.get(ltype, 0) + quantity
                    amount = _metric_amount(quantity)
                    owner = actor.split("[")[0]
                    self._consumed_by_owner[owner] = (
                        self._consumed_by_owner.get(owner, 0.0) + amount
                    )
                    if instrumented:
                        cell = consumed_acc.get(id(ltype))
                        if cell is None:
                            consumed_acc[id(ltype)] = [ltype, amount]
                        else:
                            cell[1] += amount
                if instrumented:
                    for ltype, quantity in transition.label.expired:
                        cell = expired_acc.get(id(ltype))
                        if cell is None:
                            expired_acc[id(ltype)] = [
                                ltype, _metric_amount(quantity)
                            ]
                        else:
                            cell[1] += _metric_amount(quantity)
                state = transition.target

                # 3. Outcome bookkeeping.  A multi-actor arrival completes
                # when every component completes; it misses when any
                # component is still unfinished at the arrival's deadline.
                with phase("expire"):
                    for record in records.values():
                        if (
                            not record.admitted
                            or record.completed
                            or record.missed
                            or record.abandoned
                        ):
                            continue
                        if record.label in self._victims:
                            # Awaiting re-admission; give up at the deadline.
                            if state.t >= record.window.end:
                                self._abandon(record, trace, state.t)
                            continue
                        components = [
                            p
                            for p in state.rho
                            if p.label == record.label
                            or p.label.startswith(record.label + "[")
                        ]
                        if not components:
                            continue
                        if all(p.is_complete for p in components):
                            record.completed = True
                            record.finish_time = state.t
                        elif state.t >= record.window.end:
                            record.missed = True

                # 4. Optional runtime invariant check: the extended
                # conservation identity must hold at every sampled instant.
                if (
                    self._invariant_interval
                    and trace.steps % self._invariant_interval == 0
                ):
                    gaps = trace.conservation_gaps(
                        self._offered,
                        remaining=state.theta,
                        remaining_window=Interval(state.t, horizon),
                    )
                    if gaps:
                        raise SimulationError(
                            "conservation broken mid-run at t="
                            f"{state.t}:\n  " + "\n  ".join(gaps)
                        )

            # A victim still awaiting re-admission when the run ends is
            # stuck by construction — it was evicted and holds no capacity
            # — so graceful degradation settles it as abandoned, never
            # "running".
            for label in list(self._victims):
                record = records.get(label)
                if record is not None and not record.abandoned:
                    self._abandon(record, trace, state.t)

        if instrumented:
            for ltype, amount in consumed_acc.values():
                consumed_total.labels(ltype=str(ltype)).inc(amount)
            for ltype, amount in expired_acc.values():
                expired_total.labels(ltype=str(ltype)).inc(amount)

        self._state = state
        if self._owns_journal and self._journal is not None:
            self._journal.close()
        return SimulationReport(
            policy_name=self._admission.name,
            records=list(records.values()),
            offered=self._offered,
            consumed=consumed,
            trace=trace,
            horizon=horizon,
            metrics=registry.snapshot() if registry.enabled else None,
            warnings=list(self._warnings),
        )

    # ------------------------------------------------------------------
    # Durability: offered tally, journaling, checkpoints
    # ------------------------------------------------------------------
    def _tally_offered(self, resources: ResourceSet) -> None:
        registry = get_registry()
        series_map = None
        if registry.enabled:
            # Joins repeat the same located types all run: bind each
            # series once per (run, registry).  The cache is reset by
            # run() so stale ltype ids can never alias across runs.
            cache = getattr(self, "_offered_series", None)
            if cache is None or cache[0] is not registry:
                cache = self._offered_series = (
                    registry,
                    registry.counter(
                        "sim_offered_quantity_total",
                        "resource quantity offered, by located type",
                        labels=("ltype",),
                    ),
                    {},
                )
            _, counter, series_map = cache
        for ltype in resources.located_types:
            amount = resources.quantity(ltype, self._run_window)
            if amount > 0:
                self._offered[ltype] = self._offered.get(ltype, 0) + amount
                if series_map is not None:
                    series = series_map.get(id(ltype))
                    if series is None:
                        series = series_map[id(ltype)] = counter.labels(
                            ltype=str(ltype)
                        )
                    series.inc(_metric_amount(amount))

    def _configure_durability(
        self,
        journal: Union[str, Path, Journal, None],
        checkpoint_every: int,
        checkpoint_dir: Union[str, Path, CheckpointStore, None],
        journal_fsync: bool,
    ) -> None:
        if checkpoint_every < 0:
            raise SimulationError(
                f"checkpoint_every must be >= 0, got {checkpoint_every!r}"
            )
        self._checkpoint_every = int(checkpoint_every)
        self._checkpoint_store = None
        self._snapshotter = None
        if checkpoint_dir is not None:
            self._checkpoint_store = (
                checkpoint_dir
                if isinstance(checkpoint_dir, CheckpointStore)
                else CheckpointStore(checkpoint_dir)
            )
            self._snapshotter = DeltaSnapshotter()
        elif checkpoint_every:
            raise SimulationError("checkpoint_every requires checkpoint_dir")
        self._journal = None
        self._owns_journal = False
        if journal is not None:
            if isinstance(journal, Journal):
                self._journal = journal
            else:
                # run() starts a fresh run, so a path journal starts
                # empty; stale records from a previous run at the same
                # path would otherwise poison a later resume's replay.
                self._journal = Journal(
                    journal, fsync=journal_fsync, truncate=True
                )
                self._owns_journal = True

    def _header_record(self) -> dict:
        return journal_header(
            {
                "policy": self._admission.name,
                "horizon": time_to_wire(self._horizon),
                "dt": time_to_wire(self._dt),
                "start": time_to_wire(self._start_time),
            }
        )

    @property
    def _replaying(self) -> bool:
        return self._replay_pos < len(self._replay_records)

    def _journal_record(self, record: dict) -> None:
        """WAL append — or, on a resumed run, verify the regenerated
        record against the one the crashed run already acknowledged."""
        if self._journal is None:
            return
        if self._replay_pos < len(self._replay_records):
            expected = self._replay_records[self._replay_pos]
            if expected != record:
                raise CheckpointError(
                    "resumed run diverged from the journal at record "
                    f"{self._journal_count + 1}: journal pinned "
                    f"{expected!r}, replay produced {record!r}"
                )
            self._replay_pos += 1
            get_registry().counter(
                "journal_replay_verified_total",
                "journal records re-verified against deterministic replay",
            ).inc()
        else:
            self._journal.append(record)
        self._journal_count += 1

    def _journal_decision(
        self,
        context: str,
        label: str,
        now: Time,
        decision: PolicyDecision,
        *,
        attempt: Optional[int] = None,
    ) -> None:
        if self._journal is None:
            return
        entry = {
            "type": "decision",
            "context": context,
            "label": label,
            "time": time_to_wire(now),
            "admitted": bool(decision.admitted),
            "reason": decision.reason,
        }
        if attempt is not None:
            entry["attempt"] = attempt
        self._journal_record(entry)

    def _maybe_checkpoint(self, force: bool = False) -> None:
        if self._checkpoint_store is None:
            return
        if self._replaying:
            return  # these snapshots already exist from the crashed run
        steps = self._trace.steps
        if not force:
            if not self._checkpoint_every:
                return
            if steps % self._checkpoint_every != 0:
                return
        if steps == self._last_checkpoint_step:
            return
        if self._snapshotter is None:
            self._snapshotter = DeltaSnapshotter()
        self._checkpoint_store.save(
            self._snapshotter.encode(
                self._snapshot_sections(),
                step=steps,
                journal_records=self._journal_count,
                sequence=sequence_value(),
            )
        )
        self._last_checkpoint_step = steps

    def _snapshot(self) -> bytes:
        """The full simulator state, pickled: everything :meth:`resume`
        needs to continue as if the process had never died."""
        return pickle.dumps(
            self._snapshot_sections(), protocol=pickle.HIGHEST_PROTOCOL
        )

    def _snapshot_sections(self) -> Dict[str, Any]:
        """The snapshot as named sections, pre-pickle — the unit the
        delta snapshotter diffs checkpoint-to-checkpoint."""
        sections = {
            "state": self._state,
            "records": self._records,
            "offered": self._offered,
            "consumed": self._consumed,
            "trace": self._trace,
            "events": list(self._events),
            "victims": self._victims,
            "flagged": self._flagged,
            "consumed_by_owner": self._consumed_by_owner,
            "horizon": self._horizon,
            "start_time": self._start_time,
            "dt": self._dt,
            "invariant_interval": self._invariant_interval,
            "checkpoint_every": self._checkpoint_every,
            "admission": self._admission,
            "allocation": self._allocation,
            "recovery": self._recovery,
        }
        # Channel-aware policies keep their wire state (in-flight queue,
        # lease clocks, RPC counters) out of their own pickle and hand it
        # over as a dedicated section instead — fates are stateless
        # draws, so this section alone rebuilds the wire on resume.
        network_snapshot = getattr(self._admission, "network_snapshot", None)
        if network_snapshot is not None:
            sections[DeltaSnapshotter.NETWORK_SECTION] = network_snapshot()
        return sections

    # ------------------------------------------------------------------
    def _apply_event(
        self,
        event: Event,
        state: SystemState,
        records: Dict[str, "ComputationRecord"],
        tally_offered,
        trace: SimulationTrace,
        fault_causes: List[str],
    ) -> SystemState:
        if isinstance(event, ResourceJoinEvent):
            joining = event.resources.truncate_before(state.t)
            tally_offered(joining)
            # The policy may refuse part of a join at the door (open
            # circuit breakers wall off a distrusted enclave's capacity).
            # Refused capacity is *shed*: offered but never acquired, so
            # it enters the trace as a measured loss and the conservation
            # identity extends to offered = consumed+expired+lost+shed.
            accepted = self._admission.admit_resources(joining, state.t)
            if accepted is not joining:
                withheld = joining.saturating_minus(accepted)
                registry = get_registry()
                shed_totals: Dict[LocatedType, Time] = {}
                for term in withheld.terms():
                    if term.is_null:
                        continue
                    shed_totals[term.ltype] = (
                        shed_totals.get(term.ltype, 0) + term.quantity
                    )
                for ltype, gone in shed_totals.items():
                    trace.record_loss(state.t, "shed", ltype, gone)
                    if registry.enabled:
                        registry.counter(
                            "sim_lost_quantity_total",
                            "capacity lost to faults, by cause and located type",
                            labels=("cause", "ltype"),
                        ).inc(float(gone), cause="shed", ltype=str(ltype))
                joining = accepted
            self._admission.observe_resources(joining, state.t)
            trace.note(state.t, f"resources join: {len(joining.located_types)} types")
            state = acquire(state, joining)
            # New capacity is a new frontier: re-offer rejected arrivals
            # still inside their windows.
            for label, requirement in self._admission.retry_candidates(state.t):
                record = records.get(label)
                if record is None or record.admitted:
                    continue
                decision = self._admission.decide(requirement, state.t)
                self._journal_decision("retry", label, state.t, decision)
                if not decision.admitted:
                    continue
                record.admitted = True
                record.rejection_reason = ""
                trace.note(state.t, f"retry admitted {label!r}")
                if decision.schedule is not None and isinstance(
                    self._allocation, ReservationPolicy
                ):
                    self._allocation.reserve(label, decision.schedule)
                state = accommodate(state, _relabel(requirement, label))
            # ... and a new frontier for evicted victims too: offer
            # re-admission ahead of their backoff schedule.
            for label in list(self._victims):
                state = self._offer_recovery(
                    state, records[label], trace, reason="join"
                )
            return state

        if isinstance(event, ComputationArrivalEvent):
            label = event.label
            if label in records:
                raise SimulationError(f"duplicate computation label {label!r}")
            record = ComputationRecord(
                label=label,
                arrival_time=state.t,
                window=event.requirement.window,
                total_demands=event.requirement.total_demands,
            )
            records[label] = record
            decision = self._admission.decide(event.requirement, state.t)
            self._journal_decision("arrival", label, state.t, decision)
            record.admitted = decision.admitted
            record.rejection_reason = decision.reason
            trace.note(
                state.t,
                f"arrival {label!r}: "
                f"{'admitted' if decision.admitted else 'rejected'}"
                + (f" ({decision.reason})" if decision.reason else ""),
            )
            if decision.admitted:
                if decision.schedule is not None and isinstance(
                    self._allocation, ReservationPolicy
                ):
                    self._allocation.reserve(label, decision.schedule)
                relabelled = _relabel(event.requirement, label)
                return accommodate(state, relabelled)
            return state

        if isinstance(event, ResourceRevocationEvent):
            # A promise violation: future capacity disappears.  Without a
            # recovery pipeline, admission policies are NOT told — their
            # committed schedules silently lost their backing, which is
            # exactly the failure mode being measured.
            revoked = event.resources.truncate_before(state.t)
            trace.note(
                state.t,
                f"revocation: {len(revoked.located_types)} types lose capacity",
            )
            fault_causes.append("revocation")
            return self._apply_loss(state, revoked, "revocation", trace)

        if isinstance(event, NodeCrashEvent):
            lost = _resources_at(state.theta, event.location)
            trace.note(state.t, f"crash: node {event.location} vanishes")
            fault_causes.append("crash")
            return self._apply_loss(state, lost, "crash", trace)

        if isinstance(event, RateDegradationEvent):
            survives = event.factor
            lost = _degradation_loss(state.theta, event.location, survives)
            trace.note(
                state.t,
                f"straggler: node {event.location} degrades to {survives}",
            )
            fault_causes.append("degradation")
            return self._apply_loss(state, lost, "degradation", trace)

        if isinstance(event, RecoveryOfferEvent):
            record = records.get(event.label)
            if record is None or event.label not in self._victims:
                return state  # victim already settled; stale offer
            return self._offer_recovery(state, record, trace, reason="backoff")

        if isinstance(event, (PartitionStartEvent, PartitionHealEvent)):
            # The network model already knows the window statically (so
            # in-flight fates stay closed-form); the event's job is to
            # journal the boundary and let the policy react at the exact
            # instant — entering degraded autonomy on start, reconciling
            # the partitioned sides' accounts on heal.  Any messages the
            # policy reports (e.g. per-lease settlement lines) become
            # trace notes, so reconciliation is auditable and replayable.
            healed = isinstance(event, PartitionHealEvent)
            trace.note(
                state.t,
                f"partition {event.name!r} "
                + ("heals" if healed else "starts")
                + f": {len(event.links)} links",
            )
            hook = getattr(self._admission, "on_partition", None)
            if hook is not None:
                for message in hook(
                    event.name, event.links, state.t, healed=healed
                ) or ():
                    trace.note(state.t, message)
            return state

        if isinstance(event, ComputationLeaveEvent):
            try:
                state = leave(state, event.label)
            except (KeyError, TransitionError):
                trace.note(state.t, f"leave {event.label!r} refused")
                return state
            self._admission.on_leave(event.label, state.t)
            if isinstance(self._allocation, ReservationPolicy):
                self._allocation.release(event.label)
            record = records.get(event.label)
            if record is not None:
                record.admitted = False
                record.rejection_reason = "withdrew before start"
            trace.note(state.t, f"leave {event.label!r}")
            return state

        raise SimulationError(f"unknown event {event!r}")

    # ------------------------------------------------------------------
    # Fault handling
    # ------------------------------------------------------------------
    def _apply_loss(
        self,
        state: SystemState,
        lost: ResourceSet,
        cause: str,
        trace: SimulationTrace,
    ) -> SystemState:
        """Shrink ``theta`` and measure exactly how much capacity died."""
        if lost.is_empty:
            return state
        measure = Interval(state.t, self._horizon)
        survived = state.theta.saturating_minus(lost)
        registry = get_registry()
        series_map = None
        if registry.enabled:
            cache = getattr(self, "_lost_series", None)
            if cache is None or cache[0] is not registry:
                cache = self._lost_series = (
                    registry,
                    registry.counter(
                        "sim_lost_quantity_total",
                        "capacity lost to faults, by cause and located type",
                        labels=("cause", "ltype"),
                    ),
                    {},
                )
            _, lost_total, series_map = cache
        for ltype in state.theta.located_types:
            gone = state.theta.quantity(ltype, measure) - survived.quantity(
                ltype, measure
            )
            if gone > 1e-12:
                trace.record_loss(state.t, cause, ltype, gone)
                if series_map is not None:
                    series = series_map.get((cause, id(ltype)))
                    if series is None:
                        series = series_map[(cause, id(ltype))] = (
                            lost_total.labels(cause=cause, ltype=str(ltype))
                        )
                    series.inc(_metric_amount(gone))
        if self._recovery is not None:
            # Honest recovery reasons against surviving resources only.
            self._admission.observe_loss(lost, state.t)
        return SystemState(survived, state.rho, state.t)

    def _handle_violations(
        self,
        state: SystemState,
        records: Dict[str, ComputationRecord],
        trace: SimulationTrace,
        fault_causes: List[str],
    ) -> SystemState:
        from repro.faults.detection import find_victims

        cause = "+".join(sorted(set(fault_causes)))
        candidates = [
            record.label
            for record in records.values()
            if record.admitted
            and not record.completed
            and not record.missed
            and not record.abandoned
            and record.label not in self._victims
            and record.label not in self._flagged
        ]
        for label, remaining_total in find_victims(state, candidates):
            record = records[label]
            record.violated_at = state.t
            self._flagged.add(label)
            trace.record_violation(
                PromiseViolation(
                    time=state.t,
                    label=label,
                    cause=cause,
                    deadline=record.window.end,
                    remaining_total=remaining_total,
                )
            )
            trace.note(state.t, f"promise violated: {label!r} ({cause})")
            if self._recovery is not None:
                state = self._begin_recovery(state, record, trace)
        return state

    def _begin_recovery(
        self,
        state: SystemState,
        record: ComputationRecord,
        trace: SimulationTrace,
    ) -> SystemState:
        """Evict the victim and start the re-admission pipeline."""
        from repro.faults.detection import components_of, residual_requirement

        label = record.label
        components = components_of(state, label)
        residual = residual_requirement(components, state.t, label)
        component_ids = {id(p) for p in components}
        state = state.replace_progress(
            tuple(p for p in state.rho if id(p) not in component_ids)
        )
        self._admission.forfeit(label, state.t)
        if isinstance(self._allocation, ReservationPolicy):
            self._allocation.release(label)
            for progress in components:
                self._allocation.release(progress.label)
        self._victims[label] = _ActiveVictim(label, residual)
        assert self._recovery is not None
        if self._recovery.immediate_first_offer:
            state = self._offer_recovery(state, record, trace, reason="eviction")
        else:
            self.schedule(
                RecoveryOfferEvent(
                    time=state.t + self._recovery.next_offer_delay(1),
                    label=label,
                )
            )
        return state

    def _offer_recovery(
        self,
        state: SystemState,
        record: ComputationRecord,
        trace: SimulationTrace,
        *,
        reason: str,
    ) -> SystemState:
        """One re-admission attempt; schedules the next or abandons."""
        assert self._recovery is not None
        victim = self._victims.get(record.label)
        if victim is None:
            return state
        now = state.t
        if now >= record.window.end:
            self._abandon(record, trace, now)
            return state
        victim.attempts += 1
        record.recovery_attempts = victim.attempts
        decision = self._admission.decide(victim.residual, now)
        self._journal_decision(
            "recovery", record.label, now, decision, attempt=victim.attempts
        )
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "recovery_offers_total",
                "re-admission offers to violation victims, by verdict "
                "and trigger",
                labels=("verdict", "trigger"),
            ).inc(
                verdict="admitted" if decision.admitted else "rejected",
                trigger=reason,
            )
        if decision.admitted:
            del self._victims[record.label]
            self._flagged.discard(record.label)
            record.recovered = True
            registry.counter(
                "recovery_outcomes_total",
                "settled violation victims, by terminal outcome",
                labels=("outcome",),
            ).inc(outcome="recovered")
            trace.note(
                now,
                f"recovered {record.label!r} on offer {victim.attempts} "
                f"({reason})",
            )
            if decision.schedule is not None and isinstance(
                self._allocation, ReservationPolicy
            ):
                self._allocation.reserve(record.label, decision.schedule)
            return accommodate(state, _relabel(victim.residual, record.label))
        if victim.attempts >= self._recovery.max_attempts:
            self._abandon(record, trace, now)
            return state
        self.schedule(
            RecoveryOfferEvent(
                time=now + self._recovery.next_offer_delay(victim.attempts),
                label=record.label,
            )
        )
        return state

    def _abandon(
        self, record: ComputationRecord, trace: SimulationTrace, now: Time
    ) -> None:
        """Graceful degradation: terminal outcome plus salvage accounting."""
        victim = self._victims.pop(record.label, None)
        if victim is not None:
            record.recovery_attempts = victim.attempts
        record.abandoned = True
        salvaged = self._consumed_by_owner.get(record.label, 0.0)
        record.salvaged = salvaged
        get_registry().counter(
            "recovery_outcomes_total",
            "settled violation victims, by terminal outcome",
            labels=("outcome",),
        ).inc(outcome="abandoned")
        trace.note(
            now,
            f"abandoned {record.label!r} after {record.recovery_attempts} "
            f"offers (salvaged {salvaged:g})",
        )


def _event_journal_entry(event: Event) -> dict:
    """The WAL record for one applied event.

    Intentionally a summary, not the full wire form: replay re-executes
    from the checkpointed heap, so the journal's job is pinning *which*
    event took effect when, in a form stable under JSON round-trips.
    """
    entry = {
        "type": "event",
        "kind": type(event).__name__,
        "time": time_to_wire(event.time),
        "seq": event.seq,
    }
    label = getattr(event, "label", None)
    if label:
        entry["label"] = label
    location = getattr(event, "location", None)
    if location is not None:
        entry["location"] = location.name
    name = getattr(event, "name", None)
    if name:
        entry["name"] = name
    return entry


def _resources_at(theta: ResourceSet, location: Node) -> ResourceSet:
    """Everything located at a node: its own resources plus every link
    touching it (a crashed peer can neither compute nor communicate)."""
    doomed = {}
    for ltype in theta.located_types:
        where = ltype.location
        if where == location or (
            not isinstance(where, Node)
            and location in (where.source, where.destination)
        ):
            doomed[ltype] = theta.profile(ltype)
    return ResourceSet.from_profiles(doomed)


def _degradation_loss(theta: ResourceSet, location: Node, factor) -> ResourceSet:
    """The capacity a straggler node sheds: ``1 - factor`` of every
    node-located resource's remaining profile (links keep their rate —
    the node is slow, not partitioned)."""
    lost = {}
    for ltype in theta.located_types:
        if ltype.location == location:
            lost[ltype] = theta.profile(ltype).scale(1 - factor)
    return ResourceSet.from_profiles(lost)


def _relabel(
    requirement: ConcurrentRequirement, label: str
) -> ConcurrentRequirement:
    """Prefix component labels with the arrival label so state progress
    records are unambiguous across arrivals."""
    from repro.computation.requirements import ComplexRequirement

    components = []
    for index, part in enumerate(requirement.components):
        new_label = label if len(requirement.components) == 1 else f"{label}[{index}]"
        components.append(
            ComplexRequirement(part.phases, part.window, label=new_label)
        )
    return ConcurrentRequirement(tuple(components), requirement.window)
