"""Events of the open-system simulation.

The paper's open-system dynamics are three instantaneous transition
rules: resources join (with a pre-declared leave time inside their term
intervals), computations arrive seeking accommodation, and
not-yet-started computations may leave.  Each becomes an event type here.
Events are ordered by time, with ties broken by a monotone sequence
number so the simulation is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.computation.requirements import (
    ComplexRequirement,
    ConcurrentRequirement,
)
from repro.errors import FaultInjectionError
from repro.intervals.interval import Time
from repro.resources.located_type import Node
from repro.resources.resource_set import ResourceSet

class _EventSequence:
    """Process-wide tie-breaking counter for events at equal times.

    Unlike a bare :func:`itertools.count` the counter is *checkpointable*:
    :func:`sequence_value` / :func:`restore_sequence` let the durability
    subsystem (:mod:`repro.system.checkpoint`) snapshot it and wind a
    resumed process back to the exact point the crashed one reached, so
    events minted after resume (recovery offers) sort against the restored
    heap exactly as they would have in the uninterrupted run.
    """

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0

    def advance(self) -> int:
        value = self._value
        self._value += 1
        return value


_sequence = _EventSequence()  # repro-lint: disable=flow-shared-state -- deliberate process-wide tiebreaker with explicit sequence_value()/restore_sequence() checkpoint hooks; rank-1 entry in the flow isolation report until the parallel-DES refactor threads it per enclave


def sequence_value() -> int:
    """The next sequence number a new event would receive."""
    return _sequence._value


def restore_sequence(value: int) -> None:
    """Reset the counter to ``value`` (a prior :func:`sequence_value`)."""
    if value < 0:
        raise ValueError(f"sequence value must be >= 0, got {value!r}")
    _sequence._value = int(value)


@dataclass(frozen=True, order=True)
class _Ordered:
    time: Time
    seq: int = field(default_factory=_sequence.advance, compare=True)


@dataclass(frozen=True, order=True)
class ResourceJoinEvent(_Ordered):
    """``Theta_join`` enters the system at ``time``.

    Leave times are implicit: every term's interval states when the
    resource disappears again (the paper has no separate leave rule).
    """

    resources: ResourceSet = field(default=None, compare=False)  # type: ignore[assignment]


@dataclass(frozen=True, order=True)
class ComputationArrivalEvent(_Ordered):
    """A computation ``(Lambda, s, d)`` asks to be accommodated."""

    requirement: ConcurrentRequirement = field(default=None, compare=False)  # type: ignore[assignment]
    label: str = field(default="", compare=False)


@dataclass(frozen=True, order=True)
class ComputationLeaveEvent(_Ordered):
    """An accommodated computation withdraws (valid only while ``t < s``)."""

    label: str = field(default="", compare=False)


@dataclass(frozen=True, order=True)
class ResourceRevocationEvent(_Ordered):
    """Capacity vanishes at ``time`` *despite* its declared interval.

    This violates the paper's model (leave times are pre-declared at join
    time); the robustness experiments inject it deliberately to measure
    how much deadline assurance depends on the pre-declaration assumption.
    """

    resources: ResourceSet = field(default=None, compare=False)  # type: ignore[assignment]


@dataclass(frozen=True, order=True)
class NodeCrashEvent(_Ordered):
    """Every resource located at ``location`` vanishes *now*.

    A crash is the harshest promise violation: unlike a revocation (which
    names specific terms), a crash wipes the node's CPU-like resources and
    every link touching the node, regardless of their declared intervals.
    """

    location: "Node" = field(default=None, compare=False)  # type: ignore[assignment]


@dataclass(frozen=True, order=True)
class RateDegradationEvent(_Ordered):
    """A straggler fault: from ``time`` on, resources located at
    ``location`` deliver only ``factor`` of their declared rate.

    ``factor`` is the *surviving* fraction in [0, 1); the complement of
    the declared future capacity is lost, unannounced.
    """

    location: "Node" = field(default=None, compare=False)  # type: ignore[assignment]
    factor: object = field(default=None, compare=False)  # Fraction | float


@dataclass(frozen=True, order=True)
class RecoveryOfferEvent(_Ordered):
    """Internal: re-offer a promise-violation victim to admission.

    Scheduled by the simulator's recovery pipeline with capped exponential
    backoff between attempts; never part of user-authored workloads.
    """

    label: str = field(default="", compare=False)


@dataclass(frozen=True, order=True)
class PartitionStartEvent(_Ordered):
    """The network severs ``links`` at ``time``.

    Messages across a severed link die with fate ``"severed"`` until the
    matching :class:`PartitionHealEvent`; an enclave on the far side runs
    in degraded autonomy on its local allotment (see
    :mod:`repro.faults.netfaults`).  The event mirrors a window the
    network model already knows statically — putting it on the virtual
    clock makes the partition journaled, replayable, and visible to the
    admission policy at the instant it bites.
    """

    name: str = field(default="", compare=False)
    #: undirected (endpoint, endpoint) pairs the partition cuts
    links: tuple = field(default=(), compare=False)


@dataclass(frozen=True, order=True)
class PartitionHealEvent(_Ordered):
    """The partition named ``name`` heals: ``links`` carry again.

    On heal the policy reconciles the partitioned sides' accounts
    (expired leases settled, traces merged) — the simulator records
    whatever reconciliation notes the policy reports.
    """

    name: str = field(default="", compare=False)
    links: tuple = field(default=(), compare=False)


Event = Union[
    ResourceJoinEvent,
    ComputationArrivalEvent,
    ComputationLeaveEvent,
    ResourceRevocationEvent,
    NodeCrashEvent,
    RateDegradationEvent,
    RecoveryOfferEvent,
    PartitionStartEvent,
    PartitionHealEvent,
]


def arrival(
    time: Time,
    requirement: ConcurrentRequirement | ComplexRequirement,
    label: str = "",
) -> ComputationArrivalEvent:
    """Convenience constructor accepting either requirement level."""
    if isinstance(requirement, ComplexRequirement):
        requirement = ConcurrentRequirement((requirement,), requirement.window)
    if not label:
        label = requirement.components[0].label or f"arrival@{time}"
    return ComputationArrivalEvent(time=time, requirement=requirement, label=label)


def resource_join(time: Time, resources: ResourceSet) -> ResourceJoinEvent:
    return ResourceJoinEvent(time=time, resources=resources)


def node_crash(time: Time, location: Node | str) -> NodeCrashEvent:
    """Convenience constructor accepting a node or its name."""
    if isinstance(location, str):
        location = Node(location)
    return NodeCrashEvent(time=time, location=location)


def rate_degradation(
    time: Time, location: Node | str, factor
) -> RateDegradationEvent:
    """Convenience constructor; ``factor`` is the surviving rate fraction."""
    if isinstance(location, str):
        location = Node(location)
    if not 0 <= float(factor) < 1:
        raise FaultInjectionError(
            f"degradation factor must lie in [0, 1), got {factor!r}"
        )
    return RateDegradationEvent(time=time, location=location, factor=factor)


def _partition_links(links) -> tuple:
    checked = []
    for pair in links:
        src, dst = pair
        if src == dst:
            raise FaultInjectionError(
                f"partition link must join two endpoints, got {pair!r}"
            )
        checked.append((str(src), str(dst)))
    if not checked:
        raise FaultInjectionError("partition must sever at least one link")
    return tuple(checked)


def partition_start(time: Time, name: str, links) -> PartitionStartEvent:
    """Convenience constructor validating the severed link pairs."""
    return PartitionStartEvent(
        time=time, name=name, links=_partition_links(links)
    )


def partition_heal(time: Time, name: str, links) -> PartitionHealEvent:
    return PartitionHealEvent(
        time=time, name=name, links=_partition_links(links)
    )
