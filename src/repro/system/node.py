"""Locations and topologies for simulated open systems.

A :class:`Topology` is a set of nodes and directed links with capacity
figures, from which uniform resource sets over a time window can be
minted.  It exists so workload generators and examples can talk about
"a 4-node cluster with full-mesh 10-unit links" in one line.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, Tuple

from repro.errors import WorkloadError
from repro.intervals.interval import Interval, Time
from repro.resources.located_type import LocatedType, Link, Node, cpu, network
from repro.resources.resource_set import ResourceSet
from repro.resources.term import ResourceTerm


@dataclass
class Topology:
    """Named nodes with CPU rates and directed links with bandwidths."""

    cpu_rates: Dict[Node, Time] = field(default_factory=dict)
    bandwidths: Dict[Link, Time] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def full_mesh(
        cls,
        node_count: int,
        *,
        cpu_rate: Time = 10,
        bandwidth: Time = 10,
        prefix: str = "l",
    ) -> "Topology":
        """``node_count`` nodes, every ordered pair linked."""
        if node_count < 1:
            raise WorkloadError("a topology needs at least one node")
        nodes = [Node(f"{prefix}{i + 1}") for i in range(node_count)]
        topo = cls({node: cpu_rate for node in nodes}, {})
        for a, b in itertools.permutations(nodes, 2):
            topo.bandwidths[Link(a, b)] = bandwidth
        return topo

    @classmethod
    def star(
        cls,
        leaf_count: int,
        *,
        hub_cpu: Time = 20,
        leaf_cpu: Time = 10,
        bandwidth: Time = 10,
    ) -> "Topology":
        """A hub node bidirectionally linked to ``leaf_count`` leaves."""
        hub = Node("hub")
        leaves = [Node(f"leaf{i + 1}") for i in range(leaf_count)]
        topo = cls({hub: hub_cpu, **{leaf: leaf_cpu for leaf in leaves}}, {})
        for leaf in leaves:
            topo.bandwidths[Link(hub, leaf)] = bandwidth
            topo.bandwidths[Link(leaf, hub)] = bandwidth
        return topo

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> tuple[Node, ...]:
        return tuple(self.cpu_rates)

    @property
    def links(self) -> tuple[Link, ...]:
        return tuple(self.bandwidths)

    def node(self, name: str) -> Node:
        for candidate in self.cpu_rates:
            if candidate.name == name:
                return candidate
        raise WorkloadError(f"no node named {name!r} in topology")

    def located_types(self) -> Iterator[Tuple[LocatedType, Time]]:
        """Every located type the topology provides, with its rate."""
        for node, rate in self.cpu_rates.items():
            yield cpu(node), rate
        for link, rate in self.bandwidths.items():
            yield LocatedType("network", link), rate

    # ------------------------------------------------------------------
    # Resource minting
    # ------------------------------------------------------------------
    def resources(self, window: Interval) -> ResourceSet:
        """All capacity as resource terms over one window."""
        return ResourceSet(
            ResourceTerm(rate, ltype, window)
            for ltype, rate in self.located_types()
            if rate > 0
        )

    def node_resources(self, name: str, window: Interval) -> ResourceSet:
        """One node's CPU (and its outgoing links) over a window —
        the unit of churn when a peer joins or leaves."""
        node = self.node(name)
        terms = [ResourceTerm(self.cpu_rates[node], cpu(node), window)]
        for link, rate in self.bandwidths.items():
            if link.source == node and rate > 0:
                terms.append(ResourceTerm(rate, LocatedType("network", link), window))
        return ResourceSet(terms)
