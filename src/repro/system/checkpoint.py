"""Crash-consistent durability: checkpoints and write-ahead journaling.

The simulator keeps every promise, violation, and recovery record in
memory; a process crash used to forfeit all of them.  This module gives a
run two durable artifacts that together make any instant survivable:

* a **checkpoint** (:class:`SimulatorCheckpoint`) — a versioned,
  checksummed snapshot of the full simulator state (``rho``, the
  computation records, pending recoveries and their backoff schedules,
  the event heap, trace counters, the admission/allocation policy state,
  and the global event-sequence counter), written atomically so a crash
  mid-write can never surface a half-snapshot;
* a **write-ahead journal** (:class:`Journal`) — every applied event and
  admission decision appended as a CRC-tagged JSONL record *before* it
  takes effect.  Recovery replays up to the last complete record and
  discards a torn tail; corruption anywhere earlier is an error, never a
  silent truncation.

The replay contract: execution from a checkpoint is deterministic, so a
resumed run regenerates the journal suffix record-for-record.  Each
regenerated record is *verified* against the journaled one — an admission
promise recorded before the crash is replayed, never re-decided; any
divergence raises :class:`~repro.errors.CheckpointError` instead of
silently rewriting history.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import CheckpointError
from repro.observability import get_registry

PathLike = Union[str, Path]
Opener = Callable[..., Any]

#: Wire version of the journal's JSONL records.
JOURNAL_FORMAT_VERSION = 1
#: Wire version of the checkpoint envelope.
CHECKPOINT_FORMAT_VERSION = 1
_CHECKPOINT_MAGIC = "rota-checkpoint"


# ----------------------------------------------------------------------
# Atomic file replacement
# ----------------------------------------------------------------------

@contextmanager
def atomic_writer(
    path: PathLike, *, mode: str = "w", opener: Opener = open
) -> Iterator[Any]:
    """Write ``path`` all-or-nothing: temp file + flush + fsync + rename.

    A crash at any point before the final rename leaves the previous
    contents of ``path`` (or its absence) untouched; readers never see a
    torn file under the final name.  ``opener`` is injectable so the chaos
    harness (:mod:`repro.faults.chaos`) can crash mid-write.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    handle = opener(str(tmp), mode)
    committed = False
    try:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
        handle.close()
        os.replace(tmp, path)
        committed = True
        _fsync_directory(path.parent)
    finally:
        if not committed:
            try:
                handle.close()
            except Exception:
                pass
            tmp.unlink(missing_ok=True)


def _fsync_directory(directory: Path) -> None:
    """Flush a rename to the directory entry (best-effort on exotic FS)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


# ----------------------------------------------------------------------
# Write-ahead journal
# ----------------------------------------------------------------------

def _encode_record(data: Dict[str, Any]) -> bytes:
    body = json.dumps(data, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(body.encode("utf-8"))
    line = json.dumps(
        {"crc": crc, "data": data}, sort_keys=True, separators=(",", ":")
    )
    return line.encode("utf-8") + b"\n"


class Journal:
    """Append-only CRC-tagged JSONL log with torn-tail-tolerant recovery.

    Each :meth:`append` writes one complete line and flushes it, so a
    process crash can tear at most the final record.  ``fsync=True``
    additionally syncs every record to disk — surviving kernel/power
    failure, not just process death — at a per-record latency cost.
    """

    def __init__(
        self,
        path: PathLike,
        *,
        fsync: bool = False,
        opener: Opener = open,
        truncate: bool = False,
        _count: int = 0,
    ) -> None:
        self._path = Path(path)
        self._fsync = fsync
        # A journal belongs to one run: fresh runs truncate, so records
        # (or torn bytes) from a previous run at the same path can never
        # poison this run's replay.  Resume keeps the acknowledged prefix.
        self._handle = opener(str(self._path), "wb" if truncate else "ab")
        self._count = _count

    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        return self._path

    @property
    def count(self) -> int:
        """Records this handle has acknowledged (appended or pre-existing)."""
        return self._count

    def append(self, data: Dict[str, Any]) -> int:
        """Durably append one record *before* its effect is applied."""
        registry = get_registry()
        started = registry.now() if registry.enabled else 0.0
        self._handle.write(_encode_record(data))
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())
        self._count += 1
        if registry.enabled:
            registry.histogram(
                "journal_append_seconds",
                "write-ahead journal append latency (encode+write+flush)",
            ).observe(registry.now() - started)
            registry.counter(
                "journal_appends_total", "write-ahead journal records appended"
            ).inc()
        return self._count

    def close(self) -> None:
        try:
            self._handle.close()
        except ValueError:  # pragma: no cover - already closed
            pass

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    @staticmethod
    def scan(path: PathLike) -> Tuple[List[Dict[str, Any]], int]:
        """All complete, CRC-valid records plus the valid prefix length.

        A damaged *final* record (truncated line, torn JSON, CRC mismatch)
        is the signature of a crash mid-append and is silently dropped;
        the returned offset excludes it so callers can truncate.  Damage
        anywhere before the tail means the acknowledged prefix is corrupt
        and raises :class:`CheckpointError`.
        """
        raw = Path(path).read_bytes()
        records: List[Dict[str, Any]] = []
        valid_end = 0
        pos = 0
        while pos < len(raw):
            newline = raw.find(b"\n", pos)
            if newline == -1:
                break  # unterminated final line: torn write, discard
            line = raw[pos:newline]
            pos = newline + 1
            if not line:
                valid_end = pos
                continue
            record = _decode_record(line)
            if record is None:
                # Damage in the *final* record is the signature of a
                # crash mid-append and is dropped; anything after it
                # means the acknowledged prefix itself is corrupt.
                if raw[pos:].strip(b"\n") == b"":
                    break
                raise CheckpointError(
                    f"{path}: corrupt journal record "
                    f"{len(records) + 1} (before the tail)"
                )
            records.append(record)
            valid_end = pos
        return records, valid_end

    @classmethod
    def for_resume(
        cls, path: PathLike, *, fsync: bool = False, opener: Opener = open
    ) -> Tuple["Journal", List[Dict[str, Any]]]:
        """Open a journal for continuation after a crash.

        Scans the file, truncates the torn tail (if any), and returns the
        journal positioned at its end together with the valid records.

        Three states of the file at ``path`` are *fresh*, not errors —
        the crashed run died before its first append became durable:

        * the file does not exist (death before the journal was opened),
        * it exists but is zero-length (death before the header append),
        * it holds only torn bytes of record 0 (death mid-header-append).

        All three resume cleanly with zero acknowledged records; the
        resumed run re-appends the header itself.  Corruption *behind*
        acknowledged records still raises :class:`CheckpointError`.
        """
        registry = get_registry()
        started = registry.now() if registry.enabled else 0.0
        if not Path(path).exists():
            records: List[Dict[str, Any]] = []
        else:
            records, valid_end = cls.scan(path)
            size = Path(path).stat().st_size
            if valid_end < size:
                os.truncate(path, valid_end)
        journal = cls(path, fsync=fsync, opener=opener, _count=len(records))
        if registry.enabled:
            registry.histogram(
                "journal_resume_scan_seconds",
                "journal scan + torn-tail truncation time on resume",
            ).observe(registry.now() - started)
        return journal, records


def _decode_record(line: bytes) -> Optional[Dict[str, Any]]:
    """One journal line back to its record; ``None`` when damaged."""
    try:
        envelope = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(envelope, dict) or "crc" not in envelope:
        return None
    data = envelope.get("data")
    if not isinstance(data, dict):
        return None
    body = json.dumps(data, sort_keys=True, separators=(",", ":"))
    if zlib.crc32(body.encode("utf-8")) != envelope["crc"]:
        return None
    return data


def journal_header(data: Dict[str, Any]) -> Dict[str, Any]:
    """The journal's first record: format version plus run identity."""
    return {
        "type": "journal_header",
        "format_version": JOURNAL_FORMAT_VERSION,
        **data,
    }


def check_journal_header(record: Dict[str, Any], path: PathLike) -> None:
    """Reject journals written by an unknown future format."""
    if record.get("type") != "journal_header":
        raise CheckpointError(
            f"{path}: first journal record is {record.get('type')!r}, "
            "expected 'journal_header'"
        )
    version = record.get("format_version")
    if not isinstance(version, int) or version < 1:
        raise CheckpointError(
            f"{path}: bad journal format_version {version!r}"
        )
    if version > JOURNAL_FORMAT_VERSION:
        raise CheckpointError(
            f"{path}: journal format_version {version} is newer than "
            f"supported {JOURNAL_FORMAT_VERSION}"
        )


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SimulatorCheckpoint:
    """One atomic snapshot of a running simulation.

    ``payload`` is the pickled simulator state (see
    :meth:`repro.system.simulator.OpenSystemSimulator._snapshot`);
    ``journal_records`` is how many journal records had been acknowledged
    when the snapshot was taken, i.e. where replay-verification starts;
    ``sequence`` is the global event-sequence counter
    (:func:`repro.system.events.sequence_value`) to restore on resume.
    """

    step: int
    journal_records: int
    sequence: int
    payload: bytes

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "magic": _CHECKPOINT_MAGIC,
                "format_version": CHECKPOINT_FORMAT_VERSION,
                "step": self.step,
                "journal_records": self.journal_records,
                "sequence": self.sequence,
                "sha256": hashlib.sha256(self.payload).hexdigest(),
                "payload": base64.b64encode(self.payload).decode("ascii"),
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str, *, source: str = "<checkpoint>") -> "SimulatorCheckpoint":
        try:
            envelope = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"{source}: not a checkpoint file") from exc
        if not isinstance(envelope, dict) or envelope.get("magic") != _CHECKPOINT_MAGIC:
            raise CheckpointError(f"{source}: missing checkpoint magic")
        version = envelope.get("format_version")
        if not isinstance(version, int) or version < 1:
            raise CheckpointError(
                f"{source}: bad checkpoint format_version {version!r}"
            )
        if version > CHECKPOINT_FORMAT_VERSION:
            raise CheckpointError(
                f"{source}: checkpoint format_version {version} is newer "
                f"than supported {CHECKPOINT_FORMAT_VERSION}"
            )
        try:
            payload = base64.b64decode(envelope["payload"].encode("ascii"))
        except (KeyError, AttributeError, ValueError) as exc:
            raise CheckpointError(f"{source}: unreadable payload") from exc
        digest = hashlib.sha256(payload).hexdigest()
        if digest != envelope.get("sha256"):
            raise CheckpointError(
                f"{source}: checksum mismatch (corrupt checkpoint)"
            )
        return cls(
            step=int(envelope["step"]),
            journal_records=int(envelope["journal_records"]),
            sequence=int(envelope["sequence"]),
            payload=payload,
        )

    def save(self, path: PathLike, *, opener: Opener = open) -> Path:
        path = Path(path)
        registry = get_registry()
        started = registry.now() if registry.enabled else 0.0
        with atomic_writer(path, opener=opener) as handle:
            text = self.to_json()
            handle.write(text)
            handle.write("\n")
        if registry.enabled:
            registry.histogram(
                "checkpoint_write_seconds",
                "atomic checkpoint write time (serialize+fsync+rename)",
            ).observe(registry.now() - started)
            registry.counter(
                "checkpoint_bytes_written_total",
                "bytes of checkpoint envelope written",
            ).inc(len(text) + 1)
            registry.counter(
                "checkpoint_writes_total", "checkpoints written"
            ).inc()
        return path

    @classmethod
    def load(cls, path: PathLike) -> "SimulatorCheckpoint":
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise CheckpointError(f"{path}: cannot read checkpoint") from exc
        return cls.from_json(text, source=str(path))

    def restore_state(self) -> Dict[str, Any]:
        """Unpickle the snapshot payload."""
        try:
            return pickle.loads(self.payload)
        except Exception as exc:
            raise CheckpointError(
                f"checkpoint payload does not unpickle: {exc}"
            ) from exc


class CheckpointStore:
    """A directory of ``ckpt-<step>.json`` files, newest-wins on resume."""

    def __init__(self, directory: PathLike, *, opener: Opener = open) -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._opener = opener

    @property
    def directory(self) -> Path:
        return self._directory

    def path_for(self, step: int) -> Path:
        return self._directory / f"ckpt-{step:08d}.json"

    def save(self, checkpoint: SimulatorCheckpoint) -> Path:
        return checkpoint.save(
            self.path_for(checkpoint.step), opener=self._opener
        )

    def latest(self) -> Optional[Path]:
        """The newest checkpoint file that validates, or ``None``.

        Atomic writes mean a final-named file is normally intact, but a
        checkpoint that fails validation is skipped rather than fatal —
        an older snapshot plus journal replay reaches the same state.
        """
        for path in sorted(self._directory.glob("ckpt-*.json"), reverse=True):
            try:
                SimulatorCheckpoint.load(path)
            except CheckpointError:
                continue
            return path
        return None


def latest_checkpoint(directory: PathLike) -> Optional[Path]:
    """Convenience wrapper: newest valid checkpoint in ``directory``."""
    directory = Path(directory)
    if not directory.is_dir():
        return None
    return CheckpointStore(directory).latest()
