"""Crash-consistent durability: checkpoints and write-ahead journaling.

The simulator keeps every promise, violation, and recovery record in
memory; a process crash used to forfeit all of them.  This module gives a
run two durable artifacts that together make any instant survivable:

* a **checkpoint** (:class:`SimulatorCheckpoint`) — a versioned,
  checksummed snapshot of the full simulator state (``rho``, the
  computation records, pending recoveries and their backoff schedules,
  the event heap, trace counters, the admission/allocation policy state,
  and the global event-sequence counter), written atomically so a crash
  mid-write can never surface a half-snapshot;
* a **write-ahead journal** (:class:`Journal`) — every applied event and
  admission decision appended as a CRC-tagged JSONL record *before* it
  takes effect.  Recovery replays up to the last complete record and
  discards a torn tail; corruption anywhere earlier is an error, never a
  silent truncation.

The replay contract: execution from a checkpoint is deterministic, so a
resumed run regenerates the journal suffix record-for-record.  Each
regenerated record is *verified* against the journaled one — an admission
promise recorded before the crash is replayed, never re-decided; any
divergence raises :class:`~repro.errors.CheckpointError` instead of
silently rewriting history.

**Incremental checkpoints.**  Pickling the full simulator state every
cadence is dominated by the trace, which only ever *grows*.  A
:class:`DeltaSnapshotter` therefore emits most checkpoints as **deltas**
against the immediately preceding snapshot: only sections whose pickled
bytes changed (or whose :class:`VersionedDict`/:class:`VersionedSet`
version counter moved) are included, and the trace is encoded as the
suffix appended since the base.  Deltas carry a ``format_version`` 2
envelope naming their base (``base_step`` + ``base_sha256``); full
snapshots keep the version-1 envelope, so old readers still restore
them.  Every ``full_interval`` deltas — and always immediately after a
resume, since the delta cache dies with the process — a full snapshot
reseeds the chain.  :meth:`CheckpointStore.latest` validates the whole
chain before nominating a file: a delta whose base is missing, corrupt,
or checksum-mismatched is skipped in favour of an older snapshot.

**The wire is derivable state.**  Channel-aware policies (the mesh of
:mod:`repro.faults.netfaults`) add one more section,
:attr:`DeltaSnapshotter.NETWORK_SECTION`: because every message fate is
a stateless SHA-256 draw over ``(seed, link, msg_id)``, the entire wire
is reconstructed from the in-flight queue, the lease table's clocks,
and the RPC attempt counters — no fate is ever re-drawn on resume, and
lease grants/renewals/expiries and RPC verdicts ride the journal as
WAL records so replay re-verifies them like any admission decision.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import CheckpointError
from repro.observability import get_registry

PathLike = Union[str, Path]
Opener = Callable[..., Any]

#: Wire version of the journal's JSONL records.
JOURNAL_FORMAT_VERSION = 1
#: Wire version of the checkpoint envelope.  Full snapshots are written
#: as version 1 (unchanged on-disk shape); delta checkpoints need the
#: version-2 envelope for their base reference.
CHECKPOINT_FORMAT_VERSION = 2
_CHECKPOINT_MAGIC = "rota-checkpoint"
#: A full snapshot reseeds the delta chain after this many deltas,
#: bounding both restore cost and the blast radius of a lost base.
DEFAULT_FULL_INTERVAL = 8


# ----------------------------------------------------------------------
# Atomic file replacement
# ----------------------------------------------------------------------

@contextmanager
def atomic_writer(
    path: PathLike, *, mode: str = "w", opener: Opener = open
) -> Iterator[Any]:
    """Write ``path`` all-or-nothing: temp file + flush + fsync + rename.

    A crash at any point before the final rename leaves the previous
    contents of ``path`` (or its absence) untouched; readers never see a
    torn file under the final name.  ``opener`` is injectable so the chaos
    harness (:mod:`repro.faults.chaos`) can crash mid-write.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    handle = opener(str(tmp), mode)
    committed = False
    try:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
        handle.close()
        os.replace(tmp, path)
        committed = True
        _fsync_directory(path.parent)
    finally:
        if not committed:
            try:
                handle.close()
            except Exception:
                pass
            tmp.unlink(missing_ok=True)


def _fsync_directory(directory: Path) -> None:
    """Flush a rename to the directory entry (best-effort on exotic FS)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


# ----------------------------------------------------------------------
# Write-ahead journal
# ----------------------------------------------------------------------

def _encode_record(data: Dict[str, Any]) -> bytes:
    body = json.dumps(data, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(body.encode("utf-8"))
    line = json.dumps(
        {"crc": crc, "data": data}, sort_keys=True, separators=(",", ":")
    )
    return line.encode("utf-8") + b"\n"


class Journal:
    """Append-only CRC-tagged JSONL log with torn-tail-tolerant recovery.

    Each :meth:`append` writes one complete line and flushes it, so a
    process crash can tear at most the final record.  ``fsync=True``
    additionally syncs every record to disk — surviving kernel/power
    failure, not just process death — at a per-record latency cost.
    """

    def __init__(
        self,
        path: PathLike,
        *,
        fsync: bool = False,
        opener: Opener = open,
        truncate: bool = False,
        _count: int = 0,
    ) -> None:
        self._path = Path(path)
        self._fsync = fsync
        # A journal belongs to one run: fresh runs truncate, so records
        # (or torn bytes) from a previous run at the same path can never
        # poison this run's replay.  Resume keeps the acknowledged prefix.
        self._handle = opener(str(self._path), "wb" if truncate else "ab")
        self._count = _count
        #: bytes of torn tail discarded when this handle was opened by
        #: :meth:`for_resume` (0 = the file ended on a record boundary)
        self.torn_bytes = 0

    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        return self._path

    @property
    def count(self) -> int:
        """Records this handle has acknowledged (appended or pre-existing)."""
        return self._count

    def append(self, data: Dict[str, Any]) -> int:
        """Durably append one record *before* its effect is applied."""
        registry = get_registry()
        started = registry.now() if registry.enabled else 0.0
        self._handle.write(_encode_record(data))
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())
        self._count += 1
        if registry.enabled:
            registry.histogram(
                "journal_append_seconds",
                "write-ahead journal append latency (encode+write+flush)",
            ).observe(registry.now() - started)
            registry.counter(
                "journal_appends_total", "write-ahead journal records appended"
            ).inc()
        return self._count

    def close(self) -> None:
        try:
            self._handle.close()
        except ValueError:  # pragma: no cover - already closed
            pass

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    @staticmethod
    def scan(path: PathLike) -> Tuple[List[Dict[str, Any]], int]:
        """All complete, CRC-valid records plus the valid prefix length.

        A damaged *final* record (truncated line, torn JSON, CRC mismatch)
        is the signature of a crash mid-append and is silently dropped;
        the returned offset excludes it so callers can truncate.  Damage
        anywhere before the tail means the acknowledged prefix is corrupt
        and raises :class:`CheckpointError`.
        """
        raw = Path(path).read_bytes()
        records: List[Dict[str, Any]] = []
        valid_end = 0
        pos = 0
        while pos < len(raw):
            newline = raw.find(b"\n", pos)
            if newline == -1:
                break  # unterminated final line: torn write, discard
            line = raw[pos:newline]
            pos = newline + 1
            if not line:
                valid_end = pos
                continue
            record = _decode_record(line)
            if record is None:
                # Damage in the *final* record is the signature of a
                # crash mid-append and is dropped; anything after it
                # means the acknowledged prefix itself is corrupt.
                if raw[pos:].strip(b"\n") == b"":
                    break
                raise CheckpointError(
                    f"{path}: corrupt journal record "
                    f"{len(records) + 1} (before the tail)"
                )
            records.append(record)
            valid_end = pos
        return records, valid_end

    @classmethod
    def for_resume(
        cls, path: PathLike, *, fsync: bool = False, opener: Opener = open
    ) -> Tuple["Journal", List[Dict[str, Any]]]:
        """Open a journal for continuation after a crash.

        Scans the file, truncates the torn tail (if any), and returns the
        journal positioned at its end together with the valid records.

        Three states of the file at ``path`` are *fresh*, not errors —
        the crashed run died before its first append became durable:

        * the file does not exist (death before the journal was opened),
        * it exists but is zero-length (death before the header append),
        * it holds only torn bytes of record 0 (death mid-header-append).

        All three resume cleanly with zero acknowledged records; the
        resumed run re-appends the header itself.  Corruption *behind*
        acknowledged records still raises :class:`CheckpointError`.
        """
        registry = get_registry()
        started = registry.now() if registry.enabled else 0.0
        torn = 0
        if not Path(path).exists():
            records: List[Dict[str, Any]] = []
        else:
            records, valid_end = cls.scan(path)
            size = Path(path).stat().st_size
            if valid_end < size:
                # The torn tail is expected after a crash mid-append —
                # but silently treating it as if it never existed hides
                # real signal (how often crashes tear, how much data a
                # tear costs).  Count it; the simulator's resume also
                # surfaces it as a warning note in the resumed report.
                torn = size - valid_end
                registry.counter(
                    "journal_torn_tail_total",
                    "journal tails torn by a crash and truncated on resume",
                ).inc()
                registry.counter(
                    "journal_torn_tail_bytes_total",
                    "bytes of torn journal tail discarded on resume",
                ).inc(torn)
                os.truncate(path, valid_end)
        journal = cls(path, fsync=fsync, opener=opener, _count=len(records))
        journal.torn_bytes = torn
        if registry.enabled:
            registry.histogram(
                "journal_resume_scan_seconds",
                "journal scan + torn-tail truncation time on resume",
            ).observe(registry.now() - started)
        return journal, records


def _decode_record(line: bytes) -> Optional[Dict[str, Any]]:
    """One journal line back to its record; ``None`` when damaged."""
    try:
        envelope = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(envelope, dict) or "crc" not in envelope:
        return None
    data = envelope.get("data")
    if not isinstance(data, dict):
        return None
    body = json.dumps(data, sort_keys=True, separators=(",", ":"))
    if zlib.crc32(body.encode("utf-8")) != envelope["crc"]:
        return None
    return data


def journal_header(data: Dict[str, Any]) -> Dict[str, Any]:
    """The journal's first record: format version plus run identity."""
    return {
        "type": "journal_header",
        "format_version": JOURNAL_FORMAT_VERSION,
        **data,
    }


def check_journal_header(record: Dict[str, Any], path: PathLike) -> None:
    """Reject journals written by an unknown future format."""
    if record.get("type") != "journal_header":
        raise CheckpointError(
            f"{path}: first journal record is {record.get('type')!r}, "
            "expected 'journal_header'"
        )
    version = record.get("format_version")
    if not isinstance(version, int) or version < 1:
        raise CheckpointError(
            f"{path}: bad journal format_version {version!r}"
        )
    if version > JOURNAL_FORMAT_VERSION:
        raise CheckpointError(
            f"{path}: journal format_version {version} is newer than "
            f"supported {JOURNAL_FORMAT_VERSION}"
        )


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SimulatorCheckpoint:
    """One atomic snapshot (or delta) of a running simulation.

    ``payload`` is the pickled simulator state (see
    :meth:`repro.system.simulator.OpenSystemSimulator._snapshot`);
    ``journal_records`` is how many journal records had been acknowledged
    when the snapshot was taken, i.e. where replay-verification starts;
    ``sequence`` is the global event-sequence counter
    (:func:`repro.system.events.sequence_value`) to restore on resume.

    ``kind`` is ``"full"`` for a self-contained snapshot or ``"delta"``
    for an incremental one; a delta's ``payload`` is a pickled
    changed-section/trace-suffix bundle (see :class:`DeltaSnapshotter`)
    that only materializes on top of the base checkpoint identified by
    ``base_step`` and sealed by ``base_sha256``.
    """

    step: int
    journal_records: int
    sequence: int
    payload: bytes
    kind: str = "full"
    base_step: int = -1
    base_sha256: str = ""

    @property
    def is_delta(self) -> bool:
        return self.kind == "delta"

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        envelope = {
            "magic": _CHECKPOINT_MAGIC,
            # Full snapshots stay on the version-1 envelope so readers
            # predating delta support can still restore them.
            "format_version": 2 if self.is_delta else 1,
            "step": self.step,
            "journal_records": self.journal_records,
            "sequence": self.sequence,
            "sha256": hashlib.sha256(self.payload).hexdigest(),
            "payload": base64.b64encode(self.payload).decode("ascii"),
        }
        if self.is_delta:
            envelope["kind"] = self.kind
            envelope["base_step"] = self.base_step
            envelope["base_sha256"] = self.base_sha256
        return json.dumps(envelope, sort_keys=True)

    @classmethod
    def from_json(cls, text: str, *, source: str = "<checkpoint>") -> "SimulatorCheckpoint":
        try:
            envelope = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"{source}: not a checkpoint file") from exc
        if not isinstance(envelope, dict) or envelope.get("magic") != _CHECKPOINT_MAGIC:
            raise CheckpointError(f"{source}: missing checkpoint magic")
        version = envelope.get("format_version")
        if not isinstance(version, int) or version < 1:
            raise CheckpointError(
                f"{source}: bad checkpoint format_version {version!r}"
            )
        if version > CHECKPOINT_FORMAT_VERSION:
            raise CheckpointError(
                f"{source}: checkpoint format_version {version} is newer "
                f"than supported {CHECKPOINT_FORMAT_VERSION}"
            )
        kind = envelope.get("kind", "full")
        if kind not in ("full", "delta"):
            raise CheckpointError(f"{source}: unknown checkpoint kind {kind!r}")
        if kind == "delta" and version < 2:
            raise CheckpointError(
                f"{source}: delta checkpoints require format_version >= 2"
            )
        try:
            payload = base64.b64decode(envelope["payload"].encode("ascii"))
        except (KeyError, AttributeError, ValueError) as exc:
            raise CheckpointError(f"{source}: unreadable payload") from exc
        digest = hashlib.sha256(payload).hexdigest()
        if digest != envelope.get("sha256"):
            raise CheckpointError(
                f"{source}: checksum mismatch (corrupt checkpoint)"
            )
        base_step = envelope.get("base_step", -1)
        base_sha = envelope.get("base_sha256", "")
        if kind == "delta" and (
            not isinstance(base_step, int)
            or base_step < 0
            or not isinstance(base_sha, str)
            or not base_sha
        ):
            raise CheckpointError(
                f"{source}: delta checkpoint lacks a valid base reference"
            )
        return cls(
            step=int(envelope["step"]),
            journal_records=int(envelope["journal_records"]),
            sequence=int(envelope["sequence"]),
            payload=payload,
            kind=kind,
            base_step=int(base_step),
            base_sha256=str(base_sha),
        )

    def save(self, path: PathLike, *, opener: Opener = open) -> Path:
        path = Path(path)
        registry = get_registry()
        started = registry.now() if registry.enabled else 0.0
        with atomic_writer(path, opener=opener) as handle:
            text = self.to_json()
            handle.write(text)
            handle.write("\n")
        if registry.enabled:
            registry.histogram(
                "checkpoint_write_seconds",
                "atomic checkpoint write time (serialize+fsync+rename)",
            ).observe(registry.now() - started)
            registry.counter(
                "checkpoint_bytes_written_total",
                "bytes of checkpoint envelope written",
            ).inc(len(text) + 1)
            registry.counter(
                "checkpoint_writes_total", "checkpoints written"
            ).inc()
        return path

    @classmethod
    def load(cls, path: PathLike) -> "SimulatorCheckpoint":
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise CheckpointError(f"{path}: cannot read checkpoint") from exc
        return cls.from_json(text, source=str(path))

    def restore_state(self) -> Dict[str, Any]:
        """Unpickle the snapshot payload (full checkpoints only)."""
        if self.is_delta:
            raise CheckpointError(
                "delta checkpoint cannot restore standalone; "
                "materialize it through CheckpointStore.resolve"
            )
        try:
            return pickle.loads(self.payload)
        except Exception as exc:
            raise CheckpointError(
                f"checkpoint payload does not unpickle: {exc}"
            ) from exc


# ----------------------------------------------------------------------
# Versioned containers (cheap change detection for the delta snapshotter)
# ----------------------------------------------------------------------

def _rebuild_versioned_dict(items, version):
    rebuilt = VersionedDict(items)
    rebuilt.version = version
    return rebuilt


def _rebuild_versioned_set(items, version):
    rebuilt = VersionedSet(items)
    rebuilt.version = version
    return rebuilt


class VersionedDict(dict):
    """A dict that counts its mutations.

    :class:`DeltaSnapshotter` reads the ``version`` token to skip
    re-pickling unchanged sections without comparing bytes.  Sound only
    for sections whose *values* are effectively immutable (profiles,
    frozen dataclasses, scalars): an in-place mutation of a stored value
    does not bump the version, which is why the simulator keeps its
    mutable-record sections on byte comparison instead.
    """

    __slots__ = ("version",)

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.version = 0

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        self.version += 1

    def __delitem__(self, key) -> None:
        super().__delitem__(key)
        self.version += 1

    def pop(self, *args):
        result = super().pop(*args)
        self.version += 1
        return result

    def popitem(self):
        result = super().popitem()
        self.version += 1
        return result

    def clear(self) -> None:
        super().clear()
        self.version += 1

    def update(self, *args, **kwargs) -> None:
        super().update(*args, **kwargs)
        self.version += 1

    def setdefault(self, key, default=None):
        result = super().setdefault(key, default)
        self.version += 1
        return result

    def __reduce__(self):
        # Explicit reduce: the default dict-subclass protocol repopulates
        # items through ``__setitem__``, which needs ``version`` to exist
        # before ``__init__`` has run.
        return (_rebuild_versioned_dict, (dict(self), self.version))


class VersionedSet(set):
    """A set that counts its mutations; see :class:`VersionedDict`.

    Pickles through a *sorted* element list so equal sets always produce
    equal bytes — set iteration order is not deterministic enough for
    byte-compared or checksummed payloads.
    """

    __slots__ = ("version",)

    def __init__(self, *args) -> None:
        super().__init__(*args)
        self.version = 0

    def add(self, element) -> None:
        super().add(element)
        self.version += 1

    def discard(self, element) -> None:
        super().discard(element)
        self.version += 1

    def remove(self, element) -> None:
        super().remove(element)
        self.version += 1

    def pop(self):
        result = super().pop()
        self.version += 1
        return result

    def clear(self) -> None:
        super().clear()
        self.version += 1

    def update(self, *others) -> None:
        super().update(*others)
        self.version += 1

    def __reduce__(self):
        return (_rebuild_versioned_set, (sorted(self), self.version))


# ----------------------------------------------------------------------
# Incremental snapshot encoding
# ----------------------------------------------------------------------

class DeltaSnapshotter:
    """Encode simulator snapshots as deltas against the previous one.

    The caller hands over the *unpickled* section dict (the payload of
    :meth:`~repro.system.simulator.OpenSystemSimulator._snapshot`); the
    snapshotter decides full vs delta and returns a sealed
    :class:`SimulatorCheckpoint`:

    * the **first** snapshot, every ``full_interval``-th thereafter, and
      any snapshot whose trace *shrank* (a new run reusing the
      snapshotter would corrupt the chain) is a **full** — byte-identical
      to the pre-delta format;
    * everything else is a **delta** holding only the sections that
      changed since the previous snapshot plus the trace's appended
      suffix.  Change detection is the ``version`` token for
      :class:`VersionedDict`/:class:`VersionedSet` sections and a pickled
      byte comparison for everything else, so in-place mutations (record
      fields, victim attempt counters) are still caught.

    The cache lives in process memory only: a resumed run must start a
    fresh snapshotter, whose first emission is therefore a full snapshot
    that reseeds the chain.
    """

    #: Section name whose value is the append-only simulation trace.
    TRACE_SECTION = "trace"

    #: Optional section holding a channel-aware policy's wire state (see
    #: ``MeshPolicy.network_snapshot``): in-flight queue ids + send-order
    #: counter, channel stats + log, the lease table's grant/renewal
    #: clocks, the applied-message dedup map, and the RPC attempt
    #: counter.  Because every message fate is a stateless function of
    #: ``(seed, link, msg_id)``, this section is all a resume needs to
    #: rebuild a byte-identical channel without replaying a single draw.
    #: It is diffed like any other section — a quiet wire costs nothing
    #: in a delta checkpoint.
    NETWORK_SECTION = "network"

    def __init__(self, *, full_interval: int = DEFAULT_FULL_INTERVAL) -> None:
        if full_interval < 1:
            raise ValueError("full_interval must be >= 1")
        self._full_interval = full_interval
        self._section_bytes: Dict[str, bytes] = {}
        self._section_versions: Dict[str, int] = {}
        self._trace_lens: Optional[Tuple[int, int, int, int]] = None
        self._base_step = -1
        self._base_sha = ""
        self._deltas_since_full = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _trace_lists(trace) -> Tuple[list, list, list, list]:
        return (trace.transitions, trace.notes, trace.losses, trace.violations)

    def encode(
        self,
        sections: Dict[str, Any],
        *,
        step: int,
        journal_records: int,
        sequence: int,
    ) -> SimulatorCheckpoint:
        trace = sections[self.TRACE_SECTION]
        lens = tuple(len(lst) for lst in self._trace_lists(trace))
        force_full = (
            self._base_step < 0
            or self._deltas_since_full >= self._full_interval
            or (
                self._trace_lens is not None
                and any(new < old for new, old in zip(lens, self._trace_lens))
            )
        )
        if force_full:
            return self._encode_full(
                sections, lens,
                step=step, journal_records=journal_records, sequence=sequence,
            )

        changed: Dict[str, bytes] = {}
        for name, value in sections.items():
            if name == self.TRACE_SECTION:
                continue
            if isinstance(value, (VersionedDict, VersionedSet)):
                token = value.version
                if self._section_versions.get(name) != token:
                    changed[name] = pickle.dumps(
                        value, protocol=pickle.HIGHEST_PROTOCOL
                    )
                    self._section_versions[name] = token
            else:
                blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
                if self._section_bytes.get(name) != blob:
                    changed[name] = blob
                    self._section_bytes[name] = blob

        base_lens = self._trace_lens or (0, 0, 0, 0)
        suffix = tuple(
            lst[start:]
            for lst, start in zip(self._trace_lists(trace), base_lens)
        )
        bundle = {
            "sections": changed,
            "trace": {"base": base_lens, "suffix": suffix},
        }
        payload = pickle.dumps(bundle, protocol=pickle.HIGHEST_PROTOCOL)
        checkpoint = SimulatorCheckpoint(
            step=step,
            journal_records=journal_records,
            sequence=sequence,
            payload=payload,
            kind="delta",
            base_step=self._base_step,
            base_sha256=self._base_sha,
        )
        self._advance(step, payload, lens)
        self._deltas_since_full += 1
        return checkpoint

    def _encode_full(
        self, sections, lens, *, step, journal_records, sequence
    ) -> SimulatorCheckpoint:
        payload = pickle.dumps(sections, protocol=pickle.HIGHEST_PROTOCOL)
        self._section_bytes.clear()
        self._section_versions.clear()
        for name, value in sections.items():
            if name == self.TRACE_SECTION:
                continue
            if isinstance(value, (VersionedDict, VersionedSet)):
                self._section_versions[name] = value.version
            else:
                self._section_bytes[name] = pickle.dumps(
                    value, protocol=pickle.HIGHEST_PROTOCOL
                )
        self._advance(step, payload, lens)
        self._deltas_since_full = 0
        return SimulatorCheckpoint(
            step=step,
            journal_records=journal_records,
            sequence=sequence,
            payload=payload,
        )

    def _advance(self, step: int, payload: bytes, lens) -> None:
        self._base_step = step
        self._base_sha = hashlib.sha256(payload).hexdigest()
        self._trace_lens = tuple(lens)


class CheckpointStore:
    """A directory of ``ckpt-<step>.json`` files, newest-wins on resume."""

    def __init__(self, directory: PathLike, *, opener: Opener = open) -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._opener = opener

    @property
    def directory(self) -> Path:
        return self._directory

    def path_for(self, step: int) -> Path:
        return self._directory / f"ckpt-{step:08d}.json"

    def save(self, checkpoint: SimulatorCheckpoint) -> Path:
        return checkpoint.save(
            self.path_for(checkpoint.step), opener=self._opener
        )

    def resolve(
        self, path: PathLike
    ) -> Tuple[SimulatorCheckpoint, Dict[str, Any]]:
        """Materialize the full state at ``path``, walking the delta chain.

        A full checkpoint unpickles directly.  A delta is applied on top
        of its base — located by ``base_step`` in this store and verified
        against ``base_sha256`` — recursively down to the anchoring full
        snapshot.  Any missing, corrupt, or mismatched link raises
        :class:`CheckpointError`; trace suffixes are only appended after
        asserting the materialized lists have exactly the base lengths
        the delta was encoded against.
        """
        tip = SimulatorCheckpoint.load(path)
        chain = [tip]
        cursor = tip
        while cursor.is_delta:
            if cursor.base_step >= cursor.step:
                raise CheckpointError(
                    f"{path}: delta chain does not descend "
                    f"(step {cursor.step} -> base {cursor.base_step})"
                )
            base_path = self.path_for(cursor.base_step)
            base = SimulatorCheckpoint.load(base_path)
            if hashlib.sha256(base.payload).hexdigest() != cursor.base_sha256:
                raise CheckpointError(
                    f"{base_path}: payload does not match the base digest "
                    f"recorded by the step-{cursor.step} delta (broken chain)"
                )
            chain.append(base)
            cursor = base

        state = cursor.restore_state()
        for delta in reversed(chain[:-1]):
            try:
                bundle = pickle.loads(delta.payload)
                changed = {
                    name: pickle.loads(blob)
                    for name, blob in bundle["sections"].items()
                }
                trace_part = bundle["trace"]
            except CheckpointError:
                raise
            except Exception as exc:
                raise CheckpointError(
                    f"step-{delta.step} delta payload does not decode: {exc}"
                ) from exc
            state.update(changed)
            trace = state[DeltaSnapshotter.TRACE_SECTION]
            lists = DeltaSnapshotter._trace_lists(trace)
            actual = tuple(len(lst) for lst in lists)
            if actual != tuple(trace_part["base"]):
                raise CheckpointError(
                    f"step-{delta.step} delta expects trace lengths "
                    f"{tuple(trace_part['base'])} but the chain "
                    f"materialized {actual}"
                )
            for lst, suffix in zip(lists, trace_part["suffix"]):
                lst.extend(suffix)
        return tip, state

    def latest(self) -> Optional[Path]:
        """The newest checkpoint file whose *whole chain* validates.

        Atomic writes mean a final-named file is normally intact, but a
        checkpoint that fails validation — including a delta whose base
        is missing, corrupt, or digest-mismatched — is skipped rather
        than fatal: an older snapshot plus journal replay reaches the
        same state.
        """
        for path in sorted(self._directory.glob("ckpt-*.json"), reverse=True):
            try:
                self.resolve(path)
            except CheckpointError:
                continue
            return path
        return None


def latest_checkpoint(directory: PathLike) -> Optional[Path]:
    """Convenience wrapper: newest valid checkpoint in ``directory``."""
    directory = Path(directory)
    if not directory.is_dir():
        return None
    return CheckpointStore(directory).latest()
