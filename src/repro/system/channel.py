"""Deterministic message passing on the simulator's virtual clock.

Everything that crosses an enclave boundary — capacity joins, admission
check requests and verdicts, lease renewals, migration offers — flows
through a :class:`MessageChannel` as :class:`WireRecord` s.  The channel
is the modelled *environment* of the paper's open system: links delay,
lose, duplicate, and reorder messages, and scheduled partitions sever
them outright, all under a :class:`NetworkModel` whose every draw is a
stateless function of ``(seed, link, message id)`` through SHA-256 — the
same discipline as :class:`repro.backoff.Backoff`.  No shared stream, no
draw-order coupling: replaying a run, resuming it mid-flight, or
reordering two independent senders can never change a single fate.

Delays are integral (they live on the event grid); retry spacing may be
fractional (jittered backoff), and all arithmetic stays exact so the
accumulated network time charged against a deadline via
:func:`repro.decision.admission.clip_start` is a deterministic exact
number, never a float dance.
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.backoff import Backoff
from repro.errors import ChannelError
from repro.intervals.interval import Time
from repro.markers import checkpointable
from repro.observability import get_registry

#: Resolution of one fate draw: first 8 digest bytes, uniform on [0, 1).
_DRAW_DENOMINATOR = 1 << 64

#: Message fates a wire record can carry.
FATES = ("delivered", "lost", "severed", "duplicated")


def _check_probability(name: str, value) -> None:
    if not 0 <= float(value) <= 1:
        raise ChannelError(f"{name} must lie in [0, 1], got {value!r}")


@dataclass(frozen=True)
class LinkConfig:
    """Behaviour of one (undirected) link between two endpoints."""

    #: base one-way delay, in virtual ticks (integral: the event grid)
    delay: int = 0
    #: extra delay drawn uniformly from {0, ..., jitter}
    jitter: int = 0
    #: probability a message vanishes in flight
    loss: float = 0.0
    #: probability a delivered message arrives a second time
    duplicate: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.delay, int) or self.delay < 0:
            raise ChannelError(
                f"link delay must be a non-negative int, got {self.delay!r}"
            )
        if not isinstance(self.jitter, int) or self.jitter < 0:
            raise ChannelError(
                f"link jitter must be a non-negative int, got {self.jitter!r}"
            )
        _check_probability("link loss", self.loss)
        _check_probability("link duplicate", self.duplicate)

    @property
    def is_perfect(self) -> bool:
        return (
            self.delay == 0
            and self.jitter == 0
            and not self.loss
            and not self.duplicate
        )


@dataclass(frozen=True)
class PartitionSpan:
    """A scheduled partition: the named links are severed on [start, end)."""

    start: Time
    end: Time
    #: undirected endpoint pairs the partition cuts
    severed: Tuple[Tuple[str, str], ...]
    name: str = ""

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ChannelError(
                f"partition window must be non-empty, got "
                f"[{self.start!r}, {self.end!r})"
            )
        if not self.severed:
            raise ChannelError("partition must sever at least one link")

    def cuts(self, src: str, dst: str, at: Time) -> bool:
        if not self.start <= at < self.end:
            return False
        return (src, dst) in self.severed or (dst, src) in self.severed


@dataclass(frozen=True)
class NetworkModel:
    """Seeded, stateless oracle for every message's fate.

    ``links`` overrides the ``default`` config per undirected endpoint
    pair; the tuple-of-pairs shape keeps the model frozen, hashable, and
    picklable inside checkpointed policies.
    """

    seed: int = 0
    default: LinkConfig = field(default_factory=LinkConfig)
    links: Tuple[Tuple[Tuple[str, str], LinkConfig], ...] = ()
    partitions: Tuple[PartitionSpan, ...] = ()

    # ------------------------------------------------------------------
    def link(self, src: str, dst: str) -> LinkConfig:
        for (a, b), config in self.links:
            if (a, b) == (src, dst) or (b, a) == (src, dst):
                return config
        return self.default

    def severed(self, src: str, dst: str, at: Time) -> bool:
        return any(p.cuts(src, dst, at) for p in self.partitions)

    def partition_windows(self) -> Tuple[Tuple[Time, Time], ...]:
        return tuple((p.start, p.end) for p in self.partitions)

    @property
    def is_perfect(self) -> bool:
        return (
            not self.partitions
            and self.default.is_perfect
            and all(config.is_perfect for _, config in self.links)
        )

    # ------------------------------------------------------------------
    def _draw(self, key: str) -> Fraction:
        """One uniform draw on [0, 1) from ``(seed, key)`` — stateless,
        SHA-256-derived (builtin ``hash`` is process-salted; a shared
        ``random.Random`` would couple senders through draw order)."""
        digest = hashlib.sha256(f"{self.seed}:{key}".encode()).digest()
        return Fraction(int.from_bytes(digest[:8], "big"), _DRAW_DENOMINATOR)

    def delay_of(self, src: str, dst: str, msg_id: str) -> int:
        config = self.link(src, dst)
        if not config.jitter:
            return config.delay
        spread = self._draw(f"{src}>{dst}:{msg_id}:delay")
        return config.delay + int(spread * (config.jitter + 1))

    def lost(self, src: str, dst: str, msg_id: str) -> bool:
        config = self.link(src, dst)
        if not config.loss:
            return False
        return self._draw(f"{src}>{dst}:{msg_id}:loss") < Fraction(
            config.loss
        ).limit_denominator(1_000_000)

    def duplicated(self, src: str, dst: str, msg_id: str) -> bool:
        config = self.link(src, dst)
        if not config.duplicate:
            return False
        return self._draw(f"{src}>{dst}:{msg_id}:dup") < Fraction(
            config.duplicate
        ).limit_denominator(1_000_000)


@dataclass(frozen=True)
class WireRecord:
    """One message's journey (or death) across a link."""

    msg_id: str
    kind: str
    src: str
    dst: str
    sent_at: Time
    fate: str  # one of FATES
    #: arrival instant; None when the message never arrived
    deliver_at: Optional[Time] = None
    payload: object = None

    @property
    def delivered(self) -> bool:
        return self.deliver_at is not None


@dataclass
class ChannelStats:
    """Aggregate accounting over one channel's lifetime.

    ``by_kind`` counts *logical* messages (it sums to ``sent``); a
    duplicated copy of an already-counted message shows up only in
    ``duplicated`` and ``delivered``, never as a second ``by_kind``
    entry for its kind.
    """

    sent: int = 0
    delivered: int = 0
    lost: int = 0
    severed: int = 0
    duplicated: int = 0
    #: sum of one-way delivery delays, in ticks
    total_delay: Time = 0
    by_kind: Dict[str, int] = field(default_factory=dict)

    @property
    def loss_fraction(self) -> float:
        return (self.lost + self.severed) / self.sent if self.sent else 0.0


@dataclass(frozen=True)
class RpcOutcome:
    """Result of a request/verdict exchange with timeout and retries."""

    ok: bool
    attempts: int
    #: instant the verdict landed back at the requester (success only)
    completed_at: Optional[Time] = None
    #: instant the requester stopped trying (failure only)
    gave_up_at: Optional[Time] = None
    #: verdicts that arrived after their attempt's timeout had fired
    stray_replies: int = 0

    def elapsed(self, since: Time) -> Time:
        end = self.completed_at if self.ok else self.gave_up_at
        return end - since  # type: ignore[operator]


@checkpointable
class MessageChannel:
    """A log-keeping conduit applying one :class:`NetworkModel`.

    ``send`` decides a message's fate immediately (the model is
    stateless) and, for deliveries, enqueues it; ``deliver_due`` hands
    back everything whose arrival instant has passed, in arrival order —
    which differs from send order whenever jitter says so (reordering is
    emergent, not a separate knob).  Receivers own deduplication: a
    ``duplicated`` record re-delivers the same ``msg_id``.
    """

    def __init__(self, network: NetworkModel, *, name: str = "channel") -> None:
        # repro-flow: derivable=_network -- stateless configuration, not run
        # state: the model decides fates pure-functionally and the restoring
        # owner re-binds the topology it is resuming under
        self._network = network
        # repro-flow: derivable=name -- construction identity; the restoring
        # owner addresses the channel, the channel never re-reads its name
        self.name = name
        self._log: List[WireRecord] = []
        self._pending: List[Tuple[Time, int, WireRecord]] = []
        self._pending_seq = 0
        self._stats = ChannelStats()

    # ------------------------------------------------------------------
    @property
    def network(self) -> NetworkModel:
        return self._network

    @property
    def log(self) -> Tuple[WireRecord, ...]:
        return tuple(self._log)

    @property
    def stats(self) -> ChannelStats:
        return self._stats

    @property
    def in_flight(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    def state_snapshot(self) -> Dict[str, object]:
        """The channel's full mutable state, isolated from later sends.

        Because every fate is a stateless function of ``(seed, link,
        msg_id)``, this dict *is* the wire: restoring it (plus the same
        :class:`NetworkModel`) resumes a run without replaying a single
        draw.  The pending heap is captured entry-for-entry — delivery
        order is the total order on ``(deliver_at, seq)``, so a
        re-heapified copy pops identically.
        """
        stats = self._stats
        return {
            "log": tuple(self._log),
            "pending": tuple(self._pending),
            "pending_seq": self._pending_seq,
            "stats": replace(stats, by_kind=dict(stats.by_kind)),
        }

    def restore_state(self, snapshot: Dict[str, object]) -> None:
        """Reinstate a :meth:`state_snapshot`, byte-identical."""
        self._log = list(snapshot["log"])  # type: ignore[arg-type]
        self._pending = list(snapshot["pending"])  # type: ignore[arg-type]
        heapq.heapify(self._pending)
        self._pending_seq = snapshot["pending_seq"]  # type: ignore[assignment]
        stats = snapshot["stats"]
        self._stats = replace(stats, by_kind=dict(stats.by_kind))

    # ------------------------------------------------------------------
    def send(
        self,
        kind: str,
        src: str,
        dst: str,
        now: Time,
        *,
        msg_id: str = "",
        payload: object = None,
        enqueue: bool = True,
    ) -> WireRecord:
        """Dispatch one message; returns its (primary) wire record."""
        if src == dst:
            raise ChannelError(
                f"message {msg_id or kind!r} addressed to its own "
                f"endpoint {src!r}"
            )
        if not msg_id:
            msg_id = f"{kind}@{now}:{src}>{dst}"
        network = self._network
        if network.severed(src, dst, now):
            record = WireRecord(msg_id, kind, src, dst, now, "severed",
                                payload=payload)
            self._account(record)
            return record
        if network.lost(src, dst, msg_id):
            record = WireRecord(msg_id, kind, src, dst, now, "lost",
                                payload=payload)
            self._account(record)
            return record
        deliver_at = now + network.delay_of(src, dst, msg_id)
        record = WireRecord(
            msg_id, kind, src, dst, now, "delivered", deliver_at, payload
        )
        self._account(record)
        if enqueue:
            self._enqueue(record)
        if network.duplicated(src, dst, msg_id):
            echo_at = deliver_at + network.delay_of(
                src, dst, msg_id + ":echo"
            )
            echo = WireRecord(
                msg_id, kind, src, dst, now, "duplicated", echo_at, payload
            )
            self._account(echo)
            if enqueue:
                self._enqueue(echo)
        return record

    def deliver_due(self, now: Time) -> List[WireRecord]:
        """Every enqueued record whose arrival instant has passed, in
        arrival order (ties broken by send order)."""
        due: List[WireRecord] = []
        while self._pending and self._pending[0][0] <= now:
            _, _, record = heapq.heappop(self._pending)
            due.append(record)
        return due

    # ------------------------------------------------------------------
    def rpc(
        self,
        kind: str,
        src: str,
        dst: str,
        now: Time,
        *,
        key: str,
        deadline: Time,
        timeout: Time,
        backoff: Backoff,
        max_attempts: int = 8,
        payload: object = None,
    ) -> RpcOutcome:
        """A request/verdict exchange with timeout, retries, and backoff.

        Each attempt sends a request ``src -> dst``; a delivered request
        triggers an immediate verdict ``dst -> src``.  The requester
        waits ``timeout`` per attempt, then backs off (seeded jitter
        keyed by ``key``) and retries — until the verdict lands, the
        next attempt could no longer start before ``deadline``, or
        ``max_attempts`` runs out.  Retransmitted requests reuse the
        logical ``key``, so receivers can deduplicate (at-most-once
        decisions); verdicts arriving after their attempt timed out are
        counted as strays, never consumed.

        Every leg is logged as wire records (not enqueued: the exchange
        is resolved closed-form, which is equivalent because fates are
        stateless — and exactly what keeps replay byte-identical).
        """
        if timeout <= 0:
            raise ChannelError(f"rpc timeout must be > 0, got {timeout!r}")
        if max_attempts < 1:
            raise ChannelError(
                f"rpc max_attempts must be >= 1, got {max_attempts!r}"
            )
        registry = get_registry()
        strays = 0
        t_send = now
        attempt = 0
        while True:
            request = self.send(
                f"{kind}-request",
                src,
                dst,
                t_send,
                msg_id=f"{key}#{attempt}:req",
                payload=payload,
                enqueue=False,
            )
            if request.delivered:
                verdict = self.send(
                    f"{kind}-verdict",
                    dst,
                    src,
                    request.deliver_at,
                    msg_id=f"{key}#{attempt}:ack",
                    enqueue=False,
                )
                if verdict.delivered:
                    if verdict.deliver_at <= t_send + timeout:
                        if registry.enabled:
                            registry.counter(
                                "channel_rpc_total",
                                "request/verdict exchanges, by outcome",
                                labels=("outcome",),
                            ).inc(outcome="ok")
                        return RpcOutcome(
                            ok=True,
                            attempts=attempt + 1,
                            completed_at=verdict.deliver_at,
                            stray_replies=strays,
                        )
                    strays += 1
            attempt += 1
            next_send = t_send + timeout + backoff.delay(attempt - 1, key=key)
            if attempt >= max_attempts or next_send >= deadline:
                gave_up = min(next_send, deadline)
                if registry.enabled:
                    registry.counter(
                        "channel_rpc_total",
                        "request/verdict exchanges, by outcome",
                        labels=("outcome",),
                    ).inc(outcome="failed")
                return RpcOutcome(
                    ok=False,
                    attempts=attempt,
                    gave_up_at=gave_up,
                    stray_replies=strays,
                )
            t_send = next_send

    # ------------------------------------------------------------------
    def _enqueue(self, record: WireRecord) -> None:
        self._pending_seq += 1
        heapq.heappush(
            self._pending, (record.deliver_at, self._pending_seq, record)
        )

    def _account(self, record: WireRecord) -> None:
        stats = self._stats
        if record.fate == "duplicated":
            stats.duplicated += 1
        else:
            stats.sent += 1
            stats.by_kind[record.kind] = stats.by_kind.get(record.kind, 0) + 1
        if record.fate == "lost":
            stats.lost += 1
        elif record.fate == "severed":
            stats.severed += 1
        elif record.delivered:
            stats.delivered += 1
            stats.total_delay = (
                stats.total_delay + record.deliver_at - record.sent_at
            )
        self._log.append(record)
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "channel_messages_total",
                "wire records by message kind and fate",
                labels=("kind", "fate"),
            ).inc(kind=record.kind, fate=record.fate)
