"""Allocation policies: who gets the slice's resources.

At every ``dt`` slice the simulator must choose a concrete allocation —
one branch of the ROTA evolution tree.  Policies implement that choice:

* :class:`FcfsPolicy` — admission order drains capacity first (the
  canonical greedy branch of :func:`repro.logic.transitions.greedy_allocations`).
* :class:`EdfPolicy` — earliest-deadline-first: classic for deadline
  workloads; used as the default executor for baseline-admitted work.
* :class:`ReservationPolicy` — follows the witness schedules that ROTA
  admission committed to: each computation receives exactly what its
  claimed consumption profile says for this slice (clipped to remaining
  demand).  Executing the committed path is what makes Theorem 4's
  "without affecting the current executing computations" literal.
"""

from __future__ import annotations

import abc
from typing import Dict, Mapping, Sequence

from repro.computation.demands import Demands
from repro.decision.schedule import ConcurrentSchedule
from repro.intervals.interval import Interval, Time
from repro.logic.state import ActorProgress, SystemState
from repro.resources.located_type import LocatedType


class AllocationPolicy(abc.ABC):
    """Chooses each slice's allocations (a branch of the evolution tree)."""

    @abc.abstractmethod
    def allocate(self, state: SystemState, dt: Time) -> Mapping[str, Demands]:
        """Allocations for the slice ``(state.t, state.t + dt)``."""


class _PriorityPolicy(AllocationPolicy):
    """Work-conserving allocation by a priority order over computations."""

    def _order(self, active: Sequence[ActorProgress]) -> Sequence[ActorProgress]:
        raise NotImplementedError

    def allocate(self, state: SystemState, dt: Time) -> Mapping[str, Demands]:
        window = Interval(state.t, state.t + dt)
        capacity: Dict[LocatedType, Time] = {
            lt: state.theta.quantity(lt, window)
            for lt in state.theta.located_types
        }
        allocations: Dict[str, Demands] = {}
        active = [p for p in state.rho if p.active_at(state.t)]
        for progress in self._order(active):
            granted: Dict[LocatedType, Time] = {}
            for ltype, want in progress.current_demands.items():
                take = min(want, capacity.get(ltype, 0))
                if take > 0:
                    granted[ltype] = take
                    capacity[ltype] -= take
            if granted:
                allocations[progress.label] = Demands(granted)
        return allocations


class FcfsPolicy(_PriorityPolicy):
    """First come, first served (admission order)."""

    def _order(self, active: Sequence[ActorProgress]) -> Sequence[ActorProgress]:
        return active


class EdfPolicy(_PriorityPolicy):
    """Earliest deadline first."""

    def _order(self, active: Sequence[ActorProgress]) -> Sequence[ActorProgress]:
        return sorted(active, key=lambda p: (p.deadline, p.label))


class ReservationPolicy(AllocationPolicy):
    """Follow committed witness schedules; leftovers go EDF.

    ``reservations`` maps computation labels to the witness schedule the
    admission controller committed for them.  Computations without a
    reservation (e.g. admitted by a baseline policy under comparison)
    fall back to EDF over whatever the reserved ones leave behind.
    """

    def __init__(self, reservations: Mapping[str, ConcurrentSchedule] | None = None):
        self._reservations: Dict[str, ConcurrentSchedule] = dict(reservations or {})
        self._fallback = EdfPolicy()

    def reserve(self, label: str, schedule: ConcurrentSchedule) -> None:
        self._reservations[label] = schedule

    def release(self, label: str) -> None:
        self._reservations.pop(label, None)

    def allocate(self, state: SystemState, dt: Time) -> Mapping[str, Demands]:
        window = Interval(state.t, state.t + dt)
        capacity: Dict[LocatedType, Time] = {
            lt: state.theta.quantity(lt, window)
            for lt in state.theta.located_types
        }
        allocations: Dict[str, Demands] = {}
        reserved_active: list[ActorProgress] = []
        unreserved_active: list[ActorProgress] = []
        for progress in state.rho:
            if not progress.active_at(state.t):
                continue
            owner = progress.label.split("[")[0]
            if progress.label in self._reservations or owner in self._reservations:
                reserved_active.append(progress)
            else:
                unreserved_active.append(progress)

        for progress in reserved_active:
            owner = (
                progress.label
                if progress.label in self._reservations
                else progress.label.split("[")[0]
            )
            schedule = self._reservations[owner]
            claimed = _claim_for(schedule, progress.label, window)
            granted: Dict[LocatedType, Time] = {}
            for ltype, want in progress.current_demands.items():
                take = min(want, claimed.get(ltype, 0), capacity.get(ltype, 0))
                if take > 0:
                    granted[ltype] = take
                    capacity[ltype] -= take
            if granted:
                allocations[progress.label] = Demands(granted)

        # Remaining capacity flows EDF to unreserved computations, then —
        # work conservation — to reserved ones that have fallen behind
        # their claims (e.g. after quantisation slippage).  Per-slice
        # capacity expires anyway, so topping up never endangers another
        # reservation's future claims.
        for progress in sorted(
            unreserved_active + reserved_active,
            key=lambda p: (p.deadline, p.label),
        ):
            already = dict(allocations.get(progress.label, Demands()))
            granted = dict(already)
            changed = False
            for ltype, want in progress.current_demands.items():
                outstanding = want - already.get(ltype, 0)
                take = min(outstanding, capacity.get(ltype, 0))
                if take > 0:
                    granted[ltype] = granted.get(ltype, 0) + take
                    capacity[ltype] -= take
                    changed = True
            if changed:
                allocations[progress.label] = Demands(granted)
        return allocations


def _claim_for(
    schedule: ConcurrentSchedule, label: str, window: Interval
) -> Dict[LocatedType, Time]:
    """Quantity the witness schedule claims for ``label`` in the window."""
    claim: Dict[LocatedType, Time] = {}
    for component in schedule.schedules:
        if component.requirement.label not in ("", label):
            continue
        for assignment in component.assignments:
            for ltype, profile in assignment.consumption.items():
                amount = profile.integral(window)
                if amount > 0:
                    claim[ltype] = claim.get(ltype, 0) + amount
    return claim
