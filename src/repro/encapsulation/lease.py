"""Promise leases: cross-enclave capacity grants with an expiry.

When capacity crosses an enclave boundary (a parent pledging a top-up to
a child, see :mod:`repro.faults.netfaults`), the receiving enclave holds
it under a *lease*: a grant with a ttl that must be renewed over the
message channel before it lapses.  Admissions scheduled against leased
capacity carry the lease — their promise is only as durable as the
pledge backing it.

The lease discipline is the timeout construct of Misra & Roy's
timeout-extended LTL made operational: an enclave cut off by a partition
cannot distinguish "my grantor is slow" from "my grant was re-pledged
elsewhere", so at expiry it *conservatively renounces* the leased
capacity — evicting dependents through the ordinary promise-violation
recovery pipeline — rather than keeping a promise it can no longer
justify.  Expiry is therefore modelled behaviour, never an error;
:class:`~repro.errors.LeaseError` marks misuse of the machinery itself.

Everything here is pure bookkeeping on the virtual clock: no randomness,
no wall clock, insertion-ordered iteration only — the tables are carried
inside pickled policies and replayed runs must walk them identically.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import LeaseError
from repro.intervals.interval import Time
from repro.markers import checkpointable
from repro.resources.resource_set import ResourceSet


@dataclass
class Lease:
    """One cross-enclave capacity pledge and its renewal state."""

    lease_id: str
    grantor: str
    holder: str
    resources: ResourceSet
    granted_at: Time
    #: instant the pledge lapses unless a renewal ack lands first
    expires_at: Time
    ttl: Time
    renew_every: Time
    #: next instant the holder owes the grantor a renewal request
    next_renew_at: Time = 0
    renewals: int = 0
    #: renewal requests sent that never produced an ack (lost/severed)
    failed_renewals: int = 0
    #: admission labels whose schedules ride on this grant
    dependents: Tuple[str, ...] = ()
    expired_at: Optional[Time] = None

    def __post_init__(self) -> None:
        if self.ttl <= 0:
            raise LeaseError(
                f"lease {self.lease_id!r}: ttl must be > 0, got {self.ttl!r}"
            )
        if self.renew_every <= 0:
            raise LeaseError(
                f"lease {self.lease_id!r}: renew_every must be > 0, "
                f"got {self.renew_every!r}"
            )
        if self.expires_at <= self.granted_at:
            raise LeaseError(
                f"lease {self.lease_id!r}: expires_at {self.expires_at!r} "
                f"must follow granted_at {self.granted_at!r}"
            )
        if not self.next_renew_at:
            self.next_renew_at = self.granted_at + self.renew_every

    # ------------------------------------------------------------------
    @property
    def expired(self) -> bool:
        return self.expired_at is not None

    def active(self, now: Time) -> bool:
        return not self.expired and now < self.expires_at

    def due_for_renewal(self, now: Time) -> bool:
        return not self.expired and now >= self.next_renew_at

    def remaining(self, now: Time) -> ResourceSet:
        """The still-trusted future portion of the pledge at ``now``."""
        return self.resources.truncate_before(now)

    # ------------------------------------------------------------------
    def mark_renewal_sent(self, now: Time) -> None:
        """A renewal request left for the grantor; don't re-send until
        the next renewal period even if no ack ever returns."""
        self.next_renew_at = now + self.renew_every

    def renew(self, acked_at: Time) -> None:
        """A renewal ack landed: the pledge holds for another ttl."""
        if self.expired:
            raise LeaseError(
                f"lease {self.lease_id!r} already expired at "
                f"{self.expired_at!r}; a late ack cannot revive it"
            )
        self.renewals += 1
        if acked_at + self.ttl > self.expires_at:
            self.expires_at = acked_at + self.ttl

    def attach(self, label: str) -> None:
        if label not in self.dependents:
            self.dependents = self.dependents + (label,)


@checkpointable
class LeaseTable:
    """Insertion-ordered registry of leases held by (or granted to) one
    side of an enclave boundary."""

    def __init__(self) -> None:
        self._leases: Dict[str, Lease] = {}

    # ------------------------------------------------------------------
    def grant(self, lease: Lease) -> Lease:
        if lease.lease_id in self._leases:
            raise LeaseError(f"duplicate lease id {lease.lease_id!r}")
        self._leases[lease.lease_id] = lease
        return lease

    def get(self, lease_id: str) -> Lease:
        try:
            return self._leases[lease_id]
        except KeyError:
            raise LeaseError(f"unknown lease id {lease_id!r}") from None

    def __contains__(self, lease_id: str) -> bool:
        return lease_id in self._leases

    def __len__(self) -> int:
        return len(self._leases)

    # ------------------------------------------------------------------
    def active(self, now: Time) -> List[Lease]:
        return [l for l in self._leases.values() if l.active(now)]

    def expired(self) -> List[Lease]:
        return [l for l in self._leases.values() if l.expired]

    def due_renewals(self, now: Time) -> List[Lease]:
        """Leases owing the grantor a renewal request at ``now``."""
        return [
            l for l in self._leases.values() if l.due_for_renewal(now)
        ]

    def expire_due(self, now: Time) -> List[Lease]:
        """Mark every lapsed lease expired; returns them in grant order.

        Expiry is checked *after* the caller delivered any due acks, so a
        renewal that crossed the wire in time always wins over the lapse
        it was racing.
        """
        lapsed: List[Lease] = []
        for lease in self._leases.values():
            if not lease.expired and now >= lease.expires_at:
                lease.expired_at = now
                lapsed.append(lease)
        return lapsed

    def holder_of(self, label: str) -> Optional[Lease]:
        """The lease an admission label rides on, if any."""
        for lease in self._leases.values():
            if label in lease.dependents:
                return lease
        return None

    # ------------------------------------------------------------------
    def state_snapshot(self) -> Tuple[Lease, ...]:
        """Grant-ordered copies of every lease, isolated from future
        renewals/expiries — the checkpoint's view of the grant and
        renewal clocks (``expires_at``, ``next_renew_at``,
        ``expired_at``) at one instant."""
        return tuple(replace(lease) for lease in self._leases.values())

    def restore_state(self, leases: Iterable[Lease]) -> None:
        """Reinstate a :meth:`state_snapshot`, preserving grant order."""
        self._leases = {
            lease.lease_id: replace(lease) for lease in leases
        }
