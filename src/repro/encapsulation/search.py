"""Value-bounded resource search (paper Section VI, final paragraph).

The paper's closing thought: "if computations can determine the value of
carrying out a computation, that can inform their decision about how much
resource to expend in ... searching for resources before giving up."

This module implements that economy over the enclave hierarchy:

* probing an enclave (one admission attempt) has a *cost*, growing with
  the enclave's size (more resource types = more reasoning);
* a computation carries a *value*; the search walks the hierarchy in a
  cheapest-first / most-promising-first order and **gives up** once the
  cumulative search spend would exceed the computation's value — an
  unprofitable pursuit is abandoned before the admission answer is even
  known, which is precisely the self-limiting behaviour the paper wants.

The result records where (and whether) the computation was placed and
what the search itself consumed, so callers can study the value/effort
frontier (``benchmarks/bench_search_economy.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.computation.requirements import (
    ComplexRequirement,
    ConcurrentRequirement,
)
from repro.encapsulation.enclave import Enclave
from repro.errors import RotaError


class SearchBudgetError(RotaError, ValueError):
    """Invalid search-economy parameters."""


@dataclass(frozen=True)
class SearchOutcome:
    """Where the search ended and what it spent getting there."""

    admitted: bool
    enclave: Optional[Enclave]
    spent: float
    probes: int
    gave_up: bool  # True when the budget stopped the search early

    @property
    def profitable(self) -> bool:
        return self.admitted and not self.gave_up


def default_probe_cost(enclave: Enclave) -> float:
    """Reasoning cost model: one unit per resource type the enclave's
    controller must consider (matches the E9 scaling observation)."""
    return 1.0 + len(enclave.resources.located_types)


def _candidate_order(root: Enclave, requirement) -> Iterator[Enclave]:
    """Most-promising-first: enclaves owning more of the demanded types
    come first; ties broken by smaller (cheaper to probe) enclaves."""
    demanded = set()
    parts = (
        requirement.components
        if isinstance(requirement, ConcurrentRequirement)
        else (requirement,)
    )
    for part in parts:
        for phase in part.phases:
            demanded.update(phase.located_types())

    def promise(enclave: Enclave) -> tuple:
        owned = set(enclave.resources.located_types)
        overlap = len(owned & demanded)
        return (-overlap, len(owned), enclave.name)

    yield from sorted(root.walk(), key=promise)


def search_for_admission(
    root: Enclave,
    requirement: ComplexRequirement | ConcurrentRequirement,
    *,
    value: float,
    probe_cost: Callable[[Enclave], float] = default_probe_cost,
    commit: bool = True,
) -> SearchOutcome:
    """Search the hierarchy for an enclave that can admit ``requirement``,
    spending at most ``value`` on the search itself.

    Probing order is most-promising-first.  Before each probe the search
    checks whether paying for it keeps the pursuit profitable; if not it
    gives up — "avoiding infeasible pursuits" generalised to *unprofitable*
    ones.  With ``commit=False`` the search only answers (can_admit), never
    admitting.
    """
    if value < 0:
        raise SearchBudgetError(f"value must be >= 0, got {value!r}")
    spent = 0.0
    probes = 0
    for enclave in _candidate_order(root, requirement):
        cost = probe_cost(enclave)
        if cost < 0:
            raise SearchBudgetError("probe cost must be >= 0")
        if spent + cost > value:
            return SearchOutcome(False, None, spent, probes, gave_up=True)
        spent += cost
        probes += 1
        decision = (
            enclave.admit(requirement) if commit else enclave.can_admit(requirement)
        )
        if decision.admitted:
            return SearchOutcome(True, enclave, spent, probes, gave_up=False)
    return SearchOutcome(False, None, spent, probes, gave_up=False)


def value_threshold(
    root: Enclave,
    requirement: ComplexRequirement | ConcurrentRequirement,
    *,
    probe_cost: Callable[[Enclave], float] = default_probe_cost,
) -> Optional[float]:
    """The minimum computation value at which the search succeeds —
    the break-even point of looking for resources.  None when no enclave
    can admit at any budget."""
    spent = 0.0
    for enclave in _candidate_order(root, requirement):
        spent += probe_cost(enclave)
        if enclave.can_admit(requirement).admitted:
            return spent
    return None
