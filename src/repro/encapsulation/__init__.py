"""CyberOrgs-style resource encapsulations (paper Section VI outlook).

Hierarchical enclaves, each reasoning only over its own resource slice.
"""

from repro.encapsulation.enclave import Enclave, EnclaveError
from repro.encapsulation.lease import Lease, LeaseTable
from repro.encapsulation.policy import EnclaveAdmission
from repro.encapsulation.search import (
    SearchBudgetError,
    SearchOutcome,
    default_probe_cost,
    search_for_admission,
    value_threshold,
)

__all__ = [
    "Enclave",
    "EnclaveError",
    "EnclaveAdmission",
    "Lease",
    "LeaseTable",
    "SearchBudgetError",
    "SearchOutcome",
    "default_probe_cost",
    "search_for_admission",
    "value_threshold",
]
