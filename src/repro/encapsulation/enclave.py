"""CyberOrgs-style resource encapsulations (paper Section VI).

The paper's closing argument: ROTA's reasoning cost is high in general,
but "the context in which we hope to use ROTA is that of resource
encapsulations of the type defined by the CyberOrgs model, where the
reasoning only needs to concern itself with resources available inside
the encapsulation".

:class:`Enclave` realises that: a tree of resource encapsulations, each
owning a slice of its parent's resources and running its *own* admission
controller over that slice only.  Key invariants:

* **conservation** — a child's allotment is carved out of the parent's
  expiring slack (the parent commits it like any other admission), so the
  sum of all enclaves' resources never exceeds the root's;
* **isolation** — admission inside an enclave consults only the enclave's
  own resources; siblings cannot interfere, and reasoning cost scales
  with the enclave, not with the system (measured in
  ``benchmarks/bench_encapsulation.py``);
* **assurance composition** — a computation admitted by any enclave is
  still globally assured, because every enclave's resources are disjoint
  slices of real root resources.

Enclaves support the CyberOrgs primitives the paper references:
``spawn`` (create a child with an allotment), ``dissolve`` (return a
child's unused slack to the parent), and ``migrate`` (move an admitted,
not-yet-started computation to a sibling enclave, re-deciding admission
there).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.computation.requirements import (
    ComplexRequirement,
    ConcurrentRequirement,
)
from repro.decision.admission import AdmissionController, AdmissionDecision
from repro.errors import RotaError, TransitionError
from repro.intervals.interval import Time
from repro.resources.resource_set import ResourceSet


class EnclaveError(RotaError, ValueError):
    """Violation of the enclave discipline (unknown child, over-allotment,
    migrating a started computation, ...)."""


class Enclave:
    """One resource encapsulation: a named slice of the system.

    The root enclave is built with :meth:`root`; children are created with
    :meth:`spawn`.  Every enclave wraps its own
    :class:`~repro.decision.admission.AdmissionController`.
    """

    def __init__(
        self,
        name: str,
        controller: AdmissionController,
        parent: Optional["Enclave"] = None,
    ) -> None:
        # Default names derive from the enclave tree itself, never from a
        # process-global counter: two enclaves built in different
        # processes (or different enclave-parallel shards) with the same
        # tree state must get the same name.
        if not name:
            if parent is None:
                name = "enclave-root"
            else:
                ordinal = len(parent._children) + 1
                while f"enclave-{ordinal}" in parent._children:
                    ordinal += 1
                name = f"enclave-{ordinal}"
        self.name = name
        self._controller = controller
        self._parent = parent
        self._children: Dict[str, Enclave] = {}
        self._dissolved = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def root(
        cls,
        resources: ResourceSet,
        *,
        name: str = "root",
        now: Time = 0,
        align: Time | None = None,
    ) -> "Enclave":
        """The system-wide encapsulation owning all known resources."""
        return cls(name, AdmissionController(resources, now=now, align=align))

    def spawn(self, name: str, allotment: ResourceSet) -> "Enclave":
        """Create a child enclave owning ``allotment``.

        The allotment is claimed from this enclave's expiring slack —
        spawning is an admission decision, so a parent cannot hand out
        resources it has already promised elsewhere.
        """
        self._check_alive()
        if name in self._children:
            raise EnclaveError(f"child {name!r} already exists in {self.name!r}")
        try:
            # Spawning is an admission decision: the allotment is claimed
            # from this enclave's expiring slack.
            self._controller.reserve(allotment)
        except TransitionError:
            raise EnclaveError(
                f"allotment for {name!r} exceeds the expiring slack of "
                f"{self.name!r}"
            ) from None
        child = Enclave(
            name,
            AdmissionController(
                allotment, now=self._controller.now, align=self._controller.align
            ),
            parent=self,
        )
        self._children[name] = child
        return child

    def dissolve(self, name: str) -> ResourceSet:
        """Dissolve a child: its *unclaimed* slack flows back to this
        enclave; resources its admitted computations claimed stay
        committed (their assurance survives the reorganisation).
        Returns the recovered resource set.
        """
        self._check_alive()
        child = self._children.pop(name, None)
        if child is None:
            raise EnclaveError(f"no child {name!r} in {self.name!r}")
        if child._children:
            raise EnclaveError(
                f"dissolve children of {name!r} first (non-empty enclave)"
            )
        recovered = child._controller.expiring_slack
        child._dissolved = True
        # Returning slack = releasing that much of the parent's reservation.
        self._controller.release(recovered)
        return recovered

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def parent(self) -> Optional["Enclave"]:
        return self._parent

    @property
    def children(self) -> tuple["Enclave", ...]:
        return tuple(self._children.values())

    @property
    def controller(self) -> AdmissionController:
        return self._controller

    @property
    def resources(self) -> ResourceSet:
        """Everything this enclave owns (committed or not)."""
        return self._controller.available

    @property
    def slack(self) -> ResourceSet:
        """What this enclave could still promise."""
        return self._controller.expiring_slack

    @property
    def is_root(self) -> bool:
        return self._parent is None

    def child(self, name: str) -> "Enclave":
        try:
            return self._children[name]
        except KeyError:
            raise EnclaveError(f"no child {name!r} in {self.name!r}") from None

    def walk(self) -> Iterator["Enclave"]:
        """This enclave and every descendant, depth first."""
        yield self
        for child in self._children.values():
            yield from child.walk()

    def find(self, name: str) -> Optional["Enclave"]:
        for enclave in self.walk():
            if enclave.name == name:
                return enclave
        return None

    # ------------------------------------------------------------------
    # Admission inside the encapsulation
    # ------------------------------------------------------------------
    def admit(
        self,
        requirement: ComplexRequirement | ConcurrentRequirement,
        *,
        exhaustive: bool = False,
    ) -> AdmissionDecision:
        """Admit against *this enclave's* resources only — the confinement
        that makes the reasoning tractable."""
        self._check_alive()
        return self._controller.admit(requirement, exhaustive=exhaustive)

    def can_admit(
        self,
        requirement: ComplexRequirement | ConcurrentRequirement,
        *,
        exhaustive: bool = False,
    ) -> AdmissionDecision:
        self._check_alive()
        return self._controller.can_admit(requirement, exhaustive=exhaustive)

    def admit_anywhere(
        self, requirement: ComplexRequirement | ConcurrentRequirement
    ) -> Optional["Enclave"]:
        """Try this enclave, then descendants (depth first): the search a
        computation would perform when its own enclave is full.  Returns
        the admitting enclave or None."""
        for enclave in self.walk():
            if enclave.admit(requirement).admitted:
                return enclave
        return None

    def migrate(
        self, label: str, destination: "Enclave", *, now: Time | None = None
    ) -> AdmissionDecision:
        """Move a not-yet-started admitted computation to a sibling/other
        enclave: withdraw here (the paper's leave rule, t < s), re-admit
        there.  On rejection the computation is re-admitted locally, so
        the operation is atomic from the caller's perspective.
        """
        self._check_alive()
        destination._check_alive()
        schedule = self._controller.schedule_of(label)
        requirements = tuple(s.requirement for s in schedule.schedules)
        window_start = min(r.start for r in requirements)
        window_end = max(r.deadline for r in requirements)
        from repro.intervals.interval import Interval

        bundle = ConcurrentRequirement(
            requirements, Interval(window_start, window_end)
        )
        self._controller.withdraw(label, now=now)
        decision = destination.admit(bundle)
        if not decision.admitted:
            restored = self._controller.admit(bundle)
            if not restored.admitted:  # pragma: no cover - cannot happen:
                # the slack we just returned covers the old schedule
                raise TransitionError(
                    f"failed to restore {label!r} after rejected migration"
                )
        return decision

    # ------------------------------------------------------------------
    def _check_alive(self) -> None:
        if self._dissolved:
            raise EnclaveError(f"enclave {self.name!r} has been dissolved")

    def __repr__(self) -> str:
        return (
            f"Enclave({self.name!r}, children={len(self._children)}, "
            f"admitted={len(self._controller.admitted_labels)})"
        )
