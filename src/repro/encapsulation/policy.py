"""An enclave hierarchy as a simulator admission policy.

Bridges :mod:`repro.encapsulation` into the open-system simulator: the
policy owns an enclave tree, routes each arrival to an enclave (custom
router, or hierarchy search by default), and lets the enclave's own
controller decide.  Joining resources grow the *root*; children keep
their original allotments (a provider absorbing new capacity at the top).

This makes the E11 confinement claim testable end to end: a partitioned
system runs the same event streams as a flat one and must keep ROTA's
zero-miss guarantee inside every enclave.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.baselines.base import AdmissionPolicy, PolicyDecision
from repro.computation.requirements import ConcurrentRequirement
from repro.encapsulation.enclave import Enclave
from repro.intervals.interval import Time
from repro.resources.resource_set import ResourceSet

#: Routes an arrival to the enclave that should consider it (or None to
#: fall back to hierarchy-wide search).
Router = Callable[[ConcurrentRequirement], Optional[Enclave]]


class EnclaveAdmission(AdmissionPolicy):
    """Admission through a CyberOrgs-style enclave hierarchy."""

    name = "enclave"

    def __init__(self, root: Enclave, *, router: Router | None = None) -> None:
        self._root = root
        self._router = router
        self._placements: Dict[str, str] = {}

    @property
    def root(self) -> Enclave:
        return self._root

    def placement_of(self, label: str) -> Optional[str]:
        """Which enclave admitted the labelled arrival (None = rejected)."""
        return self._placements.get(label)

    def observe_resources(self, resources: ResourceSet, now: Time) -> None:
        self._root.controller.advance_to(now)
        self._root.controller.add_resources(resources)

    def decide(self, requirement: ConcurrentRequirement, now: Time) -> PolicyDecision:
        for enclave in self._root.walk():
            enclave.controller.advance_to(now)
        target: Optional[Enclave] = None
        if self._router is not None:
            target = self._router(requirement)
        if target is not None:
            decision = target.admit(requirement)
            admitted_in = target if decision.admitted else None
        else:
            admitted_in = self._root.admit_anywhere(requirement)
            decision = None
        if admitted_in is None:
            return PolicyDecision(
                False, reason="no enclave can assure the deadline"
            )
        label = requirement.components[0].label.split("[")[0] or "arrival"
        self._placements[label] = admitted_in.name
        schedule = (
            decision.schedule
            if decision is not None
            else admitted_in.controller.schedule_of(
                admitted_in.controller.admitted_labels[-1]
            )
        )
        return PolicyDecision(True, schedule=schedule)
