"""Snapshot exporters: JSONL and Prometheus text exposition format.

Both operate on the JSON-ready structure from
:meth:`~repro.observability.metrics.MetricsRegistry.snapshot`, so they
need no live registry and can render snapshots captured elsewhere (e.g.
the one a :class:`~repro.system.simulator.SimulationReport` carries).

* **JSONL** — one line per metric family plus one line per span root;
  lossless (buckets, spans, helps all survive) and greppable.
* **Prometheus** — the standard ``/metrics`` text format, dumped to a
  file: ``# HELP`` / ``# TYPE`` headers, escaped label values,
  cumulative ``le`` buckets with ``_sum`` / ``_count``.  Span trees have
  no Prometheus representation and are omitted (use JSONL for those).
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Mapping, Union

PathLike = Union[str, Path]


def write_jsonl(snapshot: Mapping[str, Any], path: PathLike) -> Path:
    """Dump a snapshot as JSONL: metric families first, span roots after."""
    path = Path(path)
    lines: List[str] = []
    for family in snapshot.get("metrics", []):
        lines.append(json.dumps({"record": "metric", **family}, sort_keys=True))
    for root in snapshot.get("spans", []):
        lines.append(json.dumps({"record": "span", **root}, sort_keys=True))
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def _escape_label_value(value: str) -> str:
    """Escape per the exposition format: backslash, quote, newline."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )

def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value) if isinstance(value, float) else str(value)


def _label_block(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _render_family(family: Mapping[str, Any]) -> List[str]:
    name = family["name"]
    kind = family["kind"]
    lines = []
    if family.get("help"):
        lines.append(f"# HELP {name} {_escape_help(family['help'])}")
    lines.append(f"# TYPE {name} {kind}")
    for series in family.get("series", []):
        labels: Dict[str, str] = dict(series.get("labels", {}))
        if kind == "histogram":
            bounds = list(series["buckets"]) + [math.inf]
            running = 0
            for bound, count in zip(bounds, series["counts"]):
                running += count
                bucket_labels = dict(labels)
                bucket_labels["le"] = _format_value(float(bound))
                lines.append(
                    f"{name}_bucket{_label_block(bucket_labels)} {running}"
                )
            lines.append(
                f"{name}_sum{_label_block(labels)} "
                f"{_format_value(series['sum'])}"
            )
            lines.append(
                f"{name}_count{_label_block(labels)} {series['count']}"
            )
        else:
            lines.append(
                f"{name}{_label_block(labels)} "
                f"{_format_value(series['value'])}"
            )
    return lines


def render_prometheus(snapshot: Mapping[str, Any]) -> str:
    """The snapshot's metric families in Prometheus text format."""
    lines: List[str] = []
    for family in snapshot.get("metrics", []):
        lines.extend(_render_family(family))
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(snapshot: Mapping[str, Any], path: PathLike) -> Path:
    path = Path(path)
    path.write_text(render_prometheus(snapshot))
    return path
