"""Runtime observability: metrics, spans, and profiling hooks.

ROTA's value proposition is deciding *ahead of time* whether a deadline
can be met; this package records what the running system *actually saw*
while keeping those promises — admissions and refusals by reason, how
long Theorem-4 checks take under load, where recovery and durability
time goes.  Alechina & Logan's diminishing-resource logics motivate
treating production/consumption counters as first-class model state, and
van Glabbeek's reactive temporal logic stresses that open-system
guarantees are only as good as the observed environment behaviour; the
metric families here are that observed record.

Design constraints (enforced by tests and a CI lint):

* **zero dependencies** — nothing here imports from ``repro.system``,
  ``repro.decision``, or any other instrumented package.  Instrumented
  code depends on observability, never the reverse;
* **no-op by default** — the process-global registry starts as a
  :class:`NullRegistry`, so uninstrumented callers pay only a dict
  lookup and an attribute check per hook (benchmarked at <= 5% overhead
  even with a live registry, see ``bench_observability_overhead.py``);
* **determinism-neutral** — timing data never enters journal records,
  checkpoint envelopes, or replay-verified state, so a metrics-enabled
  run produces byte-identical durability artifacts to a disabled one.

Typical use::

    from repro.observability import MetricsRegistry, use_registry

    registry = MetricsRegistry()
    with use_registry(registry):
        report = simulator.run(horizon)
    write_jsonl(registry.snapshot(), "metrics.jsonl")
"""

from repro.observability.metrics import (
    BoundCounter,
    BoundHistogram,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    PhaseTimer,
    get_registry,
    set_registry,
    use_registry,
)
from repro.observability.spans import SpanRecord
from repro.observability.export import (
    render_prometheus,
    write_jsonl,
    write_prometheus,
)

__all__ = [
    "BoundCounter",
    "BoundHistogram",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NullRegistry",
    "PhaseTimer",
    "SpanRecord",
    "get_registry",
    "set_registry",
    "use_registry",
    "render_prometheus",
    "write_jsonl",
    "write_prometheus",
]
