"""Metric primitives and the registry that owns them.

Three instrument kinds, all supporting labeled series:

* :class:`Counter` — monotonically increasing totals (events applied,
  admissions by outcome, journal appends);
* :class:`Gauge` — a value that goes both ways (live victim count,
  committed-slack series size);
* :class:`Histogram` — sample distributions with Prometheus ``le``
  (less-or-equal, upper-inclusive) bucket semantics, plus exact sum and
  count (check latencies, backoff delays, checkpoint write seconds).

A :class:`MetricsRegistry` is the process-wide owner: instruments are
get-or-create by name (re-registration with a different kind, label set,
or bucket layout is an error, never a silent aliasing), spans nest via
the registry's span stack, and :meth:`MetricsRegistry.snapshot` renders
everything into one deterministic, JSON-ready structure — deterministic
meaning equal operation sequences against equal clocks yield equal
snapshots, byte for byte once serialized.

The module-level default is a :class:`NullRegistry` whose instruments
and spans are shared no-op singletons: uninstrumented programs pay one
dict lookup plus an attribute check per hook and allocate nothing.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.observability.spans import NULL_SPAN, NullSpanContext, SpanContext, SpanRecord

#: Default histogram buckets for sub-second latencies (seconds).  The
#: top bucket is implicit ``+Inf``; these bounds cover microsecond-scale
#: slack checks up to multi-second checkpoint writes.
LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4,
    1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0,
)

LabelNames = Tuple[str, ...]
SeriesKey = Tuple[str, ...]


class MetricError(ValueError):
    """Instrument misuse: kind/label/bucket mismatch or bad label set."""


class Instrument:
    """Common machinery: a named family of labeled series."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: Sequence[str]) -> None:
        self.name = name
        self.help = help
        self.label_names: LabelNames = tuple(label_names)

    # ------------------------------------------------------------------
    def _key(self, labels: Dict[str, Any]) -> SeriesKey:
        """Resolve ``labels`` to a series key.

        The empty label set and "no labels at all" are the *same* series:
        an unlabeled instrument has exactly one series, keyed ``()``.
        This is per-sample hot-path code: the happy case is one length
        check plus direct lookups, no sorting.
        """
        names = self.label_names
        if not labels:
            if not names:
                return ()
        elif len(labels) == len(names):
            try:
                return tuple(str(labels[name]) for name in names)
            except KeyError:
                pass
        raise MetricError(
            f"{self.name}: expected labels {sorted(self.label_names)}, "
            f"got {sorted(labels)}"
        )

    def _labels_of(self, key: SeriesKey) -> Dict[str, str]:
        return dict(zip(self.label_names, key))

    def signature(self) -> Tuple[Any, ...]:
        """Identity checked on re-registration under the same name."""
        return (self.kind, self.label_names)

    # Overridden per kind.
    def _series_snapshot(self) -> List[Dict[str, Any]]:  # pragma: no cover
        raise NotImplementedError

    def snapshot(self) -> Dict[str, Any]:
        """This family as one deterministic JSON-ready dict."""
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "label_names": list(self.label_names),
            "series": sorted(
                self._series_snapshot(),
                key=lambda s: tuple(sorted(s["labels"].items())),
            ),
        }


class BoundCounter:
    """One pre-resolved counter series: label validation paid at bind
    time, so the per-sample cost is a single dict update.  Hot loops
    bind once (``counter.labels(ltype=...)``) and ``inc`` per sample."""

    __slots__ = ("_name", "_values", "_series_key")

    def __init__(self, name: str, values: Dict[SeriesKey, float], key: SeriesKey) -> None:
        self._name = name
        self._values = values
        self._series_key = key

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise MetricError(
                f"{self._name}: counters only go up, got {amount!r}"
            )
        values = self._values
        key = self._series_key
        values[key] = values.get(key, 0) + amount


class Counter(Instrument):
    """Monotonically increasing total per labeled series."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", label_names: Sequence[str] = ()) -> None:
        super().__init__(name, help, label_names)
        self._values: Dict[SeriesKey, float] = {}

    def inc(self, amount: float = 1, **labels: Any) -> None:
        if amount < 0:
            raise MetricError(
                f"{self.name}: counters only go up, got {amount!r}"
            )
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def labels(self, **labels: Any) -> BoundCounter:
        """Bind one series for repeated cheap :meth:`BoundCounter.inc`."""
        return BoundCounter(self.name, self._values, self._key(labels))

    def value(self, **labels: Any) -> float:
        return self._values.get(self._key(labels), 0)

    def _series_snapshot(self) -> List[Dict[str, Any]]:
        return [
            {"labels": self._labels_of(key), "value": value}
            for key, value in self._values.items()
        ]


class Gauge(Instrument):
    """A value that can rise and fall, per labeled series."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", label_names: Sequence[str] = ()) -> None:
        super().__init__(name, help, label_names)
        self._values: Dict[SeriesKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._values[self._key(labels)] = value

    def inc(self, amount: float = 1, **labels: Any) -> None:
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        return self._values.get(self._key(labels), 0)

    def _series_snapshot(self) -> List[Dict[str, Any]]:
        return [
            {"labels": self._labels_of(key), "value": value}
            for key, value in self._values.items()
        ]


class BoundHistogram:
    """One pre-resolved histogram series: the slot list is shared with
    the parent by reference, so per-sample cost is a bisect plus three
    in-place updates."""

    __slots__ = ("_buckets", "_slot")

    def __init__(self, buckets: Tuple[float, ...], slot: List[Any]) -> None:
        self._buckets = buckets
        self._slot = slot

    def observe(self, value: float) -> None:
        slot = self._slot
        slot[0][bisect_left(self._buckets, value)] += 1
        slot[1] += value
        slot[2] += 1


class Histogram(Instrument):
    """Sample distribution with upper-inclusive (``le``) buckets.

    A sample equal to a bucket bound lands *in* that bucket — exact int
    samples on integer bounds included — matching Prometheus semantics
    so the cumulative export is directly scrapeable.  The final
    ``+Inf`` bucket is implicit and always equals ``count``.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, label_names)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise MetricError(f"{name}: histograms need at least one bucket")
        if list(bounds) != sorted(set(bounds)):
            raise MetricError(
                f"{name}: bucket bounds must be strictly increasing, got {bounds}"
            )
        self.buckets: Tuple[float, ...] = bounds
        # per series: ([per-bucket counts..., overflow], sum, count)
        self._series: Dict[SeriesKey, List[Any]] = {}

    def signature(self) -> Tuple[Any, ...]:
        return (self.kind, self.label_names, self.buckets)

    def _slot(self, labels: Dict[str, Any]) -> List[Any]:
        key = self._key(labels)
        slot = self._series.get(key)
        if slot is None:
            slot = [[0] * (len(self.buckets) + 1), 0.0, 0]
            self._series[key] = slot
        return slot

    def observe(self, value: float, **labels: Any) -> None:
        slot = self._slot(labels)
        # bisect_left on the bound array: value == bound resolves to the
        # bound's own index, i.e. the upper-inclusive bucket.
        index = bisect_left(self.buckets, value)
        slot[0][index] += 1
        slot[1] += value
        slot[2] += 1

    def labels(self, **labels: Any) -> BoundHistogram:
        """Bind one series for repeated cheap :meth:`BoundHistogram.observe`."""
        return BoundHistogram(self.buckets, self._slot(labels))

    def count(self, **labels: Any) -> int:
        slot = self._series.get(self._key(labels))
        return slot[2] if slot else 0

    def sum(self, **labels: Any) -> float:
        slot = self._series.get(self._key(labels))
        return slot[1] if slot else 0.0

    def bucket_counts(self, **labels: Any) -> Tuple[int, ...]:
        """Non-cumulative per-bucket counts; last entry is ``+Inf``."""
        slot = self._series.get(self._key(labels))
        if slot is None:
            return tuple([0] * (len(self.buckets) + 1))
        return tuple(slot[0])

    def cumulative_counts(self, **labels: Any) -> Tuple[int, ...]:
        """Prometheus-style cumulative ``le`` counts, ``+Inf`` last."""
        counts = self.bucket_counts(**labels)
        out: List[int] = []
        running = 0
        for count in counts:
            running += count
            out.append(running)
        return tuple(out)

    def _series_snapshot(self) -> List[Dict[str, Any]]:
        rendered = []
        for key, (counts, total, count) in self._series.items():
            rendered.append(
                {
                    "labels": self._labels_of(key),
                    "buckets": list(self.buckets),
                    "counts": list(counts),
                    "sum": total,
                    "count": count,
                }
            )
        return rendered


# ----------------------------------------------------------------------
# Registries
# ----------------------------------------------------------------------

class MetricsRegistry:
    """Owner of all instruments and the span tree for one process/run.

    ``clock`` is injectable (frozen or stepped in tests; monotonic in
    production) and is the *only* time source observability ever reads —
    simulation time stays untouched, wall time stays out of simulation
    state.
    """

    enabled = True

    def __init__(self, clock=time.monotonic) -> None:
        self._clock = clock
        self._instruments: Dict[str, Instrument] = {}
        self._span_roots: List[SpanRecord] = []
        self._span_stack: List[SpanRecord] = []

    # ------------------------------------------------------------------
    def now(self) -> float:
        """The registry clock — for manual interval timing at hooks."""
        return self._clock()

    def _register(self, name: str, signature: Tuple[Any, ...], factory) -> Instrument:
        # Get-or-create is hot-path (instrumented code re-requests by
        # name at call sites): verify identity against the cheap
        # signature tuple instead of constructing a throwaway instrument.
        existing = self._instruments.get(name)
        if existing is not None:
            if existing.signature() != signature:
                raise MetricError(
                    f"{name}: already registered as {existing.signature()}, "
                    f"re-requested as {signature}"
                )
            return existing
        fresh = factory()
        self._instruments[name] = fresh
        return fresh

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        return self._register(
            name,
            ("counter", tuple(labels)),
            lambda: Counter(name, help, labels),
        )

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Gauge:
        return self._register(
            name, ("gauge", tuple(labels)), lambda: Gauge(name, help, labels)
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> Histogram:
        return self._register(
            name,
            ("histogram", tuple(labels), tuple(float(b) for b in buckets)),
            lambda: Histogram(name, help, labels, buckets),
        )

    def instruments(self) -> List[Instrument]:
        return [self._instruments[name] for name in sorted(self._instruments)]

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def span(self, name: str) -> SpanContext:
        """Open a timed region; nests under any span already active."""
        return SpanContext(self, name)

    def _open_span(self, name: str) -> SpanRecord:
        record = SpanRecord(name=name, start=self._clock())
        if self._span_stack:
            self._span_stack[-1].children.append(record)
        else:
            self._span_roots.append(record)
        self._span_stack.append(record)
        return record

    def _close_span(self, record: SpanRecord, *, error: bool) -> None:
        record.end = self._clock()
        record.error = error
        # Exception unwinding may close an ancestor while descendants
        # are still on the stack (generators, premature closes): pop
        # through to the record itself so the stack never wedges.
        while self._span_stack:
            top = self._span_stack.pop()
            if top is record:
                break

    @property
    def span_roots(self) -> Tuple[SpanRecord, ...]:
        return tuple(self._span_roots)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """All metric families plus span trees, deterministically ordered."""
        return {
            "metrics": [
                instrument.snapshot() for instrument in self.instruments()
            ],
            "spans": [root.to_dict() for root in self._span_roots],
        }

    def reset(self) -> None:
        """Drop every instrument, series, and span (tests, fresh runs)."""
        self._instruments.clear()
        self._span_roots.clear()
        self._span_stack.clear()


class PhaseTimer:
    """A reusable timed-region context manager bound to one registry and
    one histogram series: each use opens a child span and feeds the
    span's duration to the series on clean exit.

    This is the per-slice hot path of instrumented loops (the simulator
    enters one of these up to four times per slice), so it touches the
    registry's span stack directly instead of going through
    :meth:`MetricsRegistry.span` — every layer of dispatch here is paid
    hundreds of times per run against a <=5% overhead budget.  Reuse is
    safe for non-reentrant regions (a phase never nests inside itself).
    """

    __slots__ = ("_registry", "_series", "_name", "_record")

    def __init__(
        self, registry: "MetricsRegistry", series: BoundHistogram, name: str
    ) -> None:
        self._registry = registry
        self._series = series
        self._name = name

    def __enter__(self) -> SpanRecord:
        registry = self._registry
        record = SpanRecord(self._name, registry._clock())
        stack = registry._span_stack
        if stack:
            stack[-1].children.append(record)
        else:
            registry._span_roots.append(record)
        stack.append(record)
        self._record = record
        return record

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        registry = self._registry
        record = self._record
        record.end = registry._clock()
        # Same unwinding contract as _close_span: pop through to the
        # record so exception paths never wedge the stack.
        stack = registry._span_stack
        while stack:
            if stack.pop() is record:
                break
        if exc_type is None:
            self._series.observe(record.end - record.start)
        else:
            record.error = True
        return False


class _NullInstrument:
    """Accepts the whole instrument surface and does nothing."""

    __slots__ = ()

    def labels(self, **labels: Any) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1, **labels: Any) -> None:
        pass

    def dec(self, amount: float = 1, **labels: Any) -> None:
        pass

    def set(self, value: float, **labels: Any) -> None:
        pass

    def observe(self, value: float, **labels: Any) -> None:
        pass

    def value(self, **labels: Any) -> float:
        return 0

    def count(self, **labels: Any) -> int:
        return 0

    def sum(self, **labels: Any) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """The disabled registry: every hook is a shared no-op singleton.

    ``enabled`` is False so hot paths can skip even the cheap work of
    computing a label value or reading the clock.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(clock=lambda: 0.0)

    def now(self) -> float:
        return 0.0

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()):
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()):
        return _NULL_INSTRUMENT

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ):
        return _NULL_INSTRUMENT

    def span(self, name: str) -> NullSpanContext:
        return NULL_SPAN

    def snapshot(self) -> Dict[str, Any]:
        return {"metrics": [], "spans": []}


# ----------------------------------------------------------------------
# The process-global registry (no-op unless somebody installs one)
# ----------------------------------------------------------------------

_REGISTRY: MetricsRegistry = NullRegistry()


def get_registry() -> MetricsRegistry:
    """The current process-global registry (a no-op one by default)."""
    return _REGISTRY


def set_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` globally (None restores the no-op default);
    returns the previously installed registry so callers can restore it."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry if registry is not None else NullRegistry()
    return previous


@contextmanager
def use_registry(registry: Optional[MetricsRegistry]) -> Iterator[MetricsRegistry]:
    """Scoped :func:`set_registry`: restores the previous registry on exit."""
    previous = set_registry(registry)
    try:
        yield get_registry()
    finally:
        set_registry(previous)
