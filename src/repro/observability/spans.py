"""Wall-clock span trees: nested, exact (monotonic-clock) timings.

A span measures one named region of execution; spans opened while
another is active become its children, so one run yields a tree showing
where the time went — e.g. ``run`` → per-slice ``offer`` / ``claim`` /
``expire`` / ``recover`` phases.  Durations come from the owning
registry's monotonic clock and never feed back into simulation state:
they are measurements *about* the run, not part of it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class SpanRecord:
    """One completed (or still-open) timed region.

    A ``__slots__`` class rather than a dataclass: one is allocated per
    phase per slice, inside the <=5% instrumentation budget (E19).
    """

    __slots__ = ("name", "start", "end", "error", "children")

    def __init__(
        self,
        name: str,
        start: float,
        end: Optional[float] = None,
        error: bool = False,
        children: Optional[List["SpanRecord"]] = None,
    ) -> None:
        self.name = name
        self.start = start
        self.end = end
        #: the region exited via an exception (recorded, then re-raised)
        self.error = error
        self.children: List["SpanRecord"] = (
            [] if children is None else children
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanRecord(name={self.name!r}, start={self.start!r}, "
            f"end={self.end!r}, error={self.error!r}, "
            f"children={len(self.children)})"
        )

    @property
    def duration(self) -> float:
        """Seconds between start and end (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form, recursively including children."""
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "error": self.error,
            "children": [child.to_dict() for child in self.children],
        }


class SpanContext:
    """Context manager binding a :class:`SpanRecord` to a registry's
    span stack.  Exceptions unwind the stack exactly like normal exits —
    the span is closed, flagged ``error``, and the exception propagates."""

    __slots__ = ("_registry", "_name", "_record")

    def __init__(self, registry, name: str) -> None:
        self._registry = registry
        self._name = name
        self._record: Optional[SpanRecord] = None

    def __enter__(self) -> SpanRecord:
        self._record = self._registry._open_span(self._name)
        return self._record

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        assert self._record is not None
        self._registry._close_span(self._record, error=exc_type is not None)
        return False  # never swallow the exception


class NullSpanContext:
    """The no-op span: reusable singleton, no clock reads, no records."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *_exc) -> bool:
        return False


NULL_SPAN = NullSpanContext()
