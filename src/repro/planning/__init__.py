"""Choosing between courses of action (paper Section VI outlook)."""

from repro.planning.alternatives import (
    PlanOutcome,
    best_location,
    choose_plan,
    evaluate_plans,
    migration_plans,
)

__all__ = [
    "PlanOutcome",
    "best_location",
    "choose_plan",
    "evaluate_plans",
    "migration_plans",
]
