"""Choosing between courses of action (paper Sections I and VI).

The paper motivates ROTA as letting computations "avoid attempting
infeasible pursuits" and closes with the migration question: "an actor
could continue to execute at its current location or migrate elsewhere,
carry out part of its computation, and then return and resume.  Comparing
these choices presents some interesting challenges."

This module turns that comparison into an API:

* :func:`evaluate_plans` — score a set of named alternatives (each a
  requirement) against one resource picture: feasible?, predicted finish,
  slack, total demand;
* :func:`choose_plan` — pick the best feasible one under a pluggable
  objective (earliest finish by default);
* :func:`migration_plans` — generate the stay/migrate/round-trip variants
  of an actor's work across candidate locations, using the cost model to
  price the moves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Optional, Sequence

from repro.computation.actions import Action, Evaluate, Migrate
from repro.computation.actor import Actor, ActorComputation
from repro.computation.cost_model import CostModel, DEFAULT_COST_MODEL, Placement
from repro.computation.requirements import ComplexRequirement
from repro.decision.schedule import Schedule
from repro.decision.sequential import find_schedule
from repro.errors import InvalidComputationError
from repro.intervals.interval import Interval, Time
from repro.resources.located_type import Node
from repro.resources.resource_set import ResourceSet


@dataclass(frozen=True)
class PlanOutcome:
    """One alternative, evaluated."""

    name: str
    requirement: ComplexRequirement
    feasible: bool
    schedule: Optional[Schedule] = None

    @property
    def finish_time(self) -> Optional[Time]:
        return self.schedule.finish_time if self.schedule else None

    @property
    def slack(self) -> Optional[Time]:
        return self.schedule.slack if self.schedule else None

    @property
    def total_demand(self) -> Time:
        return self.requirement.total_demands.total


def evaluate_plans(
    available: ResourceSet,
    alternatives: Mapping[str, ComplexRequirement],
    *,
    align: Optional[Time] = None,
) -> tuple[PlanOutcome, ...]:
    """Evaluate every alternative against the same resource picture."""
    outcomes = []
    for name, requirement in alternatives.items():
        schedule = find_schedule(available, requirement, align=align)
        outcomes.append(
            PlanOutcome(name, requirement, schedule is not None, schedule)
        )
    return tuple(outcomes)


def choose_plan(
    available: ResourceSet,
    alternatives: Mapping[str, ComplexRequirement],
    *,
    objective: Callable[[PlanOutcome], float] | None = None,
    align: Optional[Time] = None,
) -> Optional[PlanOutcome]:
    """The best feasible alternative (earliest finish by default), or
    None when every pursuit is infeasible — the case the paper says a
    computation should detect *before* attempting it."""
    outcomes = evaluate_plans(available, alternatives, align=align)
    feasible = [o for o in outcomes if o.feasible]
    if not feasible:
        return None
    if objective is None:
        objective = lambda o: o.finish_time  # noqa: E731 - tiny default
    return min(feasible, key=objective)


# ----------------------------------------------------------------------
# Migration alternatives
# ----------------------------------------------------------------------

def migration_plans(
    actor: Actor,
    work: Sequence[Action],
    candidates: Iterable[Node],
    window: Interval,
    *,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    placement: Placement | None = None,
    round_trip: bool = False,
    migration_size: float = 1,
) -> dict[str, ComplexRequirement]:
    """Stay/migrate variants of the same logical work.

    * ``stay`` — run ``work`` at the actor's home;
    * ``via-<node>`` — migrate to each candidate, run the work there (and
      migrate back first-class when ``round_trip``), per the paper's
      "carry out part of its computation, and then return and resume".
    """
    if window.is_empty:
        raise InvalidComputationError("planning window must be non-empty")
    placement = placement or Placement({actor.name: actor.home})
    plans: dict[str, ComplexRequirement] = {}

    def requirement_for(name: str, behaviour: Sequence[Action]) -> ComplexRequirement:
        variant = Actor(actor.name, actor.home, tuple(behaviour))
        gamma = ActorComputation.derive(variant, placement.copy(), cost_model)
        return ComplexRequirement(
            (phase.demands for phase in gamma.phases), window, label=name
        )

    plans["stay"] = requirement_for("stay", tuple(work))
    for node in candidates:
        if node == actor.home:
            continue
        behaviour: list[Action] = [Migrate(node, size=migration_size), *work]
        if round_trip:
            behaviour.append(Migrate(actor.home, size=migration_size))
        plans[f"via-{node.name}"] = requirement_for(f"via-{node.name}", behaviour)
    return plans


def best_location(
    actor: Actor,
    work: Sequence[Action],
    candidates: Iterable[Node],
    available: ResourceSet,
    window: Interval,
    *,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    round_trip: bool = False,
) -> Optional[PlanOutcome]:
    """One-call form: generate the alternatives and choose."""
    plans = migration_plans(
        actor, work, candidates, window,
        cost_model=cost_model, round_trip=round_trip,
    )
    return choose_plan(available, plans)
