"""ROTA: a resource-oriented temporal logic for deadline assurance.

Reproduction of *"Temporal Reasoning about Resources for Deadline
Assurance in Distributed Systems"* (Zhao & Jamali, ICDCS 2010).

The library answers the paper's motivating question — *"Can we know at
time T whether a distributed multi-agent computation A can complete its
execution by deadline D?"* — with executable machinery:

* :mod:`repro.intervals` — Allen Interval Algebra over time intervals.
* :mod:`repro.resources` — resource terms ``[r]_{xi}^{tau}`` and sets.
* :mod:`repro.computation` — actors, the cost function ``Phi``, and the
  requirement levels ``rho(gamma/Gamma/Lambda, s, d)``.
* :mod:`repro.logic` — states, transition rules, formulas, paths, and the
  satisfaction relation (the logic itself).
* :mod:`repro.decision` — decision procedures for Theorems 1-4.
* :mod:`repro.system` — an open-system discrete-event simulator.
* :mod:`repro.baselines` — related-work admission policies for comparison.
* :mod:`repro.workloads` / :mod:`repro.analysis` — synthetic evaluation.

Quickstart::

    from repro import (
        AdmissionController, ComplexRequirement, Demands, Interval,
        ResourceSet, cpu, term,
    )

    cluster = ResourceSet.of(term(5, cpu("l1"), 0, 10))
    job = ComplexRequirement([Demands({cpu("l1"): 30})], Interval(0, 8),
                             label="job")
    controller = AdmissionController(cluster)
    decision = controller.admit(job)
    assert decision.admitted   # 30 units fit within (0, 8) at rate 5
"""

from repro.computation import (
    Actor,
    ActorComputation,
    ComplexRequirement,
    Computation,
    ConcurrentRequirement,
    Create,
    DEFAULT_COST_MODEL,
    Demands,
    Evaluate,
    Migrate,
    Placement,
    Ready,
    Send,
    SimpleRequirement,
    StandardCostModel,
    concurrent,
    sequential,
)
from repro.decision import (
    AdmissionController,
    AdmissionDecision,
    ConcurrentSchedule,
    Schedule,
    find_concurrent_schedule,
    find_schedule,
)
from repro.intervals import Interval, IntervalSet, Relation, relate
from repro.logic import (
    ComputationPath,
    RotaModel,
    SystemState,
    always,
    eventually,
    models,
    satisfy,
)
from repro.resources import (
    Link,
    LocatedType,
    Node,
    RateProfile,
    ResourceSet,
    ResourceTerm,
    cpu,
    located,
    memory,
    network,
    resources,
    term,
)

__version__ = "1.0.0"

__all__ = [
    # computation
    "Actor",
    "ActorComputation",
    "ComplexRequirement",
    "Computation",
    "ConcurrentRequirement",
    "Create",
    "DEFAULT_COST_MODEL",
    "Demands",
    "Evaluate",
    "Migrate",
    "Placement",
    "Ready",
    "Send",
    "SimpleRequirement",
    "StandardCostModel",
    "concurrent",
    "sequential",
    # decision
    "AdmissionController",
    "AdmissionDecision",
    "ConcurrentSchedule",
    "Schedule",
    "find_concurrent_schedule",
    "find_schedule",
    # intervals
    "Interval",
    "IntervalSet",
    "Relation",
    "relate",
    # logic
    "ComputationPath",
    "RotaModel",
    "SystemState",
    "always",
    "eventually",
    "models",
    "satisfy",
    # resources
    "Link",
    "LocatedType",
    "Node",
    "RateProfile",
    "ResourceSet",
    "ResourceTerm",
    "cpu",
    "located",
    "memory",
    "network",
    "resources",
    "term",
    "__version__",
]
