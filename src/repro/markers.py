"""Runtime markers the static analyses key on.

:func:`checkpointable` declares that a class carries run state which the
durability subsystem snapshots and restores.  The decorator is inert at
runtime (it only stamps ``__checkpointable__``), but it is a *contract*
the whole-program flow analysis enforces: every attribute the class ever
assigns on ``self`` must be captured by one of its snapshot methods
(``state_snapshot`` / ``network_snapshot`` / ``__getstate__``) or be
explicitly annotated derivable::

    self._cache = {}  # repro-flow: derivable=_cache -- rebuilt lazily on first read

``repro-lint flow`` (see :mod:`repro.analysis.flow`) fails the build on
any attribute that is neither — the machine-checked form of PR 9's
"the network section is the single authority" invariant.

The module sits in the kernel layer (alongside :mod:`repro.errors`) so
any package may mark its classes without bending an import edge.
"""

from __future__ import annotations

from typing import Type, TypeVar

_T = TypeVar("_T")


def checkpointable(cls: Type[_T]) -> Type[_T]:
    """Mark ``cls`` as snapshot-bearing; enforced by ``repro-lint flow``."""
    cls.__checkpointable__ = True  # type: ignore[attr-defined]
    return cls


def is_checkpointable(cls: type) -> bool:
    """Whether ``cls`` (not an ancestor) was marked :func:`checkpointable`."""
    return bool(cls.__dict__.get("__checkpointable__", False))
