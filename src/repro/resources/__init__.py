"""Resource representation substrate (paper Section III).

Located types, resource terms ``[r]_{xi}^{tau}``, canonical rate profiles,
and resource sets with the paper's union/simplification and partial
relative-complement operations.
"""

from repro.resources.located_type import (
    Link,
    LocatedType,
    Location,
    Node,
    cpu,
    located,
    memory,
    network,
)
from repro.resources.profile import (
    EPSILON,
    RateProfile,
    is_exact,
    profile_from_points,
)
from repro.resources.resource_set import ResourceSet, resources
from repro.resources.term import ResourceTerm, term

__all__ = [
    "Link",
    "LocatedType",
    "Location",
    "Node",
    "cpu",
    "located",
    "memory",
    "network",
    "EPSILON",
    "RateProfile",
    "is_exact",
    "profile_from_points",
    "ResourceSet",
    "resources",
    "ResourceTerm",
    "term",
]
