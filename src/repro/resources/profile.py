"""Piecewise-constant rate profiles.

A resource term ``[r]_{xi}^{tau}`` contributes rate ``r`` of located type
``xi`` throughout interval ``tau``.  Aggregating every term of one located
type (the paper's *simplification* of resource sets) yields a
piecewise-constant step function of time: the **rate profile**.

:class:`RateProfile` is the canonical simplified form.  All resource-set
operations reduce to profile operations:

* union of terms              -> pointwise addition,
* relative complement         -> pointwise subtraction (partial: defined
                                 only when it never goes negative),
* the paper's ``U_s^d Theta`` -> restriction to a window,
* quantity over an interval   -> integration.

Profiles keep exact arithmetic when fed ints/Fractions; float inputs are
handled with a small tolerance on the non-negativity check.

Representation: a sorted tuple of ``(time, rate)`` breakpoints.  The rate
of the profile is 0 before the first breakpoint; each breakpoint's rate
holds from its time up to the next breakpoint's time; the final
breakpoint's rate holds forever (so a profile with finite support ends
with a rate-0 breakpoint).

Every decision procedure (Theorem 4 admission, schedule search, the
Figure 1 model checker) bottoms out here, so the point and window queries
are the system's hot path.  They run against a lazily-built index — the
breakpoint times plus a cumulative-integral array — giving ``O(log n)``
``rate_at``/``integral`` lookups and ``O(n + m)`` two-pointer merges for
the binary algebra, instead of the naive linear/quadratic scans.  The
naive implementations are retained below as ``_reference_*`` oracles;
``tests/test_profile_fastpath.py`` asserts exact agreement over
exhaustive small-integer enumerations, and ``benchmarks/
bench_profile_ops.py`` tracks the speedup.

Two arithmetic regimes share that surface.  **Exact** profiles (every
coordinate int/Fraction) stay on the scalar fast path above — the
correctness oracle chain (`_reference_*` -> scalar fast path) is never
perturbed by vectorization.  **Inexact** profiles (``is_exact()`` false
for some coordinate) batch onto numpy float64 vectors in
:mod:`repro.resources._vectorized` whenever every coordinate is
losslessly float64-representable; the kernels reproduce the scalar
float path's IEEE-754 operation order bit-for-bit (differentially
fuzzed in ``tests/test_profile_differential.py``).  One visible
canonicalization: vec-built profiles carry float coordinates, so an
int that rode along in an inexact profile comes back as the equal
float (``2 -> 2.0``).
"""

from __future__ import annotations

import itertools
import math
from bisect import bisect_left, bisect_right
from numbers import Rational
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import InvalidTermError, UndefinedOperationError
from repro.intervals.interval import Interval, Time
from repro.intervals.intervalset import IntervalSet
from repro.resources import _vectorized as _vec

#: Tolerance used when float arithmetic is involved.  Exact numeric types
#: (int, Fraction) never need it.
EPSILON = 1e-9  # repro-lint: disable=float-literal -- the sanctioned float-tolerance boundary itself (see is_exact below)


def is_exact(value: object) -> bool:
    """Whether ``value`` is an exact numeric type (``int``/``Fraction``).

    Exact quantities compare exactly: applying the float ``EPSILON`` to
    them can misclassify a genuinely positive residue as zero.  Tolerance
    belongs only where a float has entered the computation.
    """
    return isinstance(value, Rational)


def exact_div(numerator: Time, denominator: Time) -> Time:
    """Division that stays exact for integer operands.

    Decision procedures compare their answers against brute-force oracles;
    exact arithmetic avoids spurious float disagreements.  Integer results
    are returned as ints, non-integer ratios of ints as Fractions.
    """
    if isinstance(numerator, int) and isinstance(denominator, int):
        from fractions import Fraction

        ratio = Fraction(numerator, denominator)
        return int(ratio) if ratio.denominator == 1 else ratio
    return numerator / denominator


def _normalise(points: Iterable[Tuple[Time, Time]]) -> tuple[Tuple[Time, Time], ...]:
    """Sort breakpoints, drop repeats at equal times (last wins), and merge
    consecutive breakpoints with equal rates."""
    ordered = sorted(points, key=lambda p: p[0])
    collapsed: list[Tuple[Time, Time]] = []
    for time, rate in ordered:
        if collapsed and collapsed[-1][0] == time:
            collapsed[-1] = (time, rate)
        else:
            collapsed.append((time, rate))
    merged: list[Tuple[Time, Time]] = []
    for time, rate in collapsed:
        if merged and merged[-1][1] == rate:
            continue
        merged.append((time, rate))
    if merged and merged[0][1] == 0:
        # A leading zero-rate breakpoint is redundant: the profile is zero
        # before the first breakpoint anyway.  Consecutive equal rates were
        # merged above, so at most one leading zero can exist.
        merged.pop(0)
    return tuple(merged)


class RateProfile:
    """An immutable, piecewise-constant, non-negative function of time."""

    __slots__ = (
        "_pts", "_times", "_cum", "_exact", "_vt", "_vr", "_vok", "_rl"
    )

    def __init__(self, points: Iterable[Tuple[Time, Time]] = ()) -> None:
        pts = _normalise(points)
        for time, rate in pts:
            if isinstance(rate, float) and math.isnan(rate):
                raise InvalidTermError("profile rate must not be NaN")
            if rate < 0:
                raise InvalidTermError(f"profile rate must be >= 0, got {rate!r} at t={time!r}")
        self._pts: Optional[tuple] = pts
        self._times: Optional[list] = None
        self._cum: Optional[list] = None
        self._exact: Optional[bool] = None
        self._vt = None
        self._vr = None
        self._vok: Optional[bool] = None
        self._rl: Optional[list] = None

    @property
    def _points(self) -> tuple[Tuple[Time, Time], ...]:
        """Canonical breakpoint tuples.

        Vec-built profiles carry their breakpoints as float64 arrays and
        materialize the tuples only when something actually needs them
        (equality, pickling, the scalar fallbacks): the hot admission
        chains — subtract, cap, integral, accumulation walks — stay on
        the arrays end to end."""
        pts = self._pts
        if pts is None:
            pts = tuple(zip(self._vt.tolist(), self._vr.tolist()))
            self._pts = pts
        return pts

    def _rates(self) -> list:
        """Rates by breakpoint position, built lazily (vec-built
        profiles read straight off the rate array)."""
        rl = self._rl
        if rl is None:
            if self._pts is None:
                rl = self._vr.tolist()
            else:
                rl = [r for _, r in self._pts]
            self._rl = rl
        return rl

    def _ensure_index(self) -> None:
        """Build the lookup index on first use: breakpoint times for
        bisection, the cumulative integral up to each breakpoint, and
        whether every coordinate is exact (so cumulative differences are
        drift-free)."""
        if self._times is not None:
            return
        if self._pts is None:
            # Vec-built: inexact by construction, times off the array;
            # the cumulative array stays unbuilt (exact path only).
            self._times = self._vt.tolist()
            self._exact = False
            return
        pts = self._pts
        times = [t for t, _ in pts]
        cum: list = [0] * len(pts)
        exact = True
        for i in range(1, len(pts)):
            t_prev, r_prev = pts[i - 1]
            cum[i] = cum[i - 1] + r_prev * (times[i] - t_prev)
        for t, r in pts:
            if not (is_exact(t) and is_exact(r)):
                exact = False
                break
        self._times = times
        self._cum = cum
        self._exact = exact

    def _vector_index(self):
        """Float64 ``(times, rates)`` arrays for the vectorized kernels,
        or ``None`` when the profile is not losslessly representable
        (Fraction coordinates, huge ints) or numpy is unavailable."""
        if self._vok is None:
            if _vec.HAVE_NUMPY and _vec.points_safe(self._points):
                self._vt, self._vr = _vec.arrays_from_points(self._points)
                self._vok = True
            else:
                self._vok = False
        return (self._vt, self._vr) if self._vok else None

    def _vector_pair(self, other: "RateProfile"):
        """Operand arrays for a vectorized binary op, or ``None`` when
        the op must stay scalar.  Vectorization is auto-selected only
        when the operation is inexact — both operands exact means the
        scalar fast path (the reference-pinned oracle chain) answers."""
        if self._exact is None:
            self._ensure_index()
        if other._exact is None:
            other._ensure_index()
        if self._exact and other._exact:
            return None
        va = self._vector_index()
        if va is None:
            return None
        vb = other._vector_index()
        if vb is None:
            return None
        return va, vb

    @classmethod
    def _from_float_arrays(cls, times, rates) -> "RateProfile":
        """Adopt normalised float64 arrays as a profile.

        Vec-kernel results only: the arrays are already sorted, unique
        in time, rate-merged, and validated, so construction skips
        ``_normalise`` and pre-seeds both the scalar index and the
        vector index."""
        if len(times) == 0:
            return _ZERO
        profile = cls.__new__(cls)
        profile._pts = None  # materialized on demand from the arrays
        profile._times = None
        profile._cum = None  # only consulted on the exact path
        profile._exact = False
        profile._vt = times
        profile._vr = rates
        profile._vok = True
        profile._rl = None
        return profile

    def __reduce__(self):
        # Serialize the canonical breakpoints only: the lazy scalar and
        # vector indexes are caches, rebuilt on demand after unpickling
        # (keeps checkpoint payloads small and independent of which
        # queries happened to run before the snapshot).
        return (RateProfile, (self._points,))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, rate: Time, window: Interval) -> "RateProfile":
        """Rate ``rate`` throughout ``window``, zero elsewhere."""
        if window.is_empty or rate == 0:
            return _ZERO
        if math.isinf(window.end):
            return cls(((window.start, rate),))
        return cls(((window.start, rate), (window.end, 0)))

    @classmethod
    def from_segments(cls, segments: Iterable[Tuple[Interval, Time]]) -> "RateProfile":
        """Sum of constant segments (overlaps add, as in simplification).

        Equivalent to folding :meth:`constant` profiles through ``+`` but
        built by a single breakpoint sweep, so aggregating ``n`` segments
        is ``O(n log n)`` instead of quadratic repeated addition.
        """
        live: list[Tuple[Time, Time, Time]] = []  # (start, end, rate)
        exact = True
        for window, rate in segments:
            if window.is_empty or rate == 0:
                continue
            if rate < 0 or (isinstance(rate, float) and math.isnan(rate)):
                # Match the validation the constant()-fold performed.
                return _reference_from_segments([(window, rate)])
            if not (is_exact(rate) and is_exact(window.start) and is_exact(window.end)):
                exact = False
            live.append((window.start, window.end, rate))
        if not live:
            return _ZERO
        if not exact:
            if _vec.HAVE_NUMPY and all(
                _vec.coordinate_safe(start)
                and _vec.coordinate_safe(end)
                and _vec.coordinate_safe(rate)
                for start, end, rate in live
            ):
                return cls._from_float_arrays(*_vec.from_segments(live))
            # Float rates: per-breakpoint left-fold keeps bit-identical
            # results with the repeated-addition definition.
            return cls.sum(
                cls.constant(rate, Interval(start, end)) for start, end, rate in live
            )
        events: list[Tuple[Time, Time]] = []
        for start, end, rate in live:
            events.append((start, rate))
            if not math.isinf(end):
                events.append((end, -rate))
        events.sort(key=lambda e: e[0])
        points: list[Tuple[Time, Time]] = []
        level: Time = 0
        index, count = 0, len(events)
        while index < count:
            t = events[index][0]
            while index < count and events[index][0] == t:
                level = level + events[index][1]
                index += 1
            points.append((t, level))
        return cls(points)

    @classmethod
    def sum(cls, profiles: Iterable["RateProfile"]) -> "RateProfile":
        """Pointwise sum of many profiles via one k-way breakpoint merge.

        Equivalent to folding through ``+`` (the per-breakpoint rate sums
        keep the fold's left-to-right association, so float results do not
        drift from the pairwise definition) but visits every breakpoint
        once instead of once per partial sum.
        """
        live = [p for p in profiles if not p.is_zero]
        if not live:
            return _ZERO
        if len(live) == 1:
            return live[0]
        for p in live:
            p._ensure_index()
        if not all(p._exact for p in live):
            arrays = [p._vector_index() for p in live]
            if all(a is not None for a in arrays):
                return cls._from_float_arrays(*_vec.sum_profiles(arrays))
        point_lists = [p._points for p in live]
        times = sorted({t for pts in point_lists for t, _ in pts})
        rates: list[Time] = [0] * len(live)
        cursors = [0] * len(live)
        points: list[Tuple[Time, Time]] = []
        for t in times:
            for k, pts in enumerate(point_lists):
                i = cursors[k]
                while i < len(pts) and pts[i][0] <= t:
                    rates[k] = pts[i][1]
                    i += 1
                cursors[k] = i
            level: Time = 0
            for rate in rates:
                level = level + rate
            points.append((t, level))
        return cls(points)

    @classmethod
    def zero(cls) -> "RateProfile":
        return _ZERO

    # ------------------------------------------------------------------
    # Point and window queries
    # ------------------------------------------------------------------
    @property
    def breakpoints(self) -> tuple[Tuple[Time, Time], ...]:
        """The canonical ``(time, rate)`` breakpoints."""
        return self._points

    @property
    def is_zero(self) -> bool:
        pts = self._pts
        if pts is None:
            return False  # vec-built profiles are never empty
        return not pts

    def rate_at(self, t: Time) -> Time:
        """The rate in effect at time ``t`` (``O(log n)``)."""
        if self.is_zero:
            return 0
        self._ensure_index()
        i = bisect_right(self._times, t) - 1
        return self._rates()[i] if i >= 0 else 0

    def rates_at(self, ts: Sequence[Time]) -> List[Time]:
        """Batch :meth:`rate_at`: the rate in effect at each query time.

        One vectorized bisection over all queries when both the profile
        and the query times are float64-safe; the results are the stored
        rate objects either way, identical to mapping :meth:`rate_at`.
        """
        if self.is_zero:
            return [0] * len(ts)
        if _vec.HAVE_NUMPY and all(_vec.coordinate_safe(t) for t in ts):
            va = self._vector_index()
            if va is not None:
                rates = self._rates()
                return [
                    rates[i] if i >= 0 else 0
                    for i in _vec.rate_indices(va, ts).tolist()
                ]
        return [self.rate_at(t) for t in ts]

    def segments(self) -> Iterator[Tuple[Interval, Time]]:
        """Maximal constant-rate segments with positive rate.

        A trailing positive rate yields a segment ending at ``math.inf``.
        """
        for (t0, rate), nxt in itertools.zip_longest(
            self._points, self._points[1:], fillvalue=None
        ):
            if rate == 0:
                continue
            end = nxt[0] if nxt is not None else math.inf
            yield Interval(t0, end), rate

    @property
    def support(self) -> IntervalSet:
        """Where the rate is positive."""
        return IntervalSet(window for window, _ in self.segments())

    @property
    def horizon(self) -> Time:
        """Last breakpoint time (0 for the zero profile).  Past the
        horizon the rate is constant (usually zero)."""
        pts = self._pts
        if pts is not None:
            return pts[-1][0] if pts else 0
        return self._vt[-1].item()  # vec-built: never empty

    @property
    def peak_rate(self) -> Time:
        """Maximum rate anywhere."""
        return max((rate for _, rate in self._points), default=0)

    def _cumulative(self, t: Time) -> Time:
        """Integral from before the first breakpoint up to ``t`` (exact
        profiles only; callers guard)."""
        times, cum = self._times, self._cum
        i = bisect_right(times, t) - 1
        if i < 0:
            return 0
        rate = self._rates()[i]
        if rate == 0 or times[i] == t:
            return cum[i]
        return cum[i] + rate * (t - times[i])

    def integral(self, window: Interval) -> Time:
        """Total quantity available during ``window``:
        the paper's ``r x tau`` generalised to step functions.

        Exact profiles answer in ``O(log n)`` from the cumulative-integral
        array; float profiles fall back to a bisected segment scan that
        reproduces the reference summation order bit-for-bit.
        """
        if window.is_empty or self.is_zero:
            return 0
        self._ensure_index()
        start, end = window.start, window.end
        if self._exact and is_exact(start) and is_exact(end):
            return self._cumulative(end) - self._cumulative(start)
        if _vec.coordinate_safe(start) and _vec.coordinate_safe(end):
            va = self._vector_index()
            if va is not None:
                return _vec.integral(va, start, end)
        times = self._times
        rates = self._rates()
        lo = bisect_right(times, start) - 1
        if lo < 0:
            lo = 0
        hi = bisect_left(times, end)
        total: Time = 0
        for i in range(lo, hi):
            rate = rates[i]
            if rate == 0:
                continue
            seg_start = times[i]
            seg_end = times[i + 1] if i + 1 < len(times) else math.inf
            # Tie-break like ``max``/``min`` (first operand wins) so a
            # breakpoint coinciding with a window edge under a different
            # numeric type (``1`` vs ``1.0`` vs ``Fraction(1)``) picks
            # the same operand — and hence the same rounding — as the
            # reference oracle's ``segment.intersection(window)``.
            s = seg_start if seg_start >= start else start
            e = seg_end if seg_end <= end else end
            if e > s:
                total += rate * (e - s)
        return total

    def min_rate(self, window: Interval) -> Time:
        """Minimum rate over a non-empty window (0 if any gap)."""
        if window.is_empty:
            raise UndefinedOperationError("min_rate over an empty window")
        if self.is_zero:
            return 0
        self._ensure_index()
        times = self._times
        start, end = window.start, window.end
        if start < times[0]:
            return 0
        lo = bisect_right(times, start) - 1
        hi = bisect_left(times, end)
        rates = self._rates()
        return min(rates[i] for i in range(lo, hi))

    def earliest_accumulation(self, start: Time, quantity: Time) -> Optional[Time]:
        """The earliest ``t >= start`` with ``integral((start, t)) >= quantity``.

        Returns ``None`` when the quantity can never be accumulated.  This
        is the primitive behind the greedy breakpoint search of Theorem 2.
        Bisects to the first segment past ``start`` and walks from there,
        so the cost is ``O(log n + k)`` for ``k`` segments actually drawn
        on (the reference walked every segment from the origin).
        """
        if quantity <= 0:
            return start
        if self.is_zero:
            return None
        self._ensure_index()
        times = self._times
        rates = self._rates()
        remaining = quantity
        lo = bisect_right(times, start) - 1
        if lo < 0:
            lo = 0
        for i in range(lo, len(rates)):
            rate = rates[i]
            if rate == 0:
                continue
            seg_start = times[i]
            seg_end = times[i + 1] if i + 1 < len(times) else math.inf
            if seg_end <= start:
                continue
            effective_start = max(start, seg_start)
            capacity = rate * (seg_end - effective_start)
            if capacity >= remaining:
                return effective_start + exact_div(remaining, rate)
            remaining -= capacity
        return None

    def latest_accumulation(self, end: Time, quantity: Time) -> Optional[Time]:
        """The latest ``t <= end`` with ``integral((t, end)) >= quantity``.

        The time-reversed dual of :meth:`earliest_accumulation`; the
        primitive behind as-late-as-possible (ALAP) scheduling.  Returns
        ``None`` when the quantity cannot be accumulated before ``end``.
        """
        if quantity <= 0:
            return end
        if self.is_zero:
            return None
        self._ensure_index()
        times = self._times
        rates = self._rates()
        remaining = quantity
        hi = bisect_left(times, end)  # segments hi.. start at or after end
        for i in range(hi - 1, -1, -1):
            rate = rates[i]
            if rate == 0:
                continue
            seg_start = times[i]
            seg_end = times[i + 1] if i + 1 < len(times) else math.inf
            effective_end = min(end, seg_end)
            capacity = rate * (effective_end - seg_start)
            if capacity >= remaining:
                return effective_end - exact_div(remaining, rate)
            remaining -= capacity
        return None

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def _merged_rates(
        self, other: "RateProfile"
    ) -> Iterator[Tuple[Time, Time, Time]]:
        """Two-pointer merge over both breakpoint lists: yields
        ``(time, self_rate, other_rate)`` at every breakpoint of either
        profile, in time order — ``O(n + m)`` where the naive
        rate_at-per-breaktime evaluation was quadratic."""
        a, b = self._points, other._points
        i = j = 0
        ra: Time = 0
        rb: Time = 0
        while i < len(a) or j < len(b):
            if j >= len(b) or (i < len(a) and a[i][0] <= b[j][0]):
                t = a[i][0]
            else:
                t = b[j][0]
            if i < len(a) and a[i][0] == t:
                ra = a[i][1]
                i += 1
            if j < len(b) and b[j][0] == t:
                rb = b[j][1]
                j += 1
            yield t, ra, rb

    def __add__(self, other: "RateProfile") -> "RateProfile":
        if self.is_zero:
            return other
        if other.is_zero:
            return self
        pair = self._vector_pair(other)
        if pair is not None:
            return RateProfile._from_float_arrays(*_vec.add(*pair))
        return RateProfile(
            (t, ra + rb) for t, ra, rb in self._merged_rates(other)
        )

    def subtract(self, other: "RateProfile", *, tolerance: float = EPSILON) -> "RateProfile":
        """Pointwise subtraction; raises when the result would go negative.

        Mirrors the paper's rule that resource terms cannot be negative:
        the relative complement is a *partial* operation.  ``tolerance``
        absorbs float dust only: an exact negative value, however small,
        is a genuine domain violation and always raises.
        """
        if other.is_zero:
            return self
        # Vectorize only under a sub-unit tolerance: integer-valued
        # differences are exact for the scalar path (they raise however
        # small), and any |diff| >= 1 also exceeds a sub-unit tolerance,
        # so the float64 kernel cannot mistake one for snappable dust.
        pair = self._vector_pair(other) if tolerance < 1 else None
        if pair is not None:
            result = _vec.subtract(*pair, tolerance)
            if result[0] == "negative":
                _, t, ra, rb = result
                raise UndefinedOperationError(
                    f"subtraction would make the rate negative at t={t!r} "
                    f"({ra!r} - {rb!r})"
                )
            if result[0] == "nan":
                raise InvalidTermError("profile rate must not be NaN")
            return RateProfile._from_float_arrays(result[1], result[2])
        points: list[Tuple[Time, Time]] = []
        for t, ra, rb in self._merged_rates(other):
            value = ra - rb
            if value < 0:
                if not is_exact(value) and -value <= tolerance:
                    value = 0
                else:
                    raise UndefinedOperationError(
                        f"subtraction would make the rate negative at t={t!r} "
                        f"({ra!r} - {rb!r})"
                    )
            points.append((t, value))
        return RateProfile(points)

    def __sub__(self, other: "RateProfile") -> "RateProfile":
        return self.subtract(other)

    def saturating_sub(self, other: "RateProfile") -> "RateProfile":
        """Pointwise ``max(0, self - other)``.

        Unlike :meth:`subtract` this is total: where ``other`` exceeds
        ``self`` the result is clamped at zero.  Used for *revocation* —
        capacity vanishing regardless of what was promised against it —
        not for the paper's (partial) relative complement.
        """
        if other.is_zero:
            return self
        pair = self._vector_pair(other)
        if pair is not None:
            return RateProfile._from_float_arrays(*_vec.saturating_sub(*pair))
        return RateProfile(
            (t, max(0, ra - rb)) for t, ra, rb in self._merged_rates(other)
        )

    def scale(self, factor: Time) -> "RateProfile":
        """The profile with every rate multiplied by ``factor >= 0``."""
        if factor < 0:
            raise InvalidTermError("scale factor must be >= 0")
        if factor == 0:
            return _ZERO
        return RateProfile((t, rate * factor) for t, rate in self._points)

    def clamp(self, window: Interval) -> "RateProfile":
        """The profile restricted to ``window`` (zero outside): the paper's
        ``U_s^d`` applied to one located type."""
        if window.is_empty or self.is_zero:
            return _ZERO
        self._ensure_index()
        times = self._times
        points: list[Tuple[Time, Time]] = [(window.start, self.rate_at(window.start))]
        lo = bisect_right(times, window.start)
        hi = bisect_left(times, window.end)
        points.extend(self._points[lo:hi])
        if not math.isinf(window.end):
            points.append((window.end, 0))
        return RateProfile(points)

    def shift(self, delta: Time) -> "RateProfile":
        """The profile translated in time by ``delta``."""
        return RateProfile((t + delta, rate) for t, rate in self._points)

    def cap(self, ceiling: "RateProfile") -> "RateProfile":
        """Pointwise minimum with another profile."""
        if self.is_zero or ceiling.is_zero:
            return _ZERO
        pair = self._vector_pair(ceiling)
        if pair is not None:
            return RateProfile._from_float_arrays(*_vec.cap(*pair))
        return RateProfile(
            (t, min(ra, rb)) for t, ra, rb in self._merged_rates(ceiling)
        )

    def dominates(self, other: "RateProfile") -> bool:
        """Pointwise ``self >= other`` everywhere."""
        if other.is_zero:
            return True
        pair = self._vector_pair(other)
        if pair is not None:
            return _vec.dominates(*pair)
        for _, ra, rb in self._merged_rates(other):
            if ra < rb:
                return False
        return True

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RateProfile):
            return NotImplemented
        return self._points == other._points

    def __hash__(self) -> int:
        return hash(self._points)

    def __bool__(self) -> bool:
        return not self.is_zero

    def __repr__(self) -> str:
        inner = ", ".join(f"({t}, {r})" for t, r in self._points)
        return f"RateProfile([{inner}])"


_ZERO = RateProfile(())


def profile_from_points(points: Sequence[Tuple[Time, Time]]) -> RateProfile:
    """Public helper: build a profile from raw breakpoints."""
    return RateProfile(points)


# ----------------------------------------------------------------------
# Reference oracles.
#
# The pre-optimisation implementations, retained verbatim so differential
# tests and benchmarks can pin the fast paths to them: over exhaustive
# small-integer enumerations the fast result must equal the reference
# result *exactly* (not approximately), so the tier-1 theorem benchmarks
# cannot drift.
# ----------------------------------------------------------------------

def _reference_rate_at(profile: RateProfile, t: Time) -> Time:
    """Linear-scan ``rate_at``."""
    rate: Time = 0
    for time, value in profile.breakpoints:
        if time > t:
            break
        rate = value
    return rate


def _reference_integral(profile: RateProfile, window: Interval) -> Time:
    """Full segment-scan ``integral``."""
    if window.is_empty or profile.is_zero:
        return 0
    total: Time = 0
    for segment, rate in profile.segments():
        common = segment.intersection(window)
        if not common.is_empty:
            total += rate * common.duration
    return total


def _reference_min_rate(profile: RateProfile, window: Interval) -> Time:
    """Full segment-scan ``min_rate`` with explicit coverage accounting.

    Coverage is tracked as a frontier over the (time-ordered, gap-free
    within support) segments rather than by summing durations: a sum of
    mixed float/Fraction durations accrues rounding dust and can declare
    a fully-covered window uncovered (returning a spurious 0).  The
    frontier only *compares* coordinates, which is exact for every
    supported numeric type.
    """
    if window.is_empty:
        raise UndefinedOperationError("min_rate over an empty window")
    lowest: Optional[Time] = None
    frontier = window.start
    for segment, rate in profile.segments():
        common = segment.intersection(window)
        if common.is_empty:
            continue
        if common.start <= frontier and common.end > frontier:
            frontier = common.end
        lowest = rate if lowest is None else min(lowest, rate)
    if lowest is None or frontier < window.end:
        return 0
    return lowest


def _reference_earliest_accumulation(
    profile: RateProfile, start: Time, quantity: Time
) -> Optional[Time]:
    """Origin-anchored segment walk for the earliest accumulation time."""
    if quantity <= 0:
        return start
    remaining = quantity
    for segment, rate in profile.segments():
        if segment.end <= start:
            continue
        effective_start = max(start, segment.start)
        capacity = rate * (segment.end - effective_start)
        if capacity >= remaining:
            return effective_start + exact_div(remaining, rate)
        remaining -= capacity
    return None


def _reference_add(left: RateProfile, right: RateProfile) -> RateProfile:
    """Pointwise addition by rate_at evaluation at merged breaktimes."""
    if left.is_zero:
        return right
    if right.is_zero:
        return left
    times = sorted(
        {t for t, _ in left.breakpoints} | {t for t, _ in right.breakpoints}
    )
    return RateProfile(
        (t, _reference_rate_at(left, t) + _reference_rate_at(right, t))
        for t in times
    )


def _reference_subtract(left: RateProfile, right: RateProfile) -> RateProfile:
    """Pointwise subtraction by rate_at evaluation at merged breaktimes."""
    if right.is_zero:
        return left
    times = sorted(
        {t for t, _ in left.breakpoints} | {t for t, _ in right.breakpoints}
    )
    points: list[Tuple[Time, Time]] = []
    for t in times:
        value = _reference_rate_at(left, t) - _reference_rate_at(right, t)
        if value < 0:
            if not is_exact(value) and -value <= EPSILON:
                value = 0
            else:
                raise UndefinedOperationError(
                    f"subtraction would make the rate negative at t={t!r}"
                )
        points.append((t, value))
    return RateProfile(points)


def _reference_from_segments(
    segments: Iterable[Tuple[Interval, Time]]
) -> RateProfile:
    """Quadratic repeated-addition ``from_segments``."""
    profile = _ZERO
    for window, rate in segments:
        profile = _reference_add(profile, RateProfile.constant(rate, window))
    return profile
