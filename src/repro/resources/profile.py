"""Piecewise-constant rate profiles.

A resource term ``[r]_{xi}^{tau}`` contributes rate ``r`` of located type
``xi`` throughout interval ``tau``.  Aggregating every term of one located
type (the paper's *simplification* of resource sets) yields a
piecewise-constant step function of time: the **rate profile**.

:class:`RateProfile` is the canonical simplified form.  All resource-set
operations reduce to profile operations:

* union of terms              -> pointwise addition,
* relative complement         -> pointwise subtraction (partial: defined
                                 only when it never goes negative),
* the paper's ``U_s^d Theta`` -> restriction to a window,
* quantity over an interval   -> integration.

Profiles keep exact arithmetic when fed ints/Fractions; float inputs are
handled with a small tolerance on the non-negativity check.

Representation: a sorted tuple of ``(time, rate)`` breakpoints.  The rate
of the profile is 0 before the first breakpoint; each breakpoint's rate
holds from its time up to the next breakpoint's time; the final
breakpoint's rate holds forever (so a profile with finite support ends
with a rate-0 breakpoint).
"""

from __future__ import annotations

import itertools
import math
from typing import Iterable, Iterator, Optional, Sequence, Tuple

from repro.errors import InvalidTermError, UndefinedOperationError
from repro.intervals.interval import Interval, Time
from repro.intervals.intervalset import IntervalSet

#: Tolerance used when float arithmetic is involved.  Exact numeric types
#: (int, Fraction) never need it.
EPSILON = 1e-9


def exact_div(numerator: Time, denominator: Time) -> Time:
    """Division that stays exact for integer operands.

    Decision procedures compare their answers against brute-force oracles;
    exact arithmetic avoids spurious float disagreements.  Integer results
    are returned as ints, non-integer ratios of ints as Fractions.
    """
    if isinstance(numerator, int) and isinstance(denominator, int):
        from fractions import Fraction

        ratio = Fraction(numerator, denominator)
        return int(ratio) if ratio.denominator == 1 else ratio
    return numerator / denominator


def _normalise(points: Iterable[Tuple[Time, Time]]) -> tuple[Tuple[Time, Time], ...]:
    """Sort breakpoints, drop repeats at equal times (last wins), and merge
    consecutive breakpoints with equal rates."""
    ordered = sorted(points, key=lambda p: p[0])
    collapsed: list[Tuple[Time, Time]] = []
    for time, rate in ordered:
        if collapsed and collapsed[-1][0] == time:
            collapsed[-1] = (time, rate)
        else:
            collapsed.append((time, rate))
    merged: list[Tuple[Time, Time]] = []
    for time, rate in collapsed:
        if merged and merged[-1][1] == rate:
            continue
        merged.append((time, rate))
    if merged and merged[0][1] == 0:
        # A leading zero-rate breakpoint is redundant: the profile is zero
        # before the first breakpoint anyway.  Consecutive equal rates were
        # merged above, so at most one leading zero can exist.
        merged.pop(0)
    return tuple(merged)


class RateProfile:
    """An immutable, piecewise-constant, non-negative function of time."""

    __slots__ = ("_points",)

    def __init__(self, points: Iterable[Tuple[Time, Time]] = ()) -> None:
        pts = _normalise(points)
        for time, rate in pts:
            if isinstance(rate, float) and math.isnan(rate):
                raise InvalidTermError("profile rate must not be NaN")
            if rate < 0:
                raise InvalidTermError(f"profile rate must be >= 0, got {rate!r} at t={time!r}")
        self._points = pts

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, rate: Time, window: Interval) -> "RateProfile":
        """Rate ``rate`` throughout ``window``, zero elsewhere."""
        if window.is_empty or rate == 0:
            return _ZERO
        if math.isinf(window.end):
            return cls(((window.start, rate),))
        return cls(((window.start, rate), (window.end, 0)))

    @classmethod
    def from_segments(cls, segments: Iterable[Tuple[Interval, Time]]) -> "RateProfile":
        """Sum of constant segments (overlaps add, as in simplification)."""
        profile = _ZERO
        for window, rate in segments:
            profile = profile + cls.constant(rate, window)
        return profile

    @classmethod
    def zero(cls) -> "RateProfile":
        return _ZERO

    # ------------------------------------------------------------------
    # Point and window queries
    # ------------------------------------------------------------------
    @property
    def breakpoints(self) -> tuple[Tuple[Time, Time], ...]:
        """The canonical ``(time, rate)`` breakpoints."""
        return self._points

    @property
    def is_zero(self) -> bool:
        return not self._points

    def rate_at(self, t: Time) -> Time:
        """The rate in effect at time ``t``."""
        rate: Time = 0
        for time, value in self._points:
            if time > t:
                break
            rate = value
        return rate

    def segments(self) -> Iterator[Tuple[Interval, Time]]:
        """Maximal constant-rate segments with positive rate.

        A trailing positive rate yields a segment ending at ``math.inf``.
        """
        for (t0, rate), nxt in itertools.zip_longest(
            self._points, self._points[1:], fillvalue=None
        ):
            if rate == 0:
                continue
            end = nxt[0] if nxt is not None else math.inf
            yield Interval(t0, end), rate

    @property
    def support(self) -> IntervalSet:
        """Where the rate is positive."""
        return IntervalSet(window for window, _ in self.segments())

    @property
    def horizon(self) -> Time:
        """Last breakpoint time (0 for the zero profile).  Past the
        horizon the rate is constant (usually zero)."""
        return self._points[-1][0] if self._points else 0

    @property
    def peak_rate(self) -> Time:
        """Maximum rate anywhere."""
        return max((rate for _, rate in self._points), default=0)

    def integral(self, window: Interval) -> Time:
        """Total quantity available during ``window``:
        the paper's ``r x tau`` generalised to step functions."""
        if window.is_empty or self.is_zero:
            return 0
        total: Time = 0
        for segment, rate in self.segments():
            common = segment.intersection(window)
            if not common.is_empty:
                total += rate * common.duration
        return total

    def min_rate(self, window: Interval) -> Time:
        """Minimum rate over a non-empty window (0 if any gap)."""
        if window.is_empty:
            raise UndefinedOperationError("min_rate over an empty window")
        lowest: Optional[Time] = None
        covered: Time = 0
        for segment, rate in self.segments():
            common = segment.intersection(window)
            if common.is_empty:
                continue
            covered += common.duration
            lowest = rate if lowest is None else min(lowest, rate)
        if lowest is None or covered < window.duration:
            return 0
        return lowest

    def earliest_accumulation(self, start: Time, quantity: Time) -> Optional[Time]:
        """The earliest ``t >= start`` with ``integral((start, t)) >= quantity``.

        Returns ``None`` when the quantity can never be accumulated.  This
        is the primitive behind the greedy breakpoint search of Theorem 2.
        """
        if quantity <= 0:
            return start
        remaining = quantity
        for segment, rate in self.segments():
            if segment.end <= start:
                continue
            effective_start = max(start, segment.start)
            capacity = rate * (segment.end - effective_start)
            if capacity >= remaining:
                return effective_start + exact_div(remaining, rate)
            remaining -= capacity
        return None

    def latest_accumulation(self, end: Time, quantity: Time) -> Optional[Time]:
        """The latest ``t <= end`` with ``integral((t, end)) >= quantity``.

        The time-reversed dual of :meth:`earliest_accumulation`; the
        primitive behind as-late-as-possible (ALAP) scheduling.  Returns
        ``None`` when the quantity cannot be accumulated before ``end``.
        """
        if quantity <= 0:
            return end
        remaining = quantity
        for segment, rate in reversed(list(self.segments())):
            if segment.start >= end:
                continue
            effective_end = min(end, segment.end)
            capacity = rate * (effective_end - segment.start)
            if capacity >= remaining:
                return effective_end - exact_div(remaining, rate)
            remaining -= capacity
        return None

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def _merged_breaktimes(self, other: "RateProfile") -> list[Time]:
        times = sorted({t for t, _ in self._points} | {t for t, _ in other._points})
        return times

    def __add__(self, other: "RateProfile") -> "RateProfile":
        if self.is_zero:
            return other
        if other.is_zero:
            return self
        points = [
            (t, self.rate_at(t) + other.rate_at(t))
            for t in self._merged_breaktimes(other)
        ]
        return RateProfile(points)

    def subtract(self, other: "RateProfile", *, tolerance: float = EPSILON) -> "RateProfile":
        """Pointwise subtraction; raises when the result would go negative.

        Mirrors the paper's rule that resource terms cannot be negative:
        the relative complement is a *partial* operation.
        """
        if other.is_zero:
            return self
        points: list[Tuple[Time, Time]] = []
        for t in self._merged_breaktimes(other):
            value = self.rate_at(t) - other.rate_at(t)
            if value < 0:
                if -value <= tolerance:
                    value = 0
                else:
                    raise UndefinedOperationError(
                        f"subtraction would make the rate negative at t={t!r} "
                        f"({self.rate_at(t)!r} - {other.rate_at(t)!r})"
                    )
            points.append((t, value))
        return RateProfile(points)

    def __sub__(self, other: "RateProfile") -> "RateProfile":
        return self.subtract(other)

    def saturating_sub(self, other: "RateProfile") -> "RateProfile":
        """Pointwise ``max(0, self - other)``.

        Unlike :meth:`subtract` this is total: where ``other`` exceeds
        ``self`` the result is clamped at zero.  Used for *revocation* —
        capacity vanishing regardless of what was promised against it —
        not for the paper's (partial) relative complement.
        """
        if other.is_zero:
            return self
        points = [
            (t, max(0, self.rate_at(t) - other.rate_at(t)))
            for t in self._merged_breaktimes(other)
        ]
        return RateProfile(points)

    def scale(self, factor: Time) -> "RateProfile":
        """The profile with every rate multiplied by ``factor >= 0``."""
        if factor < 0:
            raise InvalidTermError("scale factor must be >= 0")
        if factor == 0:
            return _ZERO
        return RateProfile((t, rate * factor) for t, rate in self._points)

    def clamp(self, window: Interval) -> "RateProfile":
        """The profile restricted to ``window`` (zero outside): the paper's
        ``U_s^d`` applied to one located type."""
        if window.is_empty or self.is_zero:
            return _ZERO
        points: list[Tuple[Time, Time]] = [(window.start, self.rate_at(window.start))]
        for t, rate in self._points:
            if window.start < t < window.end:
                points.append((t, rate))
        if not math.isinf(window.end):
            points.append((window.end, 0))
        return RateProfile(points)

    def shift(self, delta: Time) -> "RateProfile":
        """The profile translated in time by ``delta``."""
        return RateProfile((t + delta, rate) for t, rate in self._points)

    def cap(self, ceiling: "RateProfile") -> "RateProfile":
        """Pointwise minimum with another profile."""
        if self.is_zero or ceiling.is_zero:
            return _ZERO
        points = [
            (t, min(self.rate_at(t), ceiling.rate_at(t)))
            for t in self._merged_breaktimes(ceiling)
        ]
        return RateProfile(points)

    def dominates(self, other: "RateProfile") -> bool:
        """Pointwise ``self >= other`` everywhere."""
        if other.is_zero:
            return True
        for t in self._merged_breaktimes(other):
            if self.rate_at(t) < other.rate_at(t):
                return False
        return True

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RateProfile):
            return NotImplemented
        return self._points == other._points

    def __hash__(self) -> int:
        return hash(self._points)

    def __bool__(self) -> bool:
        return not self.is_zero

    def __repr__(self) -> str:
        inner = ", ".join(f"({t}, {r})" for t, r in self._points)
        return f"RateProfile([{inner}])"


_ZERO = RateProfile(())


def profile_from_points(points: Sequence[Tuple[Time, Time]]) -> RateProfile:
    """Public helper: build a profile from raw breakpoints."""
    return RateProfile(points)
