"""Located resource types (paper Section III).

A resource term's subscript ``xi`` is its *located type*: the kind of
resource together with where it resides.  A CPU resource at location
``l1`` has located type ``<cpu, l1>``; a network resource usable to send
data from ``l1`` to ``l2`` has located type ``<network, l1 -> l2>`` —
the spatial part of a communication resource names both endpoints.

Locations are lightweight value objects:

* :class:`Node` — a named host/site.
* :class:`Link` — a directed pair of nodes.

:class:`LocatedType` combines a resource *kind* (free-form string such as
``"cpu"``, ``"network"``, ``"memory"``) with a location.  Convenience
constructors :func:`cpu`, :func:`network`, :func:`memory` build the common
cases used throughout the paper's examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import InvalidTermError


@dataclass(frozen=True)
class Node:
    """A named location (host, cluster, site...)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidTermError("node name must be non-empty")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Link:
    """A directed communication channel between two locations.

    The paper writes this ``l1 -> l2``; direction matters (bandwidth from
    l1 to l2 is not bandwidth from l2 to l1).
    """

    source: Node
    destination: Node

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise InvalidTermError(
                f"link endpoints must differ, got {self.source} -> {self.destination}"
            )

    @property
    def reversed(self) -> "Link":
        return Link(self.destination, self.source)

    def __str__(self) -> str:
        return f"{self.source} -> {self.destination}"


Location = Union[Node, Link]


@dataclass(frozen=True)
class LocatedType:
    """A resource kind bound to a location: the paper's ``xi``.

    ``LocatedType`` is a value object usable as a dictionary key; resource
    sets are keyed by it.  Substitutability (the ``xi1 >= xi2`` premise of
    the paper's term-dominance operator) is plain equality here: a resource
    can serve a requirement only if kind and location match exactly.
    Domains with richer substitution rules (e.g. CPU speed classes) can
    subclass and override :meth:`can_serve`.
    """

    kind: str
    location: Location

    def __post_init__(self) -> None:
        if not self.kind:
            raise InvalidTermError("resource kind must be non-empty")

    def can_serve(self, requirement: "LocatedType") -> bool:
        """Whether a resource of this located type can satisfy a
        requirement of located type ``requirement`` (the paper's
        ``xi1 >= xi2``)."""
        return self == requirement

    @property
    def is_communication(self) -> bool:
        """True for link-located (communication) resources."""
        return isinstance(self.location, Link)

    def __str__(self) -> str:
        return f"<{self.kind}, {self.location}>"


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------

def _as_node(value: Union[Node, str]) -> Node:
    return value if isinstance(value, Node) else Node(value)


def cpu(location: Union[Node, str]) -> LocatedType:
    """``<cpu, l>`` — processor capacity at a location."""
    return LocatedType("cpu", _as_node(location))


def memory(location: Union[Node, str]) -> LocatedType:
    """``<memory, l>`` — memory capacity at a location."""
    return LocatedType("memory", _as_node(location))


def network(source: Union[Node, str], destination: Union[Node, str]) -> LocatedType:
    """``<network, l1 -> l2>`` — directed communication capacity."""
    return LocatedType("network", Link(_as_node(source), _as_node(destination)))


def located(kind: str, location: Union[Node, str, Link]) -> LocatedType:
    """Generic constructor for any resource kind at a node or link."""
    if isinstance(location, Link):
        return LocatedType(kind, location)
    return LocatedType(kind, _as_node(location))
