"""Vectorized (numpy) kernels for the *inexact* profile path.

:class:`~repro.resources.profile.RateProfile` keeps two regimes: exact
coordinates (int/Fraction) run the scalar reference-pinned fast path,
and inexact (float-contaminated) profiles batch onto numpy float64
vectors.  This module holds those kernels; it is the only place in the
tree allowed to import numpy (enforced by the ``layering`` lint rule's
third-party pin), so the exactness boundary stays auditable.

Bit-identity contract: every kernel reproduces the scalar float path's
IEEE-754 operation order exactly —

* elementwise add/subtract/min/compare are order-free,
* per-time rate sums fold left-to-right over the operand list (matching
  ``RateProfile.sum``'s per-breakpoint accumulation), and
* window integrals accumulate per-segment contributions in time order
  via ``cumsum`` (sequential prefix sums, never pairwise reduction).

``tests/test_profile_differential.py`` fuzzes this agreement against
the ``_reference_*`` oracles.

Coordinates are converted to float64, so the kernels only accept
profiles whose coordinates are floats or integers small enough to be
exactly representable (``|v| <= 2**53``); anything else — Fractions
above all — stays on the scalar path.  Integer coordinates come back
as floats (``2 -> 2.0``): numerically equal, but callers that branch
on :func:`~repro.resources.profile.is_exact` must treat vec-built
profiles as inexact, which they are by construction.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

try:  # pragma: no cover - numpy is in the baked image; keep a soft gate
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None  # type: ignore[assignment]

#: Largest integer magnitude exactly representable in float64.
_MAX_SAFE_INT = 2 ** 53

HAVE_NUMPY = _np is not None


def coordinate_safe(value: object) -> bool:
    """Whether ``value`` converts to float64 without losing information."""
    if type(value) is float:
        return not math.isnan(value)
    if type(value) is int:
        return -_MAX_SAFE_INT <= value <= _MAX_SAFE_INT
    return False


def points_safe(points: Sequence[Tuple[object, object]]) -> bool:
    """Whether every breakpoint coordinate is float64-representable."""
    return all(
        coordinate_safe(t) and coordinate_safe(r) for t, r in points
    )


def arrays_from_points(points):
    """``(times, rates)`` float64 arrays for a breakpoint tuple."""
    times = _np.empty(len(points), dtype=_np.float64)
    rates = _np.empty(len(points), dtype=_np.float64)
    for i, (t, r) in enumerate(points):
        times[i] = t
        rates[i] = r
    return times, rates


def normalise_arrays(times, rates):
    """Array analogue of ``profile._normalise`` for already-sorted,
    duplicate-free times: merge consecutive equal rates, drop a leading
    zero-rate breakpoint."""
    n = len(times)
    if n == 0:
        return times, rates
    keep = _np.empty(n, dtype=bool)
    keep[0] = True
    _np.not_equal(rates[1:], rates[:-1], out=keep[1:])
    times = times[keep]
    rates = rates[keep]
    if len(rates) and rates[0] == 0.0:
        times = times[1:]
        rates = rates[1:]
    return times, rates


def _rates_at_times(ta, ra, times):
    """Operand rates at each of ``times``: the rate of the last
    breakpoint at or before each time, zero before the first (and
    everywhere for an empty — zero — operand)."""
    if len(ra) == 0:
        return _np.zeros(len(times), dtype=_np.float64)
    ia = _np.searchsorted(ta, times, side="right") - 1
    return _np.where(ia >= 0, ra[_np.maximum(ia, 0)], 0.0)


def merge(va, vb):
    """Union breaktimes plus each operand's rate at every breaktime.

    The vector analogue of ``RateProfile._merged_rates``: at time ``t``
    an operand's rate is that of its last breakpoint at or before ``t``
    (zero before the first).
    """
    ta, ra = va
    tb, rb = vb
    times = _np.union1d(ta, tb)
    return times, _rates_at_times(ta, ra, times), _rates_at_times(tb, rb, times)


def add(va, vb):
    times, ra, rb = merge(va, vb)
    return normalise_arrays(times, ra + rb)


def subtract(va, vb, tolerance):
    """Pointwise difference with the scalar path's negativity contract.

    Returns either ``("profile", times, rates)`` or
    ``("negative", time, minuend_rate, subtrahend_rate)`` for the first
    (in time order) rate that goes negative beyond ``tolerance`` — the
    caller raises with the same message the scalar path uses.  NaN rates
    (inf - inf) survive into the result; profile construction rejects
    them exactly as the scalar path does.
    """
    times, ra, rb = merge(va, vb)
    diff = ra - rb
    negative = diff < 0.0
    if negative.any():
        bad = negative & (-diff > tolerance)
        if bad.any():
            k = int(_np.argmax(bad))
            return (
                "negative",
                times[k].item(),
                ra[k].item(),
                rb[k].item(),
            )
        diff = _np.where(negative, 0.0, diff)
    if _np.isnan(diff).any():
        # inf - inf: the scalar path lets the NaN reach profile
        # construction, which rejects it; signal the caller to do the
        # same (negativity was already ruled out above, matching the
        # scalar path's raise order).
        return ("nan",)
    return ("profile",) + normalise_arrays(times, diff)


def saturating_sub(va, vb):
    times, ra, rb = merge(va, vb)
    diff = _np.maximum(ra - rb, 0.0)
    if _np.isnan(diff).any():
        # max(0, inf - inf): Python's max(0, nan) compares False and
        # keeps the 0, so the scalar path clamps the NaN away.
        diff = _np.where(_np.isnan(diff), 0.0, diff)
    return normalise_arrays(times, diff)


def cap(va, vb):
    times, ra, rb = merge(va, vb)
    return normalise_arrays(times, _np.minimum(ra, rb))


def dominates(va, vb) -> bool:
    _, ra, rb = merge(va, vb)
    return bool((ra >= rb).all())


def rate_indices(va, ts):
    """Breakpoint index in effect at each query time (-1: before all)."""
    times, _ = va
    return _np.searchsorted(times, _np.asarray(ts, dtype=_np.float64),
                            side="right") - 1


def integral(va, start, end):
    """Window integral by the scalar float path's bisected segment scan.

    Contributions are accumulated in time order with sequential prefix
    sums (``cumsum``), reproducing ``total += rate * (e - s)`` loop
    bit-for-bit; zero-rate and zero-width segments are skipped before
    any arithmetic, exactly as the scalar loop ``continue``s past them
    (this also keeps ``0 * inf`` from minting a NaN).
    """
    times, rates = va
    n = len(times)
    lo = int(_np.searchsorted(times, start, side="right")) - 1
    if lo < 0:
        lo = 0
    hi = int(_np.searchsorted(times, end, side="left"))
    if hi <= lo:
        return 0
    seg_rates = rates[lo:hi]
    seg_starts = _np.maximum(times[lo:hi], start)
    seg_ends = _np.empty(hi - lo, dtype=_np.float64)
    seg_ends[:-1] = times[lo + 1:hi]
    seg_ends[-1] = times[hi] if hi < n else math.inf
    _np.minimum(seg_ends, end, out=seg_ends)
    mask = (seg_rates != 0.0) & (seg_ends > seg_starts)
    if not mask.any():
        return 0
    contributions = seg_rates[mask] * (seg_ends[mask] - seg_starts[mask])
    if len(contributions) == 1:
        return contributions[0].item()
    return _np.cumsum(contributions)[-1].item()


def sum_profiles(operands):
    """K-way pointwise sum: per-breaktime rates fold left-to-right over
    ``operands`` (list order), matching the scalar ``RateProfile.sum``
    accumulation — so float results cannot drift from the pairwise
    ``+``-fold definition."""
    times = operands[0][0]
    for tk, _ in operands[1:]:
        times = _np.union1d(times, tk)
    level = _np.zeros(len(times), dtype=_np.float64)
    for tk, rk in operands:
        level = level + _rates_at_times(tk, rk, times)
    return normalise_arrays(times, level)


def from_segments(segments: List[Tuple[float, float, float]]):
    """K-way constant-segment sum over ``(start, end, rate)`` triples.

    Breaktimes are the union of starts and finite ends; the rate at each
    breaktime folds left-to-right over the segment list, bit-identical
    to summing the equivalent ``constant()`` profiles."""
    starts = _np.array([s for s, _, _ in segments], dtype=_np.float64)
    ends = _np.array([e for _, e, _ in segments], dtype=_np.float64)
    times = _np.union1d(starts, ends[_np.isfinite(ends)])
    level = _np.zeros(len(times), dtype=_np.float64)
    for start, end, rate in segments:
        level = level + _np.where((times >= start) & (times < end),
                                  rate, 0.0)
    return normalise_arrays(times, level)
