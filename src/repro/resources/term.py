"""Resource terms: ``[r]_{xi}^{tau}`` (paper Section III).

A resource term names a rate ``r`` of located type ``xi`` available
throughout time interval ``tau``.  The product ``r x |tau|`` is the total
quantity available over the interval.  Terms over empty intervals are
*null* — "resources are only defined during non-empty time intervals" —
and rates are never negative.

The module also implements the paper's term-dominance operator: term A is
*greater than* term B when a computation that requires B could instead use
A, with some to spare — same-or-substitutable located type, at least B's
rate, throughout an interval containing B's.  (The paper states the rate
premise with strict ``>``; we use ``>=``, the reading under which the
relative complement of Section III — which may leave exactly zero — stays
well defined.  EXPERIMENTS.md records this deviation.)
"""

from __future__ import annotations

from dataclasses import dataclass
from numbers import Real
from typing import Tuple

from repro.errors import InvalidTermError, LocatedTypeMismatchError
from repro.intervals.interval import Interval, Time
from repro.resources.located_type import LocatedType
from repro.resources.profile import RateProfile


@dataclass(frozen=True)
class ResourceTerm:
    """``[rate]_{ltype}^{window}`` — the paper's resource term."""

    rate: Time
    ltype: LocatedType
    window: Interval

    def __post_init__(self) -> None:
        if not isinstance(self.rate, Real):
            raise InvalidTermError(f"rate must be a real number, got {self.rate!r}")
        if self.rate < 0:
            raise InvalidTermError(
                f"resource terms cannot be negative, got rate {self.rate!r}"
            )
        if not isinstance(self.ltype, LocatedType):
            raise InvalidTermError(f"ltype must be a LocatedType, got {self.ltype!r}")

    # ------------------------------------------------------------------
    @property
    def is_null(self) -> bool:
        """Null terms: empty interval or zero rate (value 0 per the paper)."""
        return self.window.is_empty or self.rate == 0

    @property
    def quantity(self) -> Time:
        """Total quantity over the term's interval: ``rate x |tau|``."""
        if self.is_null:
            return 0
        return self.rate * self.window.duration

    @property
    def segment(self) -> Tuple[Interval, Time]:
        """The term as a ``(window, rate)`` pair — the unit the k-way
        profile merge (:meth:`RateProfile.from_segments`) aggregates."""
        return (self.window, self.rate)

    def profile(self) -> RateProfile:
        """The term as a one-segment rate profile."""
        if self.is_null:
            return RateProfile.zero()
        return RateProfile.constant(self.rate, self.window)

    # ------------------------------------------------------------------
    def dominates(self, other: "ResourceTerm") -> bool:
        """The paper's ``[r1]^{tau1}_{xi1} > [r2]^{tau2}_{xi2}``:
        xi1 can serve xi2, r1 >= r2, and tau2 is contained in tau1.

        Null terms are dominated by everything (they demand nothing)."""
        if other.is_null:
            return True
        if self.is_null:
            return False
        return (
            self.ltype.can_serve(other.ltype)
            and self.rate >= other.rate
            and self.window.contains(other.window)
        )

    def __gt__(self, other: "ResourceTerm") -> bool:
        if not isinstance(other, ResourceTerm):
            return NotImplemented
        return self.dominates(other) and self != other

    def __ge__(self, other: "ResourceTerm") -> bool:
        if not isinstance(other, ResourceTerm):
            return NotImplemented
        return self.dominates(other)

    # ------------------------------------------------------------------
    def subtract(self, other: "ResourceTerm") -> tuple["ResourceTerm", ...]:
        """Term subtraction (paper Section III):

        ``[r1]^{tau1} - [r2]^{tau2} = { [r1]^{tau1 \\ tau2}, [r1-r2]^{tau2} }``

        Defined only when ``self`` dominates ``other``; the result is the
        set of non-null remainder terms.
        """
        if other.is_null:
            return (self,) if not self.is_null else ()
        if not self.ltype.can_serve(other.ltype):
            raise LocatedTypeMismatchError(
                f"cannot subtract {other.ltype} from {self.ltype}"
            )
        if not self.dominates(other):
            raise InvalidTermError(
                f"subtraction undefined: {self} does not dominate {other}"
            )
        remainders: list[ResourceTerm] = []
        for piece in self.window.difference(other.window):
            remainders.append(ResourceTerm(self.rate, self.ltype, piece))
        reduced = ResourceTerm(self.rate - other.rate, self.ltype, other.window)
        if not reduced.is_null:
            remainders.append(reduced)
        return tuple(r for r in remainders if not r.is_null)

    # ------------------------------------------------------------------
    def __str__(self) -> str:
        return f"[{self.rate}]_{self.ltype}^{self.window}"


def term(rate: Time, ltype: LocatedType, start: Time, end: Time) -> ResourceTerm:
    """Convenience factory: ``term(5, cpu('l1'), 0, 3)`` is the paper's
    ``[5]_{<cpu,l1>}^{(0,3)}``."""
    return ResourceTerm(rate, ltype, Interval(start, end))
