"""Resource sets: collections of resource terms (paper Section III).

A distributed system's resources are a set of resource terms.  Terms of
the same located type with overlapping intervals *simplify* — their rates
add over the overlap — so the canonical form of a resource set is one
:class:`~repro.resources.profile.RateProfile` per located type.
:class:`ResourceSet` maintains exactly that, while still exposing the
paper's term-level view through :meth:`terms`.

Operations follow Section III:

* **union** (``|``) models resources joining the system; overlapping
  same-type terms aggregate (simplification).
* **relative complement** (``-``) models resources being claimed or
  leaving; it is *partial* — defined only when the minuend dominates the
  subtrahend, since resource terms cannot be negative.
* ``U_s^d Theta`` — :meth:`restrict` — the resources existing within a
  window, used by the satisfaction function ``f``.

Instances are immutable; every operation returns a new set.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, Mapping

from repro.errors import UndefinedOperationError
from repro.intervals.interval import Interval, Time
from repro.resources.located_type import LocatedType
from repro.resources.profile import RateProfile
from repro.resources.term import ResourceTerm


class ResourceSet:
    """An immutable set of resource terms in canonical (simplified) form."""

    __slots__ = ("_profiles",)

    def __init__(self, terms: Iterable[ResourceTerm] = ()) -> None:
        # Group segments per located type and aggregate each group with a
        # single k-way breakpoint merge (RateProfile.from_segments) instead
        # of quadratic repeated addition over the term list.
        segments: Dict[LocatedType, list] = {}
        for item in terms:
            if item.is_null:
                continue
            segments.setdefault(item.ltype, []).append(item.segment)
        profiles: Dict[LocatedType, RateProfile] = {}
        for ltype, group in segments.items():
            profile = RateProfile.from_segments(group)
            if not profile.is_zero:
                profiles[ltype] = profile
        self._profiles = profiles

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "ResourceSet":
        return _EMPTY

    @classmethod
    def from_profiles(cls, profiles: Mapping[LocatedType, RateProfile]) -> "ResourceSet":
        """Build directly from per-type profiles (canonical form)."""
        instance = cls.__new__(cls)
        instance._profiles = {
            lt: p for lt, p in profiles.items() if not p.is_zero
        }
        return instance

    @classmethod
    def of(cls, *terms: ResourceTerm) -> "ResourceSet":
        """Variadic convenience constructor."""
        return cls(terms)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def located_types(self) -> tuple[LocatedType, ...]:
        """Located types with any resource in the set (stable order)."""
        return tuple(self._profiles)

    def profile(self, ltype: LocatedType) -> RateProfile:
        """The aggregated rate profile of one located type."""
        return self._profiles.get(ltype, RateProfile.zero())

    def profiles(self) -> Mapping[LocatedType, RateProfile]:
        """Read-only mapping of all per-type profiles."""
        return dict(self._profiles)

    def terms(self) -> tuple[ResourceTerm, ...]:
        """The canonical simplified term list: one term per maximal
        constant-rate segment of each located type."""
        out: list[ResourceTerm] = []
        for ltype, prof in self._profiles.items():
            for window, rate in prof.segments():
                out.append(ResourceTerm(rate, ltype, window))
        return tuple(out)

    @property
    def is_empty(self) -> bool:
        return not self._profiles

    @property
    def horizon(self) -> Time:
        """Latest breakpoint across all types (when everything has
        expired or settled to a constant)."""
        return max((p.horizon for p in self._profiles.values()), default=0)

    # ------------------------------------------------------------------
    # Quantity queries (the paper's f-function primitives)
    # ------------------------------------------------------------------
    def quantity(self, ltype: LocatedType, window: Interval) -> Time:
        """Total quantity of ``ltype`` available during ``window``."""
        return self.profile(ltype).integral(window)

    def rate_at(self, ltype: LocatedType, t: Time) -> Time:
        """Instantaneous rate of ``ltype`` at time ``t``."""
        return self.profile(ltype).rate_at(t)

    def can_supply(self, amounts: Mapping[LocatedType, Time], window: Interval) -> bool:
        """Whether, for every located type, the quantity available during
        ``window`` covers the demanded amount: ``U_s^d Theta >= Phi``."""
        return all(
            self.quantity(ltype, window) >= amount
            for ltype, amount in amounts.items()
        )

    def restrict(self, window: Interval) -> "ResourceSet":
        """``U_s^d Theta``: the resources existing within ``window``."""
        return ResourceSet.from_profiles(
            {lt: p.clamp(window) for lt, p in self._profiles.items()}
        )

    def truncate_before(self, t: Time) -> "ResourceSet":
        """Drop everything before time ``t`` (resources in the past have
        expired; used when advancing system state)."""
        return ResourceSet.from_profiles(
            {lt: p.clamp(Interval(t, math.inf)) for lt, p in self._profiles.items()}
        )

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def union(self, other: "ResourceSet") -> "ResourceSet":
        """Resources joining: simplification aggregates overlapping terms."""
        merged = dict(self._profiles)
        for ltype, prof in other._profiles.items():
            merged[ltype] = merged.get(ltype, RateProfile.zero()) + prof
        return ResourceSet.from_profiles(merged)

    def add_term(self, item: ResourceTerm) -> "ResourceSet":
        """Union with a single term."""
        return self.union(ResourceSet((item,)))

    def dominates(self, other: "ResourceSet") -> bool:
        """Pointwise coverage: every type's rate is >= the other's at all
        times.  This is the domain of the relative complement."""
        return all(
            self.profile(ltype).dominates(prof)
            for ltype, prof in other._profiles.items()
        )

    def minus(self, other: "ResourceSet") -> "ResourceSet":
        """Relative complement ``Theta1 \\ Theta2``.

        Per the paper, defined only when every subtrahend term is dominated
        by available resources; otherwise raises
        :class:`UndefinedOperationError` (terms cannot go negative).

        Domination is not pre-checked: ``subtract`` already detects the
        first rate that would go negative, so a separate ``dominates``
        pass would merge every profile pair twice.  This is the dominant
        cost of admission control's per-request slack recomputation.
        """
        out = dict(self._profiles)
        for ltype, prof in other._profiles.items():
            try:
                out[ltype] = out.get(ltype, RateProfile.zero()).subtract(prof)
            except UndefinedOperationError as exc:
                raise UndefinedOperationError(
                    "relative complement undefined: subtrahend not dominated"
                ) from exc
        return ResourceSet.from_profiles(out)

    def saturating_minus(self, other: "ResourceSet") -> "ResourceSet":
        """Total subtraction clamped at zero, per located type.

        Models *revocation*: capacity disappearing even where commitments
        were made against it.  The paper's model forbids this (leave times
        are pre-declared); the robustness experiments use it to measure
        what the pre-declaration assumption is worth.
        """
        out = dict(self._profiles)
        for ltype, prof in other._profiles.items():
            if ltype in out:
                out[ltype] = out[ltype].saturating_sub(prof)
        return ResourceSet.from_profiles(out)

    def __or__(self, other: "ResourceSet") -> "ResourceSet":
        return self.union(other)

    def __sub__(self, other: "ResourceSet") -> "ResourceSet":
        return self.minus(other)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourceSet):
            return NotImplemented
        return self._profiles == other._profiles

    def __hash__(self) -> int:
        return hash(frozenset(self._profiles.items()))

    def __iter__(self) -> Iterator[ResourceTerm]:
        return iter(self.terms())

    def __len__(self) -> int:
        return len(self.terms())

    def __bool__(self) -> bool:
        return not self.is_empty

    def __repr__(self) -> str:
        inner = ", ".join(str(t) for t in self.terms())
        return f"ResourceSet({{{inner}}})"


_EMPTY = ResourceSet(())


def resources(*terms: ResourceTerm) -> ResourceSet:
    """Convenience factory mirroring the paper's set-brace notation."""
    return ResourceSet(terms)
