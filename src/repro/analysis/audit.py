"""Post-hoc auditing of simulation reports.

The simulator's transition rules already validate each step; the auditor
closes the loop at run level, checking global invariants any correct
execution must satisfy:

* **conservation** — per located type, offered = consumed + expired
  (modulo numerically-negligible dust); revocation runs opt out with
  ``allow_revocation`` since revoked capacity was offered but neither
  consumed nor expired through a transition;
* **demand accounting** — a completed computation consumed exactly its
  total demand; an admitted-but-unfinished one consumed strictly less;
  a rejected one consumed nothing;
* **outcome sanity** — completed and missed are mutually exclusive;
  finish times lie inside the run; misses only after the deadline.

``audit_report`` returns human-readable violation strings (empty list =
clean); the property suites assert emptiness on randomized runs, making
the auditor itself part of the evidence.
"""

from __future__ import annotations

from typing import Dict, List

from repro.resources.profile import EPSILON
from repro.system.simulator import SimulationReport


def audit_report(
    report: SimulationReport, *, allow_revocation: bool = False
) -> List[str]:
    """Every violated invariant, as one message each."""
    violations: List[str] = []
    violations.extend(_audit_conservation(report, allow_revocation))
    violations.extend(_audit_demand_accounting(report))
    violations.extend(_audit_outcomes(report))
    return violations


def assert_clean(report: SimulationReport, *, allow_revocation: bool = False) -> None:
    """Raise AssertionError listing violations, if any."""
    violations = audit_report(report, allow_revocation=allow_revocation)
    if violations:
        raise AssertionError(
            "simulation audit failed:\n  " + "\n  ".join(violations)
        )


# ----------------------------------------------------------------------

def _close(a, b) -> bool:
    return abs(float(a) - float(b)) <= 1e-6


def _audit_conservation(report: SimulationReport, allow_revocation: bool):
    consumed = report.trace.consumed_totals()
    expired = report.trace.expired_totals()
    for ltype, offered in report.offered.items():
        accounted = consumed.get(ltype, 0) + expired.get(ltype, 0)
        if allow_revocation:
            # Revoked capacity was offered but vanished silently.
            if float(accounted) > float(offered) + 1e-6:
                yield (
                    f"conservation: {ltype} accounts for {accounted} "
                    f"but only {offered} was offered"
                )
        elif not _close(accounted, offered):
            yield (
                f"conservation: {ltype} offered {offered} but "
                f"consumed+expired = {accounted}"
            )


def _audit_demand_accounting(report: SimulationReport):
    per_actor = report.trace.consumption_by_actor()
    consumed_by_record: Dict[str, float] = {}
    for actor, amounts in per_actor.items():
        owner = actor.split("[")[0]
        consumed_by_record[owner] = consumed_by_record.get(owner, 0) + float(
            sum(amounts.values())
        )
    for record in report.records:
        consumed = consumed_by_record.get(record.label, 0.0)
        if not record.admitted:
            if consumed > EPSILON:
                yield f"{record.label}: rejected but consumed {consumed}"
            continue
        if record.total_demands is None:
            continue
        demand = float(record.total_demands.total)
        if record.completed and not _close(consumed, demand):
            yield (
                f"{record.label}: completed with consumption {consumed} "
                f"!= demand {demand}"
            )
        if not record.completed and consumed > demand + 1e-6:
            yield (
                f"{record.label}: unfinished yet consumed {consumed} "
                f"> demand {demand}"
            )


def _audit_outcomes(report: SimulationReport):
    for record in report.records:
        if record.completed and record.missed:
            yield f"{record.label}: both completed and missed"
        if record.completed and record.finish_time is None:
            yield f"{record.label}: completed without a finish time"
        if record.finish_time is not None and record.finish_time > report.horizon:
            yield (
                f"{record.label}: finish {record.finish_time} past the "
                f"horizon {report.horizon}"
            )
        if record.missed and record.window.end > report.horizon:
            yield (
                f"{record.label}: marked missed but its deadline "
                f"{record.window.end} lies beyond the horizon"
            )
