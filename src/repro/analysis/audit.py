"""Post-hoc auditing of simulation reports.

The simulator's transition rules already validate each step; the auditor
closes the loop at run level, checking global invariants any correct
execution must satisfy:

* **conservation** — per located type, offered = consumed + expired
  (modulo numerically-negligible dust).  Fault runs opt in with
  ``allow_revocation``: capacity lost to revocations, crashes, and
  straggler degradation is measured into the trace, so the *extended*
  identity ``offered = consumed + expired + lost`` must balance exactly —
  a strictly stronger check than waving revoked quantity through.  The
  same identity is assertable mid-run via
  :func:`midrun_conservation_violations` (the simulator's
  ``invariant_interval`` option), turning the auditor into a runtime
  invariant checker;
* **demand accounting** — a completed computation consumed exactly its
  total demand (recovered-then-completed included: salvage before the
  violation plus the residual afterwards sum to the original demand); an
  admitted-but-unfinished one consumed strictly less; a rejected one
  consumed nothing;
* **outcome sanity** — completed/missed/abandoned are mutually exclusive;
  finish times lie inside the run; misses only after the deadline;
  abandonment and recovery only after a recorded promise violation.

``audit_report`` returns human-readable violation strings (empty list =
clean); the property suites assert emptiness on randomized runs, making
the auditor itself part of the evidence.
"""

from __future__ import annotations

from typing import Dict, List

from repro.intervals.interval import Interval, Time
from repro.logic.state import SystemState
from repro.resources.profile import EPSILON, is_exact
from repro.system.simulator import SimulationReport
from repro.system.tracing import SimulationTrace


def audit_report(
    report: SimulationReport, *, allow_revocation: bool = False
) -> List[str]:
    """Every violated invariant, as one message each."""
    violations: List[str] = []
    violations.extend(_audit_conservation(report, allow_revocation))
    violations.extend(_audit_demand_accounting(report))
    violations.extend(_audit_outcomes(report))
    return violations


def assert_clean(report: SimulationReport, *, allow_revocation: bool = False) -> None:
    """Raise AssertionError listing violations, if any."""
    violations = audit_report(report, allow_revocation=allow_revocation)
    if violations:
        raise AssertionError(
            "simulation audit failed:\n  " + "\n  ".join(violations)
        )


def midrun_conservation_violations(
    offered: Dict,
    trace: SimulationTrace,
    state: SystemState,
    horizon: Time,
) -> List[str]:
    """The extended conservation identity, checked at a live instant.

    Capacity still ahead of the clock (``state.theta`` within
    ``(state.t, horizon)``) has neither been consumed nor expired, so::

        offered = consumed + expired + lost + remaining

    must already balance.  The simulator's ``invariant_interval`` option
    calls this every N slices and raises on the first imbalance.
    """
    return trace.conservation_gaps(
        offered,
        remaining=state.theta,
        remaining_window=Interval(state.t, horizon),
    )


# ----------------------------------------------------------------------

def _close(a, b) -> bool:
    """Equality with tolerance only where a float entered the computation;
    exact quantities (int/Fraction) must match exactly."""
    if is_exact(a) and is_exact(b):
        return a == b
    return abs(float(a) - float(b)) <= 1e-6


def _positive(value) -> bool:
    """Strictly-positive test with the same exactness policy: an exact
    residue, however small, is genuinely nonzero."""
    if is_exact(value):
        return value > 0
    return value > EPSILON


def _exceeds(a, b) -> bool:
    """``a > b`` beyond numerical dust."""
    if is_exact(a) and is_exact(b):
        return a > b
    return float(a) > float(b) + 1e-6


def _audit_conservation(report: SimulationReport, allow_revocation: bool):
    if allow_revocation:
        # Extended identity: losses are measured, so the balance is exact.
        yield from report.trace.conservation_gaps(report.offered)
        return
    consumed = report.trace.consumed_totals()
    expired = report.trace.expired_totals()
    # Shed capacity (front-door refusals) is deliberate, not a fault:
    # a fault-free run behind an admission front door still sheds, so
    # the strict identity carries the shed leg even here.
    shed = report.trace.shed_totals()
    for ltype, offered in report.offered.items():
        accounted = (
            consumed.get(ltype, 0)
            + expired.get(ltype, 0)
            + shed.get(ltype, 0)
        )
        if not _close(accounted, offered):
            legs = "consumed+expired+shed" if shed else "consumed+expired"
            yield (
                f"conservation: {ltype} offered {offered} but "
                f"{legs} = {accounted}"
            )


def _audit_demand_accounting(report: SimulationReport):
    # Sums stay in their native numeric types: converting exact int/
    # Fraction quantities to float here would let the EPSILON comparisons
    # below misclassify a genuinely positive exact residue as zero.
    per_actor = report.trace.consumption_by_actor()
    consumed_by_record: Dict[str, Time] = {}
    for actor, amounts in per_actor.items():
        owner = actor.split("[")[0]
        total: Time = 0
        for amount in amounts.values():
            total = total + amount
        consumed_by_record[owner] = consumed_by_record.get(owner, 0) + total
    for record in report.records:
        consumed = consumed_by_record.get(record.label, 0)
        if not record.admitted:
            if _positive(consumed):
                yield f"{record.label}: rejected but consumed {consumed}"
            continue
        if record.total_demands is None:
            continue
        demand = record.total_demands.total
        if record.completed and not _close(consumed, demand):
            yield (
                f"{record.label}: completed with consumption {consumed} "
                f"!= demand {demand}"
            )
        if not record.completed and _exceeds(consumed, demand):
            yield (
                f"{record.label}: unfinished yet consumed {consumed} "
                f"> demand {demand}"
            )
        if record.abandoned and not _close(record.salvaged, consumed):
            yield (
                f"{record.label}: abandoned with salvage {record.salvaged} "
                f"!= consumed {consumed}"
            )


def _audit_outcomes(report: SimulationReport):
    violated = {v.label for v in report.trace.violations}
    for record in report.records:
        if record.completed and record.missed:
            yield f"{record.label}: both completed and missed"
        if record.abandoned and (record.completed or record.missed):
            yield f"{record.label}: abandoned yet also completed/missed"
        if record.completed and record.finish_time is None:
            yield f"{record.label}: completed without a finish time"
        if record.finish_time is not None and record.finish_time > report.horizon:
            yield (
                f"{record.label}: finish {record.finish_time} past the "
                f"horizon {report.horizon}"
            )
        if record.missed and record.window.end > report.horizon:
            yield (
                f"{record.label}: marked missed but its deadline "
                f"{record.window.end} lies beyond the horizon"
            )
        if (record.recovered or record.abandoned) and record.label not in violated:
            yield (
                f"{record.label}: recovered/abandoned without a recorded "
                "promise violation"
            )
        if record.abandoned and record.violated_at is None:
            yield f"{record.label}: abandoned but never marked violated"
