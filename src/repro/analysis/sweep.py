"""Parameter sweeps: the synthetic evaluation's figure generator.

A *sweep* runs a family of simulations over a parameter grid and collects
per-policy series — the programmatic form of an evaluation figure
("miss rate vs offered load", "admissions vs churn intensity").  Benches
print the series as aligned tables; downstream users can feed them to any
plotting tool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Sequence

from repro.analysis.metrics import PolicyScore, score
from repro.analysis.report import render_table
from repro.baselines import RotaAdmission
from repro.baselines.base import AdmissionPolicy
from repro.system.simulator import OpenSystemSimulator, SimulationReport
from repro.system.scheduler import ReservationPolicy


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: the parameter value plus per-policy scores."""

    parameter: object
    scores: Mapping[str, PolicyScore]

    def series(self, policy: str, metric: str):
        return getattr(self.scores[policy], metric)


@dataclass
class Sweep:
    """A completed sweep: ordered points over the parameter grid."""

    parameter_name: str
    points: List[SweepPoint] = field(default_factory=list)

    def series(self, policy: str, metric: str) -> list:
        """One curve: ``metric`` of ``policy`` across the grid."""
        return [point.series(policy, metric) for point in self.points]

    def parameters(self) -> list:
        return [point.parameter for point in self.points]

    def table(self, metric: str, *, title: str = "") -> str:
        """All policies' curves for one metric, as an aligned table."""
        policies = sorted(self.points[0].scores) if self.points else []
        rows = [
            (point.parameter, *(point.series(name, metric) for name in policies))
            for point in self.points
        ]
        return render_table(
            (self.parameter_name, *policies),
            rows,
            title=title or f"{metric} vs {self.parameter_name}",
        )


def run_sweep(
    parameter_name: str,
    grid: Sequence[object],
    scenario_factory: Callable[[object], object],
    policy_factories: Iterable[Callable[[], AdmissionPolicy]],
) -> Sweep:
    """Run every policy on every grid point's scenario.

    ``scenario_factory(value)`` must return an object with
    ``initial_resources``, ``events`` and ``horizon`` (the
    :class:`repro.workloads.scenarios.Scenario` shape).  ROTA policies get
    a reservation-following executor automatically.
    """
    factories = list(policy_factories)
    sweep = Sweep(parameter_name)
    for value in grid:
        scores: Dict[str, PolicyScore] = {}
        for factory in factories:
            policy = factory()
            scenario = scenario_factory(value)
            allocation = (
                ReservationPolicy() if isinstance(policy, RotaAdmission) else None
            )
            simulator = OpenSystemSimulator(
                policy,
                initial_resources=scenario.initial_resources,
                allocation_policy=allocation,
            )
            simulator.schedule(*scenario.events)
            report: SimulationReport = simulator.run(scenario.horizon)
            scores[policy.name] = score(report)
        sweep.points.append(SweepPoint(value, scores))
    return sweep
