"""Core of the ``repro-lint`` static-analysis framework.

The engine is deliberately small: a :class:`Finding` value type, a
:class:`Rule` plug-in protocol with a process-wide registry, and an
:class:`Analyzer` that parses Python sources once, fans each file out to
every rule whose *scope* covers the file's dotted module, and reconciles
the raw findings against the per-line suppressions of
:mod:`repro.analysis.lint.suppressions`.

Rules never do I/O and never see raw paths — they receive a parsed
:class:`SourceFile` and yield findings.  That keeps them trivially
testable against in-memory fixture snippets (the test suite injects a
``time.time()`` call into the *real* simulator source and asserts the
determinism rule catches it) and keeps the analysis itself deterministic
and exact, the very properties it polices.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.lint.suppressions import (
    META_RULES,
    Suppression,
    parse_suppressions,
)

#: Severities, in decreasing order of gravity.  Any finding — warning or
#: error — makes the CLI exit 1; the split only drives presentation and
#: the ``repro check --lint`` screen (which blocks on errors only).
SEVERITIES = ("error", "warning")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a ``path:line:column``."""

    path: str
    line: int
    column: int
    rule: str
    message: str
    severity: str = "error"

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.severity}: [{self.rule}] {self.message}"
        )


@dataclass
class SourceFile:
    """A parsed Python source handed to every applicable rule."""

    path: str
    text: str
    module: Optional[str]
    tree: ast.AST
    suppressions: Dict[int, Suppression] = field(default_factory=dict)

    @property
    def package(self) -> Optional[str]:
        return package_of(self.module) if self.module else None


def module_of(path: str | Path) -> Optional[str]:
    """Dotted module name for a file under a ``repro`` package root.

    Recognises ``.../src/repro/...`` layouts as well as an installed
    ``.../repro/...`` directory; returns ``None`` for paths outside any
    ``repro`` tree (such files get no repro-scoped findings).
    """
    parts = Path(path).parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] != "repro":
            continue
        anchored = index == 0 or parts[index - 1] in ("src", "site-packages")
        if anchored or "repro" not in parts[:index]:
            dotted = list(parts[index:])
            dotted[-1] = dotted[-1].removesuffix(".py")
            if dotted[-1] == "__init__":
                dotted.pop()
            return ".".join(dotted)
    return None


def package_of(module: str) -> str:
    """Top-level ``repro`` sub-package a dotted module belongs to.

    ``repro.system.simulator`` -> ``system``; root modules map to their
    own name (``repro.cli`` -> ``cli``); the root package itself maps to
    ``repro``.
    """
    parts = module.split(".")
    return parts[1] if len(parts) > 1 else parts[0]


class Rule:
    """Plug-in protocol: subclass, set ``name``, implement :meth:`check`.

    ``scope`` is a tuple of dotted-module prefixes the rule governs; the
    engine only invokes the rule on files whose module matches one of
    them (``None`` means every ``repro`` module).  Prefixes match at
    package boundaries: ``repro.system`` covers ``repro.system.node``
    but not ``repro.systematic``.
    """

    name: str = ""
    description: str = ""
    severity: str = "error"
    scope: Optional[Tuple[str, ...]] = None
    #: Dotted-module prefixes carved *out* of ``scope`` — for sanctioned
    #: enclaves inside a governed package (e.g. the float64 vector
    #: kernels inside the exact-arithmetic ``repro.resources``).
    exempt: Tuple[str, ...] = ()

    def applies_to(self, module: Optional[str]) -> bool:
        if module is None:
            return False
        if any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.exempt
        ):
            return False
        if self.scope is None:
            return module == "repro" or module.startswith("repro.")
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.scope
        )

    def check(self, source: SourceFile) -> Iterable[Finding]:
        raise NotImplementedError

    # Helper for subclasses ------------------------------------------------
    def finding(
        self, source: SourceFile, node: ast.AST | None, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1) if node is not None else 1
        column = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(
            path=source.path,
            line=line,
            column=column + 1,
            rule=self.name,
            message=message,
            severity=self.severity,
        )


_REGISTRY: Dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator adding one (stateless) rule instance to the registry."""
    rule = cls()
    if not rule.name:
        raise ValueError(f"rule {cls.__name__} has no name")
    if rule.name in _REGISTRY or rule.name in META_RULES:
        raise ValueError(f"duplicate rule name {rule.name!r}")
    _REGISTRY[rule.name] = rule
    return cls


def all_rules() -> Tuple[Rule, ...]:
    """Every registered code rule, in registration order."""
    _load_builtin_rules()
    return tuple(_REGISTRY.values())


def get_rules(names: Sequence[str]) -> Tuple[Rule, ...]:
    """Resolve rule names, raising ``KeyError`` on the first unknown one."""
    _load_builtin_rules()
    missing = [name for name in names if name not in _REGISTRY]
    if missing:
        raise KeyError(missing[0])
    return tuple(_REGISTRY[name] for name in names)


def known_rule_names() -> frozenset:
    """Code-rule, meta-rule, and flow-rule names — the one namespace all
    suppressions live in.  Flow rules are produced only by ``repro-lint
    flow``, but a suppression naming one must parse as known under
    ``repro-lint code`` too (both tools read the same comments)."""
    _load_builtin_rules()
    return (
        frozenset(_REGISTRY)
        | frozenset(META_RULES)
        | _flow_rule_names()
    )


def _flow_rule_names() -> frozenset:
    # Late import of the (leaf) flow namespace module: the flow package
    # imports the engine, not vice versa.
    from repro.analysis.flow.names import FLOW_META_RULES, FLOW_RULES

    return frozenset(FLOW_RULES) | frozenset(FLOW_META_RULES)


def _load_builtin_rules() -> None:
    # Imported for the @register side effects; late to avoid a cycle
    # (rule modules import this one for the base class).
    from repro.analysis.lint import layering, rules_code  # noqa: F401


class Analyzer:
    """Run a rule set over sources and reconcile suppressions.

    ``check_unused`` should stay on only when the *full* default rule set
    runs: with a filtered subset, a suppression for an unselected rule
    would be misreported as unused.
    """

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        *,
        check_unused: bool = True,
    ) -> None:
        self.rules: Tuple[Rule, ...] = (
            tuple(rules) if rules is not None else all_rules()
        )
        self.check_unused = check_unused and rules is None

    # ------------------------------------------------------------------
    def check_source(
        self, text: str, path: str, module: Optional[str] = None
    ) -> List[Finding]:
        """Analyse one in-memory source; ``module`` overrides path sniffing."""
        suppressions = parse_suppressions(text)
        module = module if module is not None else module_of(path)
        try:
            tree = ast.parse(text)
        except SyntaxError as exc:
            raw = [
                Finding(
                    path=path,
                    line=exc.lineno or 1,
                    column=(exc.offset or 0) + 1,
                    rule="parse-error",
                    message=f"file does not parse: {exc.msg}",
                )
            ]
            return self._reconcile(raw, suppressions, path)
        source = SourceFile(
            path=path, text=text, module=module, tree=tree,
            suppressions=suppressions,
        )
        raw: List[Finding] = []
        for rule in self.rules:
            if rule.applies_to(module):
                raw.extend(rule.check(source))
        return self._reconcile(raw, suppressions, path)

    def check_file(self, path: str | Path) -> List[Finding]:
        return self.check_source(Path(path).read_text(), str(path))

    def check_paths(
        self, paths: Iterable[str | Path]
    ) -> Tuple[List[Finding], int]:
        """Analyse files and directories; returns (findings, files checked)."""
        findings: List[Finding] = []
        checked = 0
        for path in _python_files(paths):
            findings.extend(self.check_file(path))
            checked += 1
        findings.sort()
        return findings, checked

    # ------------------------------------------------------------------
    def _reconcile(
        self,
        raw: List[Finding],
        suppressions: Dict[int, Suppression],
        path: str,
    ) -> List[Finding]:
        kept: List[Finding] = []
        for finding in raw:
            suppression = suppressions.get(finding.line)
            if (
                suppression is not None
                and suppression.has_reason
                and finding.rule in suppression.rules
            ):
                suppression.used.add(finding.rule)
                continue
            kept.append(finding)
        known = known_rule_names()
        for suppression in suppressions.values():
            kept.extend(self._meta_findings(suppression, known, path))
        kept.sort()
        return kept

    def _meta_findings(
        self,
        suppression: Suppression,
        known: frozenset,
        path: str,
    ) -> Iterator[Finding]:
        at = dict(path=path, line=suppression.line, column=1)
        if not suppression.has_reason:
            yield Finding(
                rule="suppression-missing-reason",
                message=(
                    "suppression must state a reason: "
                    "'# repro-lint: disable="
                    + ",".join(suppression.rules)
                    + " -- <why this line is sanctioned>'"
                ),
                **at,
            )
            return  # a reasonless suppression silences nothing; stop here
        for name in suppression.rules:
            if name not in known:
                yield Finding(
                    rule="suppression-unknown-rule",
                    message=f"suppression names unknown rule {name!r}",
                    **at,
                )
        if self.check_unused and not suppression.used:
            if any(name in _flow_rule_names() for name in suppression.rules):
                # Flow-rule suppressions are discharged by `repro-lint
                # flow`, which runs its own staleness check; the line
                # engine cannot tell used from stale here.
                return
            if all(name in known for name in suppression.rules):
                yield Finding(
                    rule="suppression-unused",
                    message=(
                        "suppression silences nothing on this line; "
                        "remove it or move it to the offending line"
                    ),
                    **at,
                )


def _python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    for path in paths:
        path = Path(path)
        if path.is_dir():
            yield from sorted(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        else:
            yield path


def exit_code(findings: Sequence[Finding]) -> int:
    """The CLI contract: 0 clean, 1 findings (usage errors exit 2)."""
    return 1 if findings else 0
