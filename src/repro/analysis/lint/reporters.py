"""Finding reporters: human text and machine JSON.

The JSON document is a stable contract (``JSON_SCHEMA_VERSION``): CI and
editor integrations may parse it.  Text output is one ``path:line:col``
line per finding — clickable in most terminals — plus a one-line summary.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.analysis.lint.engine import Finding

JSON_SCHEMA_VERSION = 1

#: Keys every finding object in the JSON report carries, in order.
FINDING_FIELDS = ("path", "line", "column", "rule", "severity", "message")


def render_text(findings: Sequence[Finding], files_checked: int) -> str:
    lines = [finding.render() for finding in findings]
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    if findings:
        lines.append(
            f"{errors} error(s), {warnings} warning(s) "
            f"in {files_checked} file(s) checked"
        )
    else:
        lines.append(f"clean: {files_checked} file(s) checked, no findings")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files_checked: int) -> str:
    document = {
        "version": JSON_SCHEMA_VERSION,
        "tool": "repro-lint",
        "files_checked": files_checked,
        "counts": {
            "error": sum(1 for f in findings if f.severity == "error"),
            "warning": sum(1 for f in findings if f.severity == "warning"),
        },
        "findings": [
            {field: getattr(finding, field) for field in FINDING_FIELDS}
            for finding in findings
        ],
    }
    return json.dumps(document, indent=2, sort_keys=False)
