"""Declarative import-direction (layering) enforcement.

This codifies — as data, not as a grep — the architecture rule that grew
up informally across PRs: *substrates never import subsystems*, and the
observability layer imports nothing it instruments (previously embedded
in ``tests/test_observability.py`` and a CI grep; both now delegate
here).

:data:`LAYERS` lists the top-level ``repro`` sub-packages bottom-up.  A
package may import strictly *lower* layers; imports within the same
layer are forbidden unless the layer is named in
:data:`SAME_LAYER_IMPORTS_OK` (the runtime triad ``system``/``faults``/
``workloads`` is mutually recursive by design: the simulator injects
faults, fault plans perturb workload scenarios, workloads schedule
simulator events).  :data:`PACKAGE_OVERRIDES` pins a package to an
explicit allow-list stricter than its layer — observability may touch
only ``errors`` so that *every* instrumented package can import it
without cycles.

A module in no declared package is itself a finding: growing the tree
means growing this map, deliberately.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Tuple

from repro.analysis.lint.engine import Finding, Rule, SourceFile, register

#: Bottom-up architecture map of ``src/repro``.  Root modules appear
#: under their own name; the root package itself is the ``repro`` entry.
LAYERS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("kernel", ("errors", "markers")),
    # Self-contained deterministic utilities (seeded backoff): above the
    # error hierarchy, below everything with domain semantics.
    ("primitives", ("backoff",)),
    ("intervals", ("intervals",)),
    ("substrate", ("resources", "observability")),
    ("model", ("computation",)),
    ("calculus", ("decision", "serialization")),
    ("semantics", ("logic",)),
    ("policies", ("baselines",)),
    ("strategies", ("planning", "encapsulation")),
    # The admission front door wraps decisions and policies; the
    # runtime (simulator, fault plans, workloads) drives it — service
    # may depend on decision/observability, never the reverse.
    ("services", ("service",)),
    ("runtime", ("system", "faults", "workloads")),
    ("surface", ("analysis", "cli", "__main__", "repro")),
)

#: Layers whose members may import each other (documented cycles).
SAME_LAYER_IMPORTS_OK: FrozenSet[str] = frozenset({"runtime", "surface"})

#: Packages allowed strictly less than their layer position implies.
PACKAGE_OVERRIDES: Dict[str, FrozenSet[str]] = {
    # The instrumentation layer must be importable from every package it
    # instruments; anything beyond the error hierarchy would be a cycle.
    "observability": frozenset({"errors"}),
}

#: Module-granular exceptions to the package map: importing package ->
#: dotted repro modules it may reach *despite* their package's layer.
#: ``repro.system.channel`` is a deterministic messaging primitive — it
#: depends only on backoff/errors/intervals/observability — housed in
#: ``repro.system`` for cohesion with the partition events that sever
#: its links.  The service front door's verdict link rides it; the
#: exception is module-tight so the door can never reach the simulator.
IMPORT_EXCEPTIONS: Dict[str, Tuple[str, ...]] = {
    "service": ("repro.system.channel",),
}

#: Third-party imports pinned to specific modules.  ``numpy`` backs the
#: *inexact* (float64) profile path only: the exact Fraction path and
#: the ``_reference_*`` oracles must never acquire a numpy dependency,
#: so the import is legal solely inside the declared vector-kernel
#: module of ``repro.resources``.  Values are dotted-module prefixes
#: (matched at package boundaries, like rule scopes).
THIRD_PARTY_PINS: Dict[str, Tuple[str, ...]] = {
    "numpy": ("repro.resources._vectorized",),
}

_LAYER_INDEX: Dict[str, int] = {}
_LAYER_NAME: Dict[str, str] = {}
for _index, (_layer, _packages) in enumerate(LAYERS):
    for _package in _packages:
        _LAYER_INDEX[_package] = _index
        _LAYER_NAME[_package] = _layer


def layer_of(package: str) -> Optional[str]:
    """Layer name for a top-level package, ``None`` if undeclared."""
    return _LAYER_NAME.get(package)


def allowed_imports(package: str) -> Optional[FrozenSet[str]]:
    """Packages ``package`` may import, ``None`` if undeclared.

    The set always includes the package itself (intra-package imports
    are the package's own business).
    """
    if package in PACKAGE_OVERRIDES:
        return PACKAGE_OVERRIDES[package] | {package}
    index = _LAYER_INDEX.get(package)
    if index is None:
        return None
    allowed = {package}
    for position, (layer, members) in enumerate(LAYERS):
        if position < index:
            allowed.update(members)
        elif position == index and layer in SAME_LAYER_IMPORTS_OK:
            allowed.update(members)
    return frozenset(allowed)


def import_violation(
    package: str, target: str, dotted: Optional[str] = None
) -> Optional[str]:
    """Human message if ``package`` importing ``target`` breaks layering.

    ``dotted`` is the full imported module path when known, consulted
    against :data:`IMPORT_EXCEPTIONS` (module-granular carve-outs).
    """
    if dotted is not None:
        for prefix in IMPORT_EXCEPTIONS.get(package, ()):
            if dotted == prefix or dotted.startswith(prefix + "."):
                return None
    allowed = allowed_imports(package)
    if allowed is None:
        return (
            f"package repro.{package} is not in the layering map "
            "(repro.analysis.lint.layering.LAYERS); declare its layer"
        )
    if target in allowed:
        return None
    if target not in _LAYER_INDEX:
        return (
            f"import target repro.{target} is not in the layering map "
            "(repro.analysis.lint.layering.LAYERS); declare its layer"
        )
    source_layer = _LAYER_NAME[package]
    target_layer = _LAYER_NAME[target]
    if package in PACKAGE_OVERRIDES:
        return (
            f"repro.{package} may import only "
            f"{{{', '.join(sorted(PACKAGE_OVERRIDES[package])) or 'nothing'}}} "
            f"but imports repro.{target}: the {source_layer} layer must not "
            "depend on code it instruments or serves"
        )
    return (
        f"repro.{package} (layer '{source_layer}') must not import "
        f"repro.{target} (layer '{target_layer}'): imports point strictly "
        "downward in the layering map"
    )


def third_party_pin_violation(
    module: Optional[str], target: str
) -> Optional[str]:
    """Human message if ``module`` importing third-party ``target``
    breaks a :data:`THIRD_PARTY_PINS` entry, else ``None``."""
    top = target.split(".")[0]
    allowed = THIRD_PARTY_PINS.get(top)
    if allowed is None:
        return None
    if module is not None and any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in allowed
    ):
        return None
    return (
        f"import of {top} outside {{{', '.join(sorted(allowed))}}}: "
        f"{top} is pinned to the inexact vector kernels so the exact "
        "arithmetic path can never silently depend on it"
    )


def imported_repro_packages(
    tree: ast.AST, module: Optional[str]
) -> Iterator[Tuple[ast.stmt, str, str]]:
    """Yield ``(import statement, top-level repro package, dotted path)``.

    Handles ``import repro.x``, ``from repro.x import y`` and relative
    ``from . import y`` forms (resolved against ``module``).
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                package = _repro_package(alias.name)
                if package is not None:
                    yield node, package, alias.name
        elif isinstance(node, ast.ImportFrom):
            dotted = _absolute_from(node, module)
            if dotted is None:
                continue
            package = _repro_package(dotted)
            if package is not None:
                yield node, package, dotted


def _repro_package(dotted: str) -> Optional[str]:
    parts = dotted.split(".")
    if parts[0] != "repro":
        return None
    return parts[1] if len(parts) > 1 else "repro"


def _absolute_from(node: ast.ImportFrom, module: Optional[str]) -> Optional[str]:
    if node.level == 0:
        return node.module
    if module is None:
        return None
    base = module.split(".")
    # level 1 = current package: drop the module's own leaf name;
    # each extra level drops one more package.
    drop = node.level
    if len(base) < drop:
        return None
    prefix = base[: len(base) - drop]
    if node.module:
        prefix = prefix + node.module.split(".")
    return ".".join(prefix) if prefix else None


@register
class LayeringRule(Rule):
    """Imports must point strictly down the declared layering map."""

    name = "layering"
    description = (
        "import-direction enforcement over the declarative layering map: "
        "substrates never import subsystems, observability imports "
        "nothing it instruments"
    )
    scope = None  # every repro module

    def check(self, source: SourceFile) -> Iterable[Finding]:
        package = source.package
        if package is None:
            return
        for node, target, dotted in imported_repro_packages(
            source.tree, source.module
        ):
            message = import_violation(package, target, dotted)
            if message is not None:
                yield self.finding(source, node, message)
        for node, target in _imported_third_party(source.tree):
            message = third_party_pin_violation(source.module, target)
            if message is not None:
                yield self.finding(source, node, message)


def _imported_third_party(tree: ast.AST) -> Iterator[Tuple[ast.stmt, str]]:
    """Yield ``(import statement, dotted target)`` for absolute imports
    of non-``repro`` modules (relative imports are repro-internal)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] != "repro":
                    yield node, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module is not None:
                if node.module.split(".")[0] != "repro":
                    yield node, node.module
