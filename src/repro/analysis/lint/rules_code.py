"""Code rules protecting the replay-verify and exact-arithmetic contracts.

Two module families are governed:

* **Deterministic modules** (``repro.system``, ``repro.decision``,
  ``repro.faults``) — everything on the replay path.  The write-ahead
  journal (PR 3) re-executes these modules and verifies that pinned
  decisions recur bit-for-bit; any ambient nondeterminism (wall clocks,
  process-global RNGs, set iteration order, ``id()``-keyed ordering)
  silently breaks that contract in ways only a diverging replay reveals.

* **Exact-arithmetic modules** (``repro.resources``, ``repro.decision``)
  — the Theorem 1–4 decision procedures run on ``int``/``Fraction``
  arithmetic; a float literal (or a ``==``/``!=`` against one) smuggles
  rounding into proofs that are otherwise exact.  The sanctioned
  boundary is :func:`repro.resources.profile.is_exact` / ``EPSILON``;
  crossing it elsewhere needs a reasoned suppression.

All detection is purely syntactic over the AST with import-alias
resolution; the rules over-approximate nothing and under-approximate
consciously (a set reaching a loop through a variable is invisible) —
see docs/static-analysis.md for the catalogue and the blind spots.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.analysis.lint.engine import Finding, Rule, SourceFile, register

#: Modules whose behaviour must replay bit-identically (PR 3 journal).
DETERMINISTIC_MODULES: Tuple[str, ...] = (
    "repro.system",
    "repro.decision",
    "repro.faults",
    # The front door's shed/breaker/brownout decisions must replay
    # byte-identically under a fixed seed (PR 6).
    "repro.service",
    "repro.backoff",
    # Lease grant/renewal/expiry instants feed the conservation identity
    # and the partition-matrix replay oracle (PR 8).
    "repro.encapsulation",
)

#: Modules whose arithmetic must stay exact (int/Fraction only).
EXACT_MODULES: Tuple[str, ...] = (
    "repro.resources",
    "repro.decision",
)

#: The sanctioned *inexact* enclave inside the exact-arithmetic
#: substrate: the float64 vector kernels that serve profiles whose
#: ``is_exact()`` is already false.  Float literals and float compares
#: are that module's whole job, so the exactness rules carve it out —
#: and the ``layering`` rule pins ``numpy`` imports to exactly here,
#: so the carve-out cannot silently widen.
INEXACT_KERNELS: Tuple[str, ...] = ("repro.resources._vectorized",)

#: Wall-clock and CPU-clock reads.  ``registry.now()`` (observability)
#: is the sanctioned route for *timing* because its readings never feed
#: back into simulated state.
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_AMBIENT_RANDOM_PREFIXES = ("secrets.", "numpy.random.")
_AMBIENT_RANDOM_CALLS = frozenset({"os.urandom", "uuid.uuid4", "uuid.uuid1"})


def import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map local names to the dotted things they import.

    ``import numpy.random as npr`` -> ``{"npr": "numpy.random"}``;
    ``from datetime import datetime`` -> ``{"datetime": "datetime.datetime"}``.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def resolve_dotted(node: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    """Dotted name of an expression, resolved through import aliases.

    Only chains rooted in an imported name resolve — a local variable
    that happens to be called ``random`` stays ``None``.
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id)
    if root is None:
        return None
    parts.append(root)
    return ".".join(reversed(parts))


def calls(tree: ast.AST) -> Iterator[Tuple[ast.Call, Optional[str]]]:
    aliases = import_aliases(tree)
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node, resolve_dotted(node.func, aliases)


@register
class WallClockRule(Rule):
    """No wall-clock reads on the replay path."""

    name = "wall-clock"
    description = (
        "no time.time()/datetime.now()-style clock reads in deterministic "
        "modules; replay-verify (PR 3) re-executes them and demands "
        "bit-identical behaviour — use event time or registry.now()"
    )
    scope = DETERMINISTIC_MODULES

    def check(self, source: SourceFile) -> Iterable[Finding]:
        for node, dotted in calls(source.tree):
            if dotted in _CLOCK_CALLS:
                yield self.finding(
                    source,
                    node,
                    f"{dotted}() reads the host clock inside deterministic "
                    f"module {source.module}; simulated time is the only "
                    "clock the replay contract admits",
                )


@register
class UnseededRandomRule(Rule):
    """All randomness must flow from an explicit seed."""

    name = "unseeded-random"
    description = (
        "no process-global or OS randomness (random.random, os.urandom, "
        "uuid4, secrets, numpy.random) in deterministic modules; "
        "construct random.Random(seed) instead"
    )
    scope = DETERMINISTIC_MODULES

    def check(self, source: SourceFile) -> Iterable[Finding]:
        for node, dotted in calls(source.tree):
            if dotted is None:
                continue
            if dotted == "random.Random":
                if not node.args and not node.keywords:
                    yield self.finding(
                        source,
                        node,
                        "random.Random() without a seed draws entropy from "
                        "the OS; pass the plan/scenario seed explicitly",
                    )
                continue
            if dotted == "random.SystemRandom" or dotted in _AMBIENT_RANDOM_CALLS:
                yield self.finding(
                    source,
                    node,
                    f"{dotted}() is OS entropy; deterministic modules must "
                    "derive all randomness from an explicit seed",
                )
            elif dotted.startswith("random."):
                yield self.finding(
                    source,
                    node,
                    f"{dotted}() uses the process-global RNG, whose state "
                    "any import can perturb; use a locally seeded "
                    "random.Random(seed)",
                )
            elif dotted.startswith(_AMBIENT_RANDOM_PREFIXES):
                if dotted == "numpy.random.default_rng" and (
                    node.args or node.keywords
                ):
                    continue  # explicitly seeded generator
                yield self.finding(
                    source,
                    node,
                    f"{dotted}() is ambient randomness; seed an explicit "
                    "generator instead",
                )


def _is_set_expr(node: ast.expr, aliases: Dict[str, str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        # set()/frozenset() are flagged only when the name still means the
        # builtin (not shadowed by an import).
        return node.func.id in ("set", "frozenset") and node.func.id not in aliases
    return False


@register
class SetIterationRule(Rule):
    """No order-dependent iteration over sets."""

    name = "set-iteration"
    description = (
        "no for-loops, comprehensions, or list()/tuple()/enumerate() over "
        "bare sets in deterministic modules — set order varies with "
        "PYTHONHASHSEED; wrap in sorted(...) to fix an order"
    )
    scope = DETERMINISTIC_MODULES

    _ORDER_SENSITIVE_WRAPPERS = ("list", "tuple", "enumerate", "iter")

    def check(self, source: SourceFile) -> Iterable[Finding]:
        aliases = import_aliases(source.tree)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.For) and _is_set_expr(node.iter, aliases):
                yield self._finding(source, node.iter, "for-loop")
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for generator in node.generators:
                    if _is_set_expr(generator.iter, aliases):
                        yield self._finding(source, generator.iter, "comprehension")
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self._ORDER_SENSITIVE_WRAPPERS
                and node.func.id not in aliases
                and node.args
                and _is_set_expr(node.args[0], aliases)
            ):
                yield self._finding(source, node.args[0], f"{node.func.id}()")

    def _finding(self, source: SourceFile, node: ast.expr, where: str) -> Finding:
        return self.finding(
            source,
            node,
            f"{where} iterates a set in deterministic module "
            f"{source.module}; iteration order varies across processes "
            "(PYTHONHASHSEED) — sort it first (sorted(...) is sanctioned)",
        )


def _is_id_key(node: ast.expr) -> bool:
    if isinstance(node, ast.Name) and node.id == "id":
        return True
    if isinstance(node, ast.Lambda):
        body = node.body
        return (
            isinstance(body, ast.Call)
            and isinstance(body.func, ast.Name)
            and body.func.id == "id"
        )
    return False


@register
class IdOrderingRule(Rule):
    """No ordering keyed on ``id()``."""

    name = "id-ordering"
    description = (
        "no sorted(..., key=id) / .sort(key=id) / min/max(key=id) in "
        "deterministic modules: id() is an address, different every run"
    )
    scope = DETERMINISTIC_MODULES

    _ORDERING_CALLS = ("sorted", "min", "max", "sort")

    def check(self, source: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            if name not in self._ORDERING_CALLS:
                continue
            for keyword in node.keywords:
                if keyword.arg == "key" and _is_id_key(keyword.value):
                    yield self.finding(
                        source,
                        node,
                        f"{name}(key=id) orders by memory address, which "
                        "differs on every run and every replay; key on a "
                        "stable attribute (label, sequence number) instead",
                    )


@register
class FloatLiteralRule(Rule):
    """No float literals in exact-arithmetic modules."""

    name = "float-literal"
    description = (
        "no float literals in exact-arithmetic modules (resources, "
        "decision): Theorems 1-4 run on int/Fraction; the only sanctioned "
        "float is the EPSILON tolerance boundary next to is_exact() and "
        "the float64 vector kernels (the declared inexact path)"
    )
    scope = EXACT_MODULES
    exempt = INEXACT_KERNELS

    def check(self, source: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, float):
                yield self.finding(
                    source,
                    node,
                    f"float literal {node.value!r} in exact-arithmetic "
                    f"module {source.module}; use int/Fraction, or suppress "
                    "with a reason at a sanctioned tolerance boundary",
                )


def _is_float_operand(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
    ):
        return True
    return False


@register
class FloatCompareRule(Rule):
    """No exact equality against floats."""

    name = "float-compare"
    description = (
        "no ==/!= where an operand is a float literal or float(...) in "
        "exact-arithmetic modules; equality on floats is rounding "
        "roulette — compare exact values, or test a tolerance explicitly"
    )
    scope = EXACT_MODULES
    exempt = INEXACT_KERNELS

    def check(self, source: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_operand(left) or _is_float_operand(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        source,
                        node,
                        f"{symbol} against a float in exact-arithmetic "
                        f"module {source.module}; exact values compare "
                        "exactly, floats never should",
                    )
