"""Semantic well-formedness checks for ROTA input documents.

``repro-lint spec FILE...`` screens the machine-readable inputs of the
toolchain *before* any simulation or admission work touches them —
the same ahead-of-time stance ROTA itself takes toward computations
(PAPER.md, Theorems 1–4): decide on the spec, not mid-flight.

Recognised documents (dispatch on structure / ``"kind"``):

* **check requests** — ``{"resources": ..., "requirement": ...}`` as fed
  to ``repro check`` (wire format of :mod:`repro.serialization`);
* **scenarios** — ``{"kind": "scenario", "horizon": ..., "events": [...]}``
  bundles with optional ``initial_resources`` and qualitative
  ``temporal_constraints``;
* **event traces** — ``*.jsonl`` files in the
  :mod:`repro.workloads.persistence` wire format;
* **fault plans** — ``{"kind": "fault_plan", "seed": ..., ...}``;
* **service configs** — ``{"kind": "service_config", "max_queue": ...,
  ...}`` front-door overload-protection parameters
  (:class:`repro.service.ServiceConfig`);
* **formulas** — ``{"kind": "formula", "formula": {"op": ...}}`` trees in
  ROTA syntax (Section V);
* **temporal specs** — ``{"kind": "temporal_spec", "constraints": [...]}``
  pure qualitative Allen constraint networks;
* bare ``resource_set`` / ``*_requirement`` wire objects.

The semantic battery: interval sanity, Allen path-consistency of the
temporal constraint network (:class:`repro.intervals.algebra
.IntervalNetwork`) with the *offending interval pair named*, vacuous and
contradictory deadline constraints, located-type/unit consistency of
resource terms, and a Theorem-1 style necessary-condition screen
(demand must not exceed what the window can possibly supply).
"""

from __future__ import annotations

import json
import math
from itertools import combinations
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.analysis.lint.engine import Finding
from repro.computation.interaction import SegmentedRequirement
from repro.computation.requirements import SimpleRequirement
from repro.decision.screen import requirement_demands, supply_shortfall
from repro.errors import (
    FaultInjectionError,
    InvalidComputationError,
    InvalidIntervalError,
    InvalidTermError,
    RotaError,
)
from repro.intervals.algebra import NONE, IntervalNetwork
from repro.intervals.interval import Interval
from repro.intervals.relations import Relation, relate
from repro.serialization import (
    SerializationError,
    requirement_from_wire,
    resource_set_from_wire,
    time_from_wire,
)

#: Rule catalogue of the spec checker (ids -> one-line description).
SPEC_RULES: Dict[str, str] = {
    "spec-syntax": "document is not a well-formed ROTA spec",
    "spec-interval": "an interval is insane (start > end, NaN, +inf start)",
    "spec-located-type": "located types are inconsistent (e.g. self-loop link)",
    "spec-missing-resource": (
        "a requirement demands a located type no resource ever provides"
    ),
    "spec-supply-shortfall": (
        "demand exceeds everything the window can supply (Theorem-1 screen)"
    ),
    "spec-deadline-vacuous": (
        "a deadline constraint that can never bind (nothing demanded, "
        "deadline at infinity, or beyond the horizon)"
    ),
    "spec-deadline-contradictory": (
        "a deadline constraint that can never hold (deadline at/before "
        "arrival, empty window with demands, waits exceeding the window)"
    ),
    "spec-temporal-inconsistency": (
        "the temporal constraint network is Allen path-inconsistent"
    ),
    "spec-reference": "a temporal constraint references an unknown interval",
    "spec-fault-plan": "a fault plan's parameters are inconsistent",
    "spec-service": (
        "a front-door service config's parameters are inconsistent "
        "(queue bounds, brownout hysteresis, breaker thresholds)"
    ),
}

#: Keys accepted per document kind (anything else is a spec-syntax finding).
_SCENARIO_KEYS = frozenset(
    {"kind", "name", "horizon", "initial_resources", "events",
     "temporal_constraints"}
)
_FAULT_PLAN_KEYS = frozenset(
    {"kind", "seed", "crash_rate", "revocation_rate", "straggler_rate",
     "straggler_factor", "min_early", "max_early"}
)

_RELATION_NAMES: Dict[str, Relation] = {}
for _relation in Relation:
    _RELATION_NAMES[_relation.value] = _relation
    _RELATION_NAMES[_relation.name.lower()] = _relation

#: Cap on trace records examined per file under ``--quick``.
QUICK_TRACE_RECORDS = 200


def _finding(
    path: str,
    rule: str,
    message: str,
    *,
    line: int = 1,
    where: str = "$",
    severity: str = "error",
) -> Finding:
    return Finding(
        path=path,
        line=line,
        column=1,
        rule=rule,
        message=f"{where}: {message}" if where else message,
        severity=severity,
    )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

def check_spec_path(path: str | Path, *, quick: bool = False) -> List[Finding]:
    """All findings for one spec file (``.json`` or ``.jsonl``).

    Raises ``OSError`` if the file cannot be read — "the tool could not
    run" is the caller's exit-2 case, not a finding.
    """
    path = Path(path)
    text = path.read_text()
    if path.suffix == ".jsonl":
        return check_trace_text(text, str(path), quick=quick)
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        return [
            _finding(
                str(path), "spec-syntax", f"not valid JSON: {exc.msg}",
                line=exc.lineno, where="",
            )
        ]
    return check_spec_document(document, str(path), quick=quick)


def check_spec_document(
    document: Any, path: str = "<spec>", *, quick: bool = False
) -> List[Finding]:
    """Dispatch a parsed JSON document to the matching checker."""
    if not isinstance(document, Mapping):
        return [
            _finding(path, "spec-syntax",
                     f"expected a JSON object, got {type(document).__name__}")
        ]
    kind = document.get("kind")
    if "resources" in document and "requirement" in document:
        return check_request_document(document, path)
    if kind == "scenario":
        return _check_scenario(document, path, quick=quick)
    if kind == "fault_plan":
        return _check_fault_plan(document, path)
    if kind == "service_config":
        return _check_service_config(document, path)
    if kind == "formula":
        return _check_formula_document(document, path)
    if kind == "temporal_spec":
        return _check_temporal_spec(document, path)
    if kind == "resource_set":
        _, findings = _load_resource_set(document, path, "$")
        return findings
    if isinstance(kind, str) and kind.endswith("_requirement"):
        requirement, findings = _load_requirement(document, path, "$")
        if requirement is not None:
            findings.extend(_requirement_semantics(requirement, path, "$"))
        return findings
    return [
        _finding(
            path, "spec-syntax",
            f"unrecognised spec document (kind={kind!r}); expected a check "
            "request, scenario, fault_plan, service_config, formula, "
            "temporal_spec, resource_set, or *_requirement",
        )
    ]


# ----------------------------------------------------------------------
# Intervals (wire-level sanity, before construction)
# ----------------------------------------------------------------------

def _interval_wire_findings(data: Any, path: str, where: str) -> List[Finding]:
    """Recursively validate every ``{"kind": "interval"}`` in a subtree."""
    findings: List[Finding] = []
    if isinstance(data, Mapping):
        if data.get("kind") == "interval":
            findings.extend(_one_interval(data, path, where))
        for key, value in data.items():
            if key != "kind":
                findings.extend(
                    _interval_wire_findings(value, path, f"{where}.{key}")
                )
    elif isinstance(data, (list, tuple)):
        for index, value in enumerate(data):
            findings.extend(
                _interval_wire_findings(value, path, f"{where}[{index}]")
            )
    return findings


def _one_interval(data: Mapping[str, Any], path: str, where: str) -> List[Finding]:
    try:
        start = time_from_wire(data["start"])
        end = time_from_wire(data["end"])
    except (KeyError, SerializationError) as exc:
        return [_finding(path, "spec-syntax", f"bad interval: {exc}", where=where)]
    out: List[Finding] = []
    for label, value in (("start", start), ("end", end)):
        if isinstance(value, float) and math.isnan(value):
            out.append(
                _finding(path, "spec-interval",
                         f"interval {label} is NaN", where=where)
            )
    if out:
        return out
    if isinstance(start, float) and math.isinf(start) and start > 0:
        out.append(
            _finding(path, "spec-interval",
                     "interval cannot start at +infinity", where=where)
        )
    elif start > end:
        out.append(
            _finding(
                path, "spec-interval",
                f"interval start {start} exceeds end {end}", where=where,
            )
        )
    return out


# ----------------------------------------------------------------------
# Resource sets and requirements
# ----------------------------------------------------------------------

def _classify_rota_error(exc: RotaError, path: str, where: str) -> Finding:
    if isinstance(exc, InvalidIntervalError):
        return _finding(path, "spec-interval", str(exc), where=where)
    if isinstance(exc, InvalidTermError) and "link endpoints" in str(exc):
        return _finding(path, "spec-located-type", str(exc), where=where)
    if isinstance(exc, InvalidComputationError) and "window" in str(exc):
        return _finding(path, "spec-deadline-contradictory", str(exc), where=where)
    return _finding(path, "spec-syntax", str(exc), where=where)


def _load_resource_set(data: Any, path: str, where: str):
    findings = _interval_wire_findings(data, path, where)
    if findings:
        return None, findings
    try:
        resources = resource_set_from_wire(data)
    except (RotaError, KeyError, TypeError) as exc:
        if isinstance(exc, RotaError):
            return None, [_classify_rota_error(exc, path, where)]
        return None, [
            _finding(path, "spec-syntax",
                     f"bad resource set: {exc!r}", where=where)
        ]
    findings.extend(_located_type_findings(
        (term.ltype for term in resources.terms()), path, where
    ))
    return resources, findings


def _located_type_findings(ltypes: Iterable, path: str, where: str) -> List[Finding]:
    findings: List[Finding] = []
    seen = set()
    for ltype in ltypes:
        if ltype in seen:
            continue
        seen.add(ltype)
        location = ltype.location
        source = getattr(location, "source", None)
        destination = getattr(location, "destination", None)
        if source is not None and source == destination:
            findings.append(
                _finding(
                    path, "spec-located-type",
                    f"link {location} connects a node to itself; bandwidth "
                    "terms need two distinct endpoints", where=where,
                )
            )
    return findings


def _load_requirement(data: Any, path: str, where: str):
    findings = _interval_wire_findings(data, path, where)
    if findings:
        return None, findings
    try:
        requirement = requirement_from_wire(data)
    except (RotaError, KeyError, TypeError) as exc:
        if isinstance(exc, RotaError):
            return None, [_classify_rota_error(exc, path, where)]
        return None, [
            _finding(path, "spec-syntax",
                     f"bad requirement: {exc!r}", where=where)
        ]
    return requirement, findings


def _requirement_demands(requirement) -> Mapping:
    return requirement_demands(requirement)


def _requirement_semantics(
    requirement,
    path: str,
    where: str,
    *,
    line: int = 1,
    arrival_time=None,
    horizon=None,
) -> List[Finding]:
    """Vacuity/contradiction checks shared by every requirement context."""
    findings: List[Finding] = []
    window = requirement.window
    demands = _requirement_demands(requirement)
    total = sum(demands.values(), 0)
    if total == 0:
        findings.append(
            _finding(
                path, "spec-deadline-vacuous",
                "requirement demands nothing; its deadline promise is "
                "vacuously kept", where=where, line=line, severity="warning",
            )
        )
    if isinstance(window.end, float) and math.isinf(window.end):
        findings.append(
            _finding(
                path, "spec-deadline-vacuous",
                "deadline at infinity never binds; this is availability, "
                "not deadline assurance", where=where, line=line,
                severity="warning",
            )
        )
    if arrival_time is not None and window.end <= arrival_time and total > 0:
        findings.append(
            _finding(
                path, "spec-deadline-contradictory",
                f"deadline {window.end} is at or before the arrival time "
                f"{arrival_time}; the computation expires on arrival",
                where=where, line=line,
            )
        )
    if (
        horizon is not None
        and window.end > horizon
        and not (isinstance(window.end, float) and math.isinf(window.end))
    ):
        findings.append(
            _finding(
                path, "spec-deadline-vacuous",
                f"deadline {window.end} lies beyond the horizon {horizon}; "
                "the promise can never be checked before the run ends",
                where=where, line=line, severity="warning",
            )
        )
    if isinstance(requirement, SegmentedRequirement):
        min_wait = sum((w.min_delay for w in requirement.waits), 0)
        if min_wait >= window.duration and total > 0:
            findings.append(
                _finding(
                    path, "spec-deadline-contradictory",
                    f"minimum waits total {min_wait}, which consumes the "
                    f"whole window {window} before any work fits",
                    where=where, line=line,
                )
            )
    return findings


def _coverage_findings(
    requirement, provided, path: str, where: str, *, line: int = 1
) -> List[Finding]:
    demands = _requirement_demands(requirement)
    findings: List[Finding] = []
    for ltype in demands:
        if ltype not in provided:
            findings.append(
                _finding(
                    path, "spec-missing-resource",
                    f"demands {ltype} but no resource term or join event "
                    "ever provides that located type; admission can only "
                    "refuse", where=where, line=line,
                )
            )
    return findings


# ----------------------------------------------------------------------
# Check requests
# ----------------------------------------------------------------------

def check_request_document(
    document: Mapping[str, Any], path: str = "<request>"
) -> List[Finding]:
    """Pre-admission screen for a ``repro check`` request document."""
    findings: List[Finding] = []
    resources, resource_findings = _load_resource_set(
        document["resources"], path, "$.resources"
    )
    findings.extend(resource_findings)
    requirement, requirement_findings = _load_requirement(
        document["requirement"], path, "$.requirement"
    )
    findings.extend(requirement_findings)
    if requirement is None:
        return findings
    findings.extend(_requirement_semantics(requirement, path, "$.requirement"))
    if resources is None:
        return findings
    provided = set(resources.located_types)
    findings.extend(
        _coverage_findings(requirement, provided, path, "$.requirement")
    )
    # The Theorem-1 screen itself lives in the decision layer
    # (repro.decision.screen) so the service front door's brownout mode
    # and this linter can never drift apart on what "infeasible" means.
    shortfall = supply_shortfall(resources, requirement)
    if shortfall is not None:
        findings.append(
            _finding(
                path, "spec-supply-shortfall", shortfall,
                where="$.requirement",
            )
        )
    return findings


# ----------------------------------------------------------------------
# Temporal constraint networks (Allen path-consistency)
# ----------------------------------------------------------------------

def _parse_relations(raw: Any, path: str, where: str):
    if not isinstance(raw, (list, tuple)) or not raw:
        return None, [
            _finding(
                path, "spec-syntax",
                "constraint 'relations' must be a non-empty list of Allen "
                "relation names", where=where,
            )
        ]
    relations = []
    findings: List[Finding] = []
    for name in raw:
        key = str(name).strip().lower()
        relation = _RELATION_NAMES.get(key)
        if relation is None:
            findings.append(
                _finding(
                    path, "spec-syntax",
                    f"unknown Allen relation {name!r} (use e.g. 'before', "
                    "'meets', 'during', 'overlaps', 'equals' or the paper's "
                    "symbols 'b', 'm', 'd', 'o', 'eq', ...)", where=where,
                )
            )
        else:
            relations.append(relation)
    if findings:
        return None, findings
    return relations, []


def check_temporal_constraints(
    constraints: Iterable[Mapping[str, Any]],
    concrete: Mapping[object, Interval],
    path: str,
    *,
    where: str = "$.temporal_constraints",
    allow_unknown: bool = False,
) -> List[Finding]:
    """Path-consistency of a qualitative network over named intervals.

    ``concrete`` pins some names to concrete windows (their pairwise
    Allen relations become singleton constraints); the listed
    ``constraints`` add disjunctive edges.  With ``allow_unknown`` the
    constraints may introduce purely abstract nodes; otherwise a name
    outside ``concrete`` is a ``spec-reference`` finding.
    """
    findings: List[Finding] = []
    network = IntervalNetwork()
    usable = {}
    for name, window in concrete.items():
        if window.is_empty:
            findings.append(
                _finding(
                    path, "spec-interval",
                    f"interval {name!r} is empty and cannot participate in "
                    "temporal constraints", where=where,
                )
            )
            continue
        usable[name] = window
        network.add_node(name)
    for a, b in combinations(list(usable), 2):
        network.constrain(a, b, {relate(usable[a], usable[b])})
    parsed_any = False
    for index, constraint in enumerate(constraints):
        at = f"{where}[{index}]"
        if not isinstance(constraint, Mapping) or not {
            "a", "b", "relations"
        } <= set(constraint):
            findings.append(
                _finding(
                    path, "spec-syntax",
                    "temporal constraint must be an object with keys "
                    "'a', 'b', 'relations'", where=at,
                )
            )
            continue
        relations, relation_findings = _parse_relations(
            constraint["relations"], path, at
        )
        findings.extend(relation_findings)
        if relations is None:
            continue
        missing = [
            name for name in (constraint["a"], constraint["b"])
            if name not in usable
        ]
        if missing and not allow_unknown:
            for name in missing:
                findings.append(
                    _finding(
                        path, "spec-reference",
                        f"temporal constraint references {name!r}, which "
                        "names no declared interval or labelled arrival",
                        where=at,
                    )
                )
            continue
        network.constrain(constraint["a"], constraint["b"], relations)
        parsed_any = True
    if not parsed_any and len(usable) < 2:
        return findings
    if not network.propagate():
        findings.extend(_inconsistency_findings(network, path, where))
    return findings


def _inconsistency_findings(
    network: IntervalNetwork, path: str, where: str
) -> List[Finding]:
    for node in network.nodes:
        if network.relation(node, node) == NONE:
            return [
                _finding(
                    path, "spec-temporal-inconsistency",
                    f"constraints on interval {node!r} exclude EQUALS with "
                    "itself; no timeline satisfies them", where=where,
                )
            ]
    for a, b in combinations(network.nodes, 2):
        if network.relation(a, b) == NONE:
            return [
                _finding(
                    path, "spec-temporal-inconsistency",
                    "temporal constraint network is path-inconsistent: no "
                    f"Allen relation can hold between {a!r} and {b!r}",
                    where=where,
                )
            ]
    return [  # pragma: no cover - propagate() False implies an empty edge
        _finding(
            path, "spec-temporal-inconsistency",
            "temporal constraint network is path-inconsistent", where=where,
        )
    ]


def _check_temporal_spec(
    document: Mapping[str, Any], path: str
) -> List[Finding]:
    findings: List[Finding] = []
    unknown = set(document) - {"kind", "intervals", "constraints"}
    for key in sorted(unknown):
        findings.append(
            _finding(path, "spec-syntax",
                     f"unknown temporal_spec key {key!r}", where=f"$.{key}")
        )
    concrete: Dict[object, Interval] = {}
    intervals = document.get("intervals", {})
    if not isinstance(intervals, Mapping):
        findings.append(
            _finding(path, "spec-syntax",
                     "'intervals' must map names to interval objects",
                     where="$.intervals")
        )
        intervals = {}
    for name, wire in intervals.items():
        at = f"$.intervals.{name}"
        interval_findings = _interval_wire_findings(wire, path, at)
        if interval_findings:
            findings.extend(interval_findings)
            continue
        try:
            concrete[name] = Interval(
                time_from_wire(wire["start"]), time_from_wire(wire["end"])
            )
        except (KeyError, RotaError, SerializationError) as exc:
            findings.append(
                _finding(path, "spec-syntax",
                         f"bad interval: {exc}", where=at)
            )
    constraints = document.get("constraints", [])
    if not isinstance(constraints, (list, tuple)):
        findings.append(
            _finding(path, "spec-syntax",
                     "'constraints' must be a list", where="$.constraints")
        )
        return findings
    findings.extend(
        check_temporal_constraints(
            constraints, concrete, path,
            where="$.constraints", allow_unknown=True,
        )
    )
    return findings


# ----------------------------------------------------------------------
# Scenarios and traces
# ----------------------------------------------------------------------

def _check_scenario(
    document: Mapping[str, Any], path: str, *, quick: bool
) -> List[Finding]:
    from repro.workloads.persistence import event_from_wire
    from repro.system.events import ComputationArrivalEvent, ResourceJoinEvent

    findings: List[Finding] = []
    for key in sorted(set(document) - _SCENARIO_KEYS):
        findings.append(
            _finding(path, "spec-syntax",
                     f"unknown scenario key {key!r}", where=f"$.{key}")
        )
    horizon = None
    try:
        horizon = time_from_wire(document["horizon"])
    except KeyError:
        findings.append(
            _finding(path, "spec-syntax",
                     "scenario requires a 'horizon'", where="$.horizon")
        )
    except SerializationError as exc:
        findings.append(
            _finding(path, "spec-syntax", str(exc), where="$.horizon")
        )
    if horizon is not None and (
        horizon <= 0 or (isinstance(horizon, float) and not math.isfinite(horizon))
    ):
        findings.append(
            _finding(path, "spec-interval",
                     f"horizon must be a positive finite time, got {horizon}",
                     where="$.horizon")
        )
        horizon = None

    provided = set()
    if "initial_resources" in document:
        resources, resource_findings = _load_resource_set(
            document["initial_resources"], path, "$.initial_resources"
        )
        findings.extend(resource_findings)
        if resources is not None:
            provided.update(resources.located_types)

    events_wire = document.get("events", [])
    if not isinstance(events_wire, (list, tuple)):
        findings.append(
            _finding(path, "spec-syntax",
                     "'events' must be a list of wire event records",
                     where="$.events")
        )
        events_wire = []
    if quick:
        events_wire = events_wire[:QUICK_TRACE_RECORDS]
    events = []
    for index, wire in enumerate(events_wire):
        at = f"$.events[{index}]"
        interval_findings = _interval_wire_findings(wire, path, at)
        if interval_findings:
            findings.extend(interval_findings)
            continue
        try:
            events.append((at, event_from_wire(dict(wire))))
        except (RotaError, KeyError, TypeError) as exc:
            if isinstance(exc, RotaError):
                findings.append(_classify_rota_error(exc, path, at))
            else:
                findings.append(
                    _finding(path, "spec-syntax",
                             f"bad event: {exc!r}", where=at)
                )
    for _, event in events:
        if isinstance(event, ResourceJoinEvent):
            provided.update(event.resources.located_types)
    arrivals: Dict[str, Interval] = {}
    for at, event in events:
        if event.time < 0:
            findings.append(
                _finding(path, "spec-interval",
                         f"event time {event.time} is negative", where=at)
            )
        elif horizon is not None and event.time > horizon:
            findings.append(
                _finding(
                    path, "spec-deadline-vacuous",
                    f"event at {event.time} lies beyond the horizon "
                    f"{horizon} and will never fire", where=at,
                    severity="warning",
                )
            )
        if isinstance(event, ComputationArrivalEvent):
            requirement = event.requirement
            findings.extend(
                _requirement_semantics(
                    requirement, path, at,
                    arrival_time=event.time, horizon=horizon,
                )
            )
            findings.extend(
                _coverage_findings(requirement, provided, path, at)
            )
            label = getattr(requirement, "label", "") or event.label
            if label:
                arrivals[label] = requirement.window
    constraints = document.get("temporal_constraints", [])
    if not isinstance(constraints, (list, tuple)):
        findings.append(
            _finding(path, "spec-syntax",
                     "'temporal_constraints' must be a list",
                     where="$.temporal_constraints")
        )
    elif constraints:
        findings.extend(
            check_temporal_constraints(
                constraints, arrivals, path,
                where="$.temporal_constraints", allow_unknown=False,
            )
        )
    return findings


def check_trace_text(
    text: str, path: str, *, quick: bool = False
) -> List[Finding]:
    """Screen a JSONL event trace (persistence wire format)."""
    from repro.workloads.persistence import event_from_wire
    from repro.system.events import ComputationArrivalEvent, ResourceJoinEvent

    findings: List[Finding] = []
    events: List[Tuple[int, Any]] = []
    truncated = False
    for number, raw in enumerate(text.splitlines(), start=1):
        if not raw.strip():
            continue
        if quick and len(events) >= QUICK_TRACE_RECORDS:
            truncated = True
            break
        try:
            wire = json.loads(raw)
        except json.JSONDecodeError as exc:
            findings.append(
                _finding(path, "spec-syntax",
                         f"not valid JSON: {exc.msg}", line=number, where="")
            )
            continue
        interval_findings = _interval_wire_findings(wire, path, "$")
        if interval_findings:
            findings.extend(
                Finding(
                    path=f.path, line=number, column=1, rule=f.rule,
                    message=f.message, severity=f.severity,
                )
                for f in interval_findings
            )
            continue
        try:
            events.append((number, event_from_wire(dict(wire))))
        except (RotaError, KeyError, TypeError) as exc:
            if isinstance(exc, RotaError):
                base = _classify_rota_error(exc, path, "$")
                findings.append(
                    Finding(path=base.path, line=number, column=1,
                            rule=base.rule, message=base.message,
                            severity=base.severity)
                )
            else:
                findings.append(
                    _finding(path, "spec-syntax",
                             f"bad event: {exc!r}", line=number, where="$")
                )
    provided = set()
    for _, event in events:
        if isinstance(event, ResourceJoinEvent):
            provided.update(event.resources.located_types)
    for number, event in events:
        if event.time < 0:
            findings.append(
                _finding(path, "spec-interval",
                         f"event time {event.time} is negative",
                         line=number, where="$")
            )
        if isinstance(event, ComputationArrivalEvent):
            findings.extend(
                _requirement_semantics(
                    event.requirement, path, "$",
                    line=number, arrival_time=event.time,
                )
            )
            if not truncated:
                # With a truncated scan, later joins could still provide
                # the type; only a full read can prove absence.
                findings.extend(
                    _coverage_findings(
                        event.requirement, provided, path, "$", line=number
                    )
                )
    return findings


# ----------------------------------------------------------------------
# Fault plans and formulas
# ----------------------------------------------------------------------

def _check_fault_plan(document: Mapping[str, Any], path: str) -> List[Finding]:
    from repro.faults import FaultPlan

    findings: List[Finding] = []
    for key in sorted(set(document) - _FAULT_PLAN_KEYS):
        findings.append(
            _finding(path, "spec-syntax",
                     f"unknown fault_plan key {key!r}", where=f"$.{key}")
        )
    fields = {k: v for k, v in document.items() if k != "kind"}
    try:
        FaultPlan(**fields)
    except FaultInjectionError as exc:
        findings.append(
            _finding(path, "spec-fault-plan", str(exc), where="$")
        )
    except TypeError as exc:
        findings.append(
            _finding(path, "spec-syntax",
                     f"bad fault plan: {exc}", where="$")
        )
    return findings


def _check_service_config(
    document: Mapping[str, Any], path: str
) -> List[Finding]:
    """Screen a front-door config the way fault plans are screened: a
    typo'd key is syntax, a constructible-but-inconsistent combination
    (e.g. brownout exit >= enter) is a ``spec-service`` finding."""
    from repro.errors import ServiceConfigError
    from repro.service import ServiceConfig

    findings: List[Finding] = []
    known = set(ServiceConfig.__dataclass_fields__) | {"kind"}
    for key in sorted(set(document) - known):
        findings.append(
            _finding(path, "spec-syntax",
                     f"unknown service_config key {key!r}", where=f"$.{key}")
        )
    fields = {
        key: value
        for key, value in document.items()
        if key != "kind" and key in known
    }
    try:
        ServiceConfig.from_document(fields)
    except ServiceConfigError as exc:
        findings.append(
            _finding(path, "spec-service", str(exc), where="$")
        )
    return findings


_FORMULA_MAX_DEPTH = 64


def _check_formula_document(
    document: Mapping[str, Any], path: str
) -> List[Finding]:
    if "formula" not in document:
        return [
            _finding(path, "spec-syntax",
                     "formula document requires a 'formula' node",
                     where="$.formula")
        ]
    return _check_formula_node(document["formula"], path, "$.formula", 0)


def _check_formula_node(
    node: Any, path: str, where: str, depth: int
) -> List[Finding]:
    if depth > _FORMULA_MAX_DEPTH:
        return [
            _finding(path, "spec-syntax",
                     f"formula nesting exceeds {_FORMULA_MAX_DEPTH} levels",
                     where=where)
        ]
    if not isinstance(node, Mapping) or "op" not in node:
        return [
            _finding(path, "spec-syntax",
                     "formula node must be an object with an 'op'",
                     where=where)
        ]
    op = node["op"]
    if op in ("true", "false"):
        return []
    if op == "satisfy":
        if "requirement" not in node:
            return [
                _finding(path, "spec-syntax",
                         "satisfy needs a 'requirement'", where=where)
            ]
        requirement, findings = _load_requirement(
            node["requirement"], path, f"{where}.requirement"
        )
        if requirement is not None:
            findings.extend(
                _requirement_semantics(
                    requirement, path, f"{where}.requirement"
                )
            )
        return findings
    if op in ("not", "eventually", "always"):
        if "operand" not in node:
            return [
                _finding(path, "spec-syntax",
                         f"{op} needs an 'operand'", where=where)
            ]
        return _check_formula_node(
            node["operand"], path, f"{where}.operand", depth + 1
        )
    if op in ("and", "or"):
        findings = []
        for side in ("left", "right"):
            if side not in node:
                findings.append(
                    _finding(path, "spec-syntax",
                             f"{op} needs '{side}'", where=where)
                )
            else:
                findings.extend(
                    _check_formula_node(
                        node[side], path, f"{where}.{side}", depth + 1
                    )
                )
        return findings
    return [
        _finding(
            path, "spec-syntax",
            f"unknown formula op {op!r} (ROTA syntax: true, false, satisfy, "
            "not, and, or, eventually, always)", where=where,
        )
    ]
