"""The ``repro-lint`` command-line interface.

Exit-code contract (uniform across every subcommand, and shared with
``python -m repro``):

* **0** — the tool ran and found nothing;
* **1** — the tool ran and has findings (the negative answer);
* **2** — the tool could not run as invoked (bad flags, unknown rule,
  unreadable path).

Subcommands::

    repro-lint code [PATH...]          # AST rules over Python sources
    repro-lint flow [PATH...]          # whole-program call-chain analyses
    repro-lint spec FILE...            # semantic checks over spec files
    repro-lint rules                   # print the rule catalogue
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Sequence

from repro.analysis.lint.engine import (
    Analyzer,
    Finding,
    all_rules,
    exit_code,
    get_rules,
)
from repro.analysis.lint.reporters import render_json, render_text
from repro.analysis.lint.spec import SPEC_RULES, check_spec_path
from repro.analysis.lint.suppressions import META_RULES

_SPEC_SUFFIXES = (".json", ".jsonl")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "static analysis for the ROTA reproduction: determinism and "
            "exactness rules over the code, well-formedness rules over "
            "spec files (exit 0 clean / 1 findings / 2 usage)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    code = sub.add_parser(
        "code", help="run the AST rules over Python sources"
    )
    code.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to analyse (default: src/repro)",
    )
    code.add_argument(
        "--rules", default=None, metavar="RULE[,RULE...]",
        help="run only the named rules (disables unused-suppression "
        "checking, which needs the full set)",
    )
    code.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (default: text)",
    )

    flow = sub.add_parser(
        "flow",
        help="whole-program flow analyses (transitive taint, checkpoint "
        "coverage, shared-state escapes) over Python sources",
    )
    flow.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to analyse (default: src/repro)",
    )
    flow.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (default: text; json includes the ranked "
        "isolation report and call-graph stats)",
    )
    flow.add_argument(
        "--report", action="store_true",
        help="also print the ranked shared-state isolation report "
        "(always present in json output)",
    )

    spec = sub.add_parser(
        "spec", help="semantic well-formedness checks over spec files"
    )
    spec.add_argument(
        "paths", nargs="+",
        help="spec files (.json/.jsonl) or directories to scan for them",
    )
    spec.add_argument(
        "--quick", action="store_true",
        help="smoke mode: cap the records examined per trace/scenario",
    )
    spec.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (default: text)",
    )

    sub.add_parser("rules", help="print the rule catalogue and exit")
    return parser


def _usage_error(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    return 2


def _emit(findings: List[Finding], files_checked: int, fmt: str) -> int:
    if fmt == "json":
        print(render_json(findings, files_checked))
    else:
        print(render_text(findings, files_checked))
    return exit_code(findings)


def _cmd_code(args: argparse.Namespace) -> int:
    paths = [Path(p) for p in args.paths]
    for path in paths:
        if not path.exists():
            return _usage_error(f"no such file or directory: {path}")
    if args.rules is not None:
        names = [n.strip() for n in args.rules.split(",") if n.strip()]
        if not names:
            return _usage_error("--rules got an empty rule list")
        try:
            rules = get_rules(names)
        except KeyError as exc:
            return _usage_error(
                f"unknown rule {exc.args[0]!r}; see 'repro-lint rules'"
            )
        analyzer = Analyzer(rules)
    else:
        analyzer = Analyzer()
    findings, checked = analyzer.check_paths(paths)
    return _emit(findings, checked, args.format)


def _cmd_flow(args: argparse.Namespace) -> int:
    paths = [Path(p) for p in args.paths]
    for path in paths:
        if not path.exists():
            return _usage_error(f"no such file or directory: {path}")
    # Imported here so `repro-lint code` never pays for the call-graph
    # machinery it does not use.
    from repro.analysis.flow import (
        FlowAnalyzer,
        render_flow_json,
        render_flow_text,
    )

    result = FlowAnalyzer().check_paths(paths)
    if args.format == "json":
        print(render_flow_json(result))
    else:
        print(render_flow_text(result, report=args.report))
    return exit_code(result.findings)


def _spec_files(paths: Sequence[str]) -> List[Path] | None:
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(
                sorted(
                    p for suffix in _SPEC_SUFFIXES
                    for p in path.rglob(f"*{suffix}")
                )
            )
        elif path.exists():
            out.append(path)
        else:
            return None
    return out


def _cmd_spec(args: argparse.Namespace) -> int:
    files = _spec_files(args.paths)
    if files is None:
        missing = next(p for p in args.paths if not Path(p).exists())
        return _usage_error(f"no such file or directory: {missing}")
    if not files:
        return _usage_error(
            "no spec files (.json/.jsonl) found under the given paths"
        )
    findings: List[Finding] = []
    for path in files:
        try:
            findings.extend(check_spec_path(path, quick=args.quick))
        except OSError as exc:
            return _usage_error(f"cannot read {path}: {exc}")
    findings.sort()
    return _emit(findings, len(files), args.format)


def _cmd_rules(_args: argparse.Namespace) -> int:
    print("code rules (repro-lint code):")
    for rule in all_rules():
        scope = ", ".join(rule.scope) if rule.scope else "all repro modules"
        print(f"  {rule.name}: {rule.description} [scope: {scope}]")
    print("flow rules (repro-lint flow):")
    from repro.analysis.flow.names import FLOW_META_RULES, FLOW_RULES

    for name, description in FLOW_RULES.items():
        print(f"  {name}: {description}")
    print("meta rules (suppression machinery):")
    for name, description in META_RULES.items():
        print(f"  {name}: {description}")
    for name, description in FLOW_META_RULES.items():
        print(f"  {name}: {description}")
    print("spec rules (repro-lint spec):")
    for name, description in SPEC_RULES.items():
        print(f"  {name}: {description}")
    print(
        "suppress a code finding in place with\n"
        "  # repro-lint: disable=<rule>[,<rule>] -- <reason>\n"
        "(the reason is mandatory; unexplained suppressions are findings)"
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "code":
        return _cmd_code(args)
    if args.command == "flow":
        return _cmd_flow(args)
    if args.command == "spec":
        return _cmd_spec(args)
    if args.command == "rules":
        return _cmd_rules(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
