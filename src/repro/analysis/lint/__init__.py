"""``repro.analysis.lint`` — static analysis for the ROTA reproduction.

ROTA decides *ahead of time* whether a deadline-constrained computation
can be accommodated; this package gives the repository the same
ahead-of-time guarantees about its own code and inputs.  Two rule
families plug into one engine:

* **code rules** (:mod:`.rules_code`, :mod:`.layering`) protect the
  replay-verify and exact-arithmetic contracts — no wall clocks or
  ambient randomness in deterministic modules, no float arithmetic in
  the exact Theorem-1..4 paths, imports pointing strictly down the
  declared layering map;
* **spec rules** (:mod:`.spec`) validate workload scenarios, event
  traces, fault plans, ROTA formulas, and admission requests before any
  simulation touches them, including Allen path-consistency of temporal
  constraint networks.

Run it as ``repro-lint`` (console script) or
``python -m repro.analysis.lint``; see docs/static-analysis.md for the
rule catalogue and the suppression policy.
"""

from repro.analysis.lint.engine import (
    Analyzer,
    Finding,
    Rule,
    SourceFile,
    all_rules,
    exit_code,
    get_rules,
    known_rule_names,
    module_of,
    package_of,
    register,
)
from repro.analysis.lint.layering import (
    LAYERS,
    PACKAGE_OVERRIDES,
    SAME_LAYER_IMPORTS_OK,
    allowed_imports,
    import_violation,
    layer_of,
)
from repro.analysis.lint.reporters import (
    FINDING_FIELDS,
    JSON_SCHEMA_VERSION,
    render_json,
    render_text,
)
from repro.analysis.lint.spec import (
    SPEC_RULES,
    check_request_document,
    check_spec_document,
    check_spec_path,
    check_temporal_constraints,
    check_trace_text,
)
from repro.analysis.lint.suppressions import (
    META_RULES,
    Suppression,
    parse_suppressions,
)

__all__ = [
    "Analyzer",
    "Finding",
    "Rule",
    "SourceFile",
    "all_rules",
    "exit_code",
    "get_rules",
    "known_rule_names",
    "module_of",
    "package_of",
    "register",
    "LAYERS",
    "PACKAGE_OVERRIDES",
    "SAME_LAYER_IMPORTS_OK",
    "allowed_imports",
    "import_violation",
    "layer_of",
    "FINDING_FIELDS",
    "JSON_SCHEMA_VERSION",
    "render_json",
    "render_text",
    "SPEC_RULES",
    "check_request_document",
    "check_spec_document",
    "check_spec_path",
    "check_temporal_constraints",
    "check_trace_text",
    "META_RULES",
    "Suppression",
    "parse_suppressions",
]
