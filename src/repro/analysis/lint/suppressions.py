"""Per-line suppression comments for ``repro-lint``.

A finding may be silenced only *in place* and only *with a reason*::

    EPSILON = 1e-9  # repro-lint: disable=float-literal -- sanctioned tolerance boundary

The grammar is deliberately rigid:

* ``repro-lint: disable=<rule>[,<rule>...]`` names the rule(s) being
  silenced on that physical line;
* everything after a literal ``--`` is the mandatory human reason.

A suppression without a reason does not suppress anything — it *is* a
finding (``suppression-missing-reason``), as is one naming a rule the
registry does not know (``suppression-unknown-rule``) or one that
silences nothing (``suppression-unused``).  This is what keeps the
repo's promise of "zero unexplained suppressions" checkable by machine.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Set, Tuple

#: Meta-rules emitted by the suppression machinery itself.  They are part
#: of the public rule namespace so reporters and the self-check fixtures
#: treat them like any other rule.
META_RULES: Dict[str, str] = {
    "parse-error": "the file does not parse as Python",
    "suppression-missing-reason": (
        "a suppression comment lacks the mandatory '-- reason' clause"
    ),
    "suppression-unknown-rule": (
        "a suppression comment names a rule the registry does not know"
    ),
    "suppression-unused": (
        "a suppression comment silences nothing on its line"
    ),
}

_PATTERN = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_-]+(?:\s*,\s*[A-Za-z0-9_-]+)*)"
    r"(?P<reason_clause>\s*--\s*(?P<reason>.*\S))?"
)


@dataclass
class Suppression:
    """One ``# repro-lint: disable=...`` comment on one physical line."""

    line: int
    rules: Tuple[str, ...]
    reason: str | None
    #: Rule names this suppression actually silenced (filled by the engine).
    used: Set[str] = field(default_factory=set)

    @property
    def has_reason(self) -> bool:
        return bool(self.reason and self.reason.strip())


def parse_suppressions(text: str) -> Dict[int, Suppression]:
    """All suppression comments in ``text``, keyed by 1-based line number.

    Only genuine ``#`` comments count: the pattern appearing inside a
    string or docstring (as in this module's own documentation) is inert.
    When the file does not even tokenize, a lexical line scan takes over
    so a suppression on a broken line is still reported rather than
    silently vanishing.
    """
    try:
        comments = [
            (token.start[0], token.string)
            for token in tokenize.generate_tokens(io.StringIO(text).readline)
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, SyntaxError, ValueError):
        comments = list(enumerate(text.splitlines(), start=1))
    out: Dict[int, Suppression] = {}
    for number, raw in comments:
        match = _PATTERN.search(raw)
        if match is None:
            continue
        rules = tuple(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        out[number] = Suppression(
            line=number, rules=rules, reason=match.group("reason")
        )
    return out
