"""CSV export for scores and sweeps.

Benchmarks print aligned tables; downstream analysis (spreadsheets,
plotting scripts) wants machine-readable rows.  Plain ``csv`` from the
standard library — no dependency creep.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import IO, Iterable, Sequence, Union

from repro.analysis.metrics import PolicyScore
from repro.analysis.sweep import Sweep

PathLike = Union[str, Path]

SCORE_FIELDS: Sequence[str] = (
    "policy",
    "arrivals",
    "admitted",
    "completed",
    "missed",
    "rejected",
    "precision",
    "admission_rate",
    "miss_rate",
    "goodput",
    "utilization",
)


def scores_to_csv(
    scores: Iterable[PolicyScore], destination: PathLike | IO[str] | None = None
) -> str:
    """Write score rows as CSV; returns the CSV text either way."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(SCORE_FIELDS)
    for score in scores:
        writer.writerow([getattr(score, field) for field in SCORE_FIELDS])
    text = buffer.getvalue()
    _maybe_write(text, destination)
    return text


def sweep_to_csv(
    sweep: Sweep,
    metric: str,
    destination: PathLike | IO[str] | None = None,
) -> str:
    """One metric's curves across the sweep grid, policies as columns."""
    policies = sorted(sweep.points[0].scores) if sweep.points else []
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow([sweep.parameter_name, *policies])
    for point in sweep.points:
        writer.writerow(
            [point.parameter, *(point.series(name, metric) for name in policies)]
        )
    text = buffer.getvalue()
    _maybe_write(text, destination)
    return text


def _maybe_write(text: str, destination: PathLike | IO[str] | None) -> None:
    if destination is None:
        return
    if hasattr(destination, "write"):
        destination.write(text)  # type: ignore[union-attr]
        return
    Path(destination).write_text(text)
