"""Plain-text table rendering for benchmark output.

Benchmarks print the same row/series structure a paper table would carry;
:func:`render_table` keeps that output aligned and diff-friendly without
pulling in any dependency.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.metrics import PolicyScore


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Fixed-width table with a header rule."""
    materialised = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in materialised:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


POLICY_HEADERS = (
    "policy",
    "arrivals",
    "admitted",
    "completed",
    "missed",
    "precision",
    "miss_rate",
    "utilization",
)


def policy_table(scores: Iterable[PolicyScore], *, title: str = "") -> str:
    """The canonical policy-comparison table."""
    rows = [
        (
            s.policy,
            s.arrivals,
            s.admitted,
            s.completed,
            s.missed,
            s.precision,
            s.miss_rate,
            s.utilization,
        )
        for s in scores
    ]
    return render_table(POLICY_HEADERS, rows, title=title)
