"""Outcome scoring and table rendering for the synthetic evaluation."""

from repro.analysis.metrics import (
    Confusion,
    PolicyScore,
    completed_demand,
    confusion,
    goodput_quantity,
    score,
)
from repro.analysis.audit import (
    assert_clean,
    audit_report,
    midrun_conservation_violations,
)
from repro.analysis.export import SCORE_FIELDS, scores_to_csv, sweep_to_csv
from repro.analysis.report import POLICY_HEADERS, policy_table, render_table
from repro.analysis.sweep import Sweep, SweepPoint, run_sweep

__all__ = [
    "Confusion",
    "PolicyScore",
    "completed_demand",
    "confusion",
    "goodput_quantity",
    "score",
    "assert_clean",
    "audit_report",
    "midrun_conservation_violations",
    "SCORE_FIELDS",
    "scores_to_csv",
    "sweep_to_csv",
    "Sweep",
    "SweepPoint",
    "run_sweep",
    "POLICY_HEADERS",
    "policy_table",
    "render_table",
]
