"""AST-derived whole-program call graph over the ``repro`` tree.

The single-file rules of :mod:`repro.analysis.lint.rules_code` see one
line at a time; everything here exists so the flow analyses can see one
*call chain* at a time.  :func:`build_program` parses every source once
(into the same :class:`~repro.analysis.lint.engine.SourceFile` the lint
engine uses), indexes every function, method, and class, and resolves
call sites through:

* **import aliases** — ``import x.y as z`` / ``from x import y as z``,
  including re-exports through package ``__init__`` modules;
* **methods** — ``self.m()`` / ``cls.m()`` resolved through the class
  and its declared bases (an approximate left-to-right MRO);
* **``super()`` dispatch** — resolved against the defining class's
  bases, skipping the class itself;
* **constructor typing** — ``v = SomeClass(...)`` and
  ``self.x = SomeClass(...)`` type the name, so later ``v.m()`` /
  ``self.x.m()`` edges resolve; parameter, variable, and return
  annotations naming repro classes type the same way;
* **properties** — reading ``obj.p`` where ``p`` is a ``@property``
  adds an edge to the getter (a read *is* a call);
* **lambdas** — a lambda body belongs to its enclosing function; nested
  ``def`` s become their own nodes joined by a ``defines`` edge (the
  closure usually escapes and runs on the caller's behalf — the
  conservative reading for taint).

Everything is static and deterministic; the documented blind spots
(``getattr`` strings, dicts of callables, monkey-patching) are listed in
docs/static-analysis.md.  Resolution *under*-approximates external
behaviour but never invents an edge that no syntactic path supports.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.flow.annotations import FlowAnnotation, parse_annotations
from repro.analysis.lint.engine import SourceFile, module_of
from repro.analysis.lint.suppressions import Suppression, parse_suppressions

#: Call-edge kinds.  ``defines`` joins a function to a nested function
#: it creates (the closure escapes, conservatively); ``property`` joins
#: an attribute *read* to the property getter it invokes.
EDGE_KINDS = ("call", "defines", "property")


@dataclass
class FunctionNode:
    """One function, method, property getter, or ``<module>`` body."""

    qname: str
    module: str
    path: str
    line: int
    name: str
    class_qname: Optional[str] = None
    is_property: bool = False
    #: dotted class qname of the return annotation, when it names a
    #: repro class (fills the type environment of callers)
    returns: Optional[str] = None
    #: resolved targets called from this body: (callee qname, line)
    calls: List[Tuple[str, int, str]] = field(default_factory=list)
    #: unresolved/external dotted calls: ("time.time", line)
    external_calls: List[Tuple[str, int]] = field(default_factory=list)
    #: ``os.environ[...]`` / ``os.environ.get`` style reads
    env_reads: List[Tuple[str, int]] = field(default_factory=list)
    #: lines of bare float literals in this body
    float_lines: List[int] = field(default_factory=list)


@dataclass
class ClassNode:
    """One class: methods, bases, attribute types, span."""

    qname: str
    module: str
    path: str
    line: int
    end_line: int
    name: str
    #: base-class references, resolved to qnames where possible
    bases: List[str] = field(default_factory=list)
    #: resolved decorator names (``repro.markers.checkpointable`` ...)
    decorators: List[str] = field(default_factory=list)
    methods: Dict[str, str] = field(default_factory=dict)
    properties: Set[str] = field(default_factory=set)
    #: ``self.X = SomeClass(...)`` -> class qname (constructor typing)
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: class-level tuples/lists of string constants (``_WIRE_STATE``)
    str_constants: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: every attribute ever assigned on ``self``, with first-sight line
    self_attrs: Dict[str, int] = field(default_factory=dict)


class Program:
    """The parsed repo: files, definitions, and the resolved call graph."""

    def __init__(self) -> None:
        self.files: Dict[str, SourceFile] = {}
        self.modules: Dict[str, SourceFile] = {}
        self.functions: Dict[str, FunctionNode] = {}
        self.classes: Dict[str, ClassNode] = {}
        #: per-module local scope: name -> qname or dotted import target
        self.scopes: Dict[str, Dict[str, str]] = {}
        self.annotations: Dict[str, Dict[int, FlowAnnotation]] = {}
        self.suppressions: Dict[str, Dict[int, Suppression]] = {}
        #: files that failed to parse: path -> (line, message)
        self.parse_errors: Dict[str, Tuple[int, str]] = {}
        self._mro_cache: Dict[str, Tuple[str, ...]] = {}

    # -- navigation ----------------------------------------------------
    def callees(self, qname: str) -> Iterator[Tuple[str, int, str]]:
        node = self.functions.get(qname)
        if node is not None:
            yield from node.calls

    def mro(self, class_qname: str) -> Tuple[str, ...]:
        """Approximate linearization: the class, then its bases depth-
        first left-to-right, deduplicated (C3 without the conflicts —
        exact for the single-inheritance repo this governs)."""
        cached = self._mro_cache.get(class_qname)
        if cached is not None:
            return cached
        seen: List[str] = []

        def visit(qname: str) -> None:
            if qname in seen or qname not in self.classes:
                return
            seen.append(qname)
            for base in self.classes[qname].bases:
                visit(base)

        visit(class_qname)
        out = tuple(seen)
        self._mro_cache[class_qname] = out
        return out

    def lookup_method(
        self, class_qname: str, name: str, *, skip_self: bool = False
    ) -> Optional[str]:
        for cls in self.mro(class_qname):
            if skip_self and cls == class_qname:
                continue
            found = self.classes[cls].methods.get(name)
            if found is not None:
                return found
        return None

    def lookup_attr_type(self, class_qname: str, attr: str) -> Optional[str]:
        for cls in self.mro(class_qname):
            found = self.classes[cls].attr_types.get(attr)
            if found is not None:
                return found
        return None

    def is_property(self, class_qname: str, attr: str) -> bool:
        return any(
            attr in self.classes[cls].properties
            for cls in self.mro(class_qname)
        )

    # -- name resolution -----------------------------------------------
    def resolve(
        self, module: str, dotted: str, _seen: Optional[Set[str]] = None
    ) -> Optional[str]:
        """Canonical qname for ``dotted`` as seen from ``module``.

        Returns a function/class qname when the chain lands on a known
        definition, an external dotted name (``time.time``) when the
        root is a non-repro import, or ``None`` for local variables and
        unresolvable chains.
        """
        seen = _seen if _seen is not None else set()
        key = f"{module}::{dotted}"
        if key in seen:
            return None
        seen.add(key)
        head, _, rest = dotted.partition(".")
        scope = self.scopes.get(module, {})
        target = scope.get(head)
        if target is None:
            return None
        full = f"{target}.{rest}" if rest else target
        return self._canonical(full, seen)

    def _canonical(
        self, dotted: str, seen: Set[str]
    ) -> Optional[str]:
        if dotted in self.functions or dotted in self.classes:
            return dotted
        if not dotted.startswith("repro"):
            return dotted  # external; matched against source sets
        # Peel trailing attributes until a known module prefix remains,
        # then chase re-exports (``from repro.x.y import Z`` surfaced
        # through ``repro.x.__init__``).
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules or prefix in self.scopes:
                rest = parts[cut:]
                resolved = self.resolve(prefix, ".".join(rest), seen)
                if resolved is not None:
                    return resolved
                break
        return dotted if dotted in self.modules else None


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def _python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    for path in paths:
        path = Path(path)
        if path.is_dir():
            yield from sorted(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        else:
            yield path


def build_program(
    paths: Sequence[str | Path],
    *,
    sources: Optional[Dict[str, str]] = None,
) -> Program:
    """Parse, index, and link.  ``sources`` maps extra in-memory files
    (``path -> text``), letting tests inject mutated modules."""
    program = Program()
    texts: List[Tuple[str, str]] = []
    for path in _python_files(paths):
        texts.append((str(path), path.read_text()))
    for path, text in (sources or {}).items():
        texts.append((path, text))
    for path, text in texts:
        _load_file(program, path, text)
    for path in sorted(program.files):
        _index_file(program, program.files[path])
    for path in sorted(program.files):
        _link_file(program, program.files[path])
    return program


def _load_file(program: Program, path: str, text: str) -> None:
    module = module_of(path)
    try:
        tree = ast.parse(text)
    except SyntaxError as exc:
        program.parse_errors[path] = (
            exc.lineno or 1,
            f"file does not parse: {exc.msg}",
        )
        return
    source = SourceFile(
        path=path,
        text=text,
        module=module,
        tree=tree,
        suppressions=parse_suppressions(text),
    )
    program.files[path] = source
    if module is not None:
        program.modules[module] = source
    program.annotations[path] = parse_annotations(text)
    program.suppressions[path] = source.suppressions


# -- pass 1: indexing ---------------------------------------------------
def _index_file(program: Program, source: SourceFile) -> None:
    module = source.module or source.path
    scope: Dict[str, str] = {}
    program.scopes[module] = scope
    for node in source.tree.body:
        _index_import(scope, node, module)
    module_fn = FunctionNode(
        qname=f"{module}.<module>",
        module=module,
        path=source.path,
        line=1,
        name="<module>",
    )
    program.functions[module_fn.qname] = module_fn
    for node in source.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _index_function(program, source, node, prefix=module, scope=scope)
            scope[node.name] = f"{module}.{node.name}"
        elif isinstance(node, ast.ClassDef):
            _index_class(program, source, node, prefix=module, scope=scope)
            scope[node.name] = f"{module}.{node.name}"


def _index_import(scope: Dict[str, str], node: ast.stmt, module: str) -> None:
    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.asname:
                scope[alias.asname] = alias.name
            else:
                root = alias.name.split(".")[0]
                scope[root] = root
    elif isinstance(node, ast.ImportFrom):
        base = _absolute_from(node, module)
        if base is None:
            return
        for alias in node.names:
            if alias.name == "*":
                continue
            scope[alias.asname or alias.name] = f"{base}.{alias.name}"


def _absolute_from(node: ast.ImportFrom, module: str) -> Optional[str]:
    if node.level == 0:
        return node.module
    base = module.split(".")
    if len(base) < node.level:
        return None
    prefix = base[: len(base) - node.level]
    if node.module:
        prefix = prefix + node.module.split(".")
    return ".".join(prefix) if prefix else None


def _index_function(
    program: Program,
    source: SourceFile,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    *,
    prefix: str,
    scope: Dict[str, str],
    class_qname: Optional[str] = None,
    is_property: bool = False,
) -> FunctionNode:
    qname = f"{prefix}.{node.name}"
    fn = FunctionNode(
        qname=qname,
        module=source.module or source.path,
        path=source.path,
        line=node.lineno,
        name=node.name,
        class_qname=class_qname,
        is_property=is_property,
    )
    program.functions[qname] = fn
    for child in node.body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _index_function(
                program, source, child,
                prefix=f"{qname}.<locals>", scope=scope,
            )
    return fn


def _decorator_name(expr: ast.expr) -> str:
    """Flat dotted text of a decorator expression (sans call parens)."""
    if isinstance(expr, ast.Call):
        expr = expr.func
    parts: List[str] = []
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    if isinstance(expr, ast.Name):
        parts.append(expr.id)
    return ".".join(reversed(parts))


def _index_class(
    program: Program,
    source: SourceFile,
    node: ast.ClassDef,
    *,
    prefix: str,
    scope: Dict[str, str],
) -> None:
    qname = f"{prefix}.{node.name}"
    cls = ClassNode(
        qname=qname,
        module=source.module or source.path,
        path=source.path,
        line=node.lineno,
        end_line=getattr(node, "end_lineno", node.lineno) or node.lineno,
        name=node.name,
        decorators=[_decorator_name(d) for d in node.decorator_list],
    )
    program.classes[qname] = cls
    for base in node.bases:
        dotted = _decorator_name(base)
        if dotted:
            cls.bases.append(dotted)  # resolved in the link pass
    for child in node.body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            decorators = [_decorator_name(d) for d in child.decorator_list]
            prop = any(
                d in ("property", "functools.cached_property", "cached_property")
                or d.endswith(".getter")
                for d in decorators
            )
            fn = _index_function(
                program, source, child,
                prefix=qname, scope=scope,
                class_qname=qname, is_property=prop,
            )
            cls.methods[child.name] = fn.qname
            if prop:
                cls.properties.add(child.name)
        elif isinstance(child, ast.Assign):
            for target in child.targets:
                if isinstance(target, ast.Name):
                    strings = _string_tuple(child.value)
                    if strings is not None:
                        cls.str_constants[target.id] = strings
        elif isinstance(child, ast.ClassDef):
            _index_class(program, source, child, prefix=qname, scope=scope)


def _string_tuple(expr: ast.expr) -> Optional[Tuple[str, ...]]:
    if not isinstance(expr, (ast.Tuple, ast.List)):
        return None
    out: List[str] = []
    for element in expr.elts:
        if isinstance(element, ast.Constant) and isinstance(element.value, str):
            out.append(element.value)
        else:
            return None
    return tuple(out)


# -- pass 2: linking ----------------------------------------------------
def _link_file(program: Program, source: SourceFile) -> None:
    module = source.module or source.path
    module_fn = program.functions[f"{module}.<module>"]
    _resolve_class_bases(program, module)
    _collect_attr_types(program, source, module)
    linker = _Linker(program, module)
    # Module-level body: everything outside function bodies, class
    # bodies included (decorators, dataclass field defaults, and
    # class-level assignments all execute at import time).
    linker.link(module_fn, _module_level_nodes(source.tree), self_class=None)
    # Decorator application is an import-time call, whether written with
    # parens (a Call node) or bare (just a Name/Attribute).
    for node in ast.walk(source.tree):
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            for decorator in node.decorator_list:
                linker.link_decorator(module_fn, decorator)
    for node in source.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _link_function(program, linker, node, prefix=module, self_class=None)
        elif isinstance(node, ast.ClassDef):
            cls_qname = f"{module}.{node.name}"
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    _link_function(
                        program, linker, child,
                        prefix=cls_qname, self_class=cls_qname,
                    )


def _resolve_class_bases(program: Program, module: str) -> None:
    for cls in program.classes.values():
        if cls.module != module:
            continue
        resolved: List[str] = []
        for base in cls.bases:
            target = program.resolve(module, base)
            resolved.append(target if target in program.classes else base)
        cls.bases = [b for b in resolved if b in program.classes]


def _collect_attr_types(
    program: Program, source: SourceFile, module: str
) -> None:
    """Constructor/annotation typing of ``self.X`` attributes, plus the
    class-wide ``self.X`` assignment census the coverage proof uses."""
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        qname = _enclosing_class_qname(program, module, node)
        cls = program.classes.get(qname)
        if cls is None:
            continue
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for stmt in ast.walk(method):
                attr_and_value: Optional[Tuple[ast.Attribute, Optional[ast.expr]]]
                attr_and_value = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) >= 1:
                    for target in stmt.targets:
                        if _is_self_attr(target):
                            attr_and_value = (target, stmt.value)  # type: ignore[arg-type]
                            break
                elif isinstance(stmt, ast.AnnAssign) and _is_self_attr(stmt.target):
                    attr_and_value = (stmt.target, stmt.value)  # type: ignore[arg-type]
                elif isinstance(stmt, ast.AugAssign) and _is_self_attr(stmt.target):
                    attr_and_value = (stmt.target, None)  # type: ignore[arg-type]
                if attr_and_value is None:
                    continue
                target_attr, value = attr_and_value
                name = target_attr.attr
                cls.self_attrs.setdefault(name, target_attr.lineno)
                typed = _constructor_class(program, module, value)
                if typed is not None:
                    cls.attr_types.setdefault(name, typed)
                if isinstance(stmt, ast.AnnAssign) and stmt.annotation is not None:
                    annotated = _annotation_class(program, module, stmt.annotation)
                    if annotated is not None:
                        cls.attr_types.setdefault(name, annotated)


def _enclosing_class_qname(
    program: Program, module: str, node: ast.ClassDef
) -> str:
    # Nested classes get dotted names in the index pass; reconstruct by
    # matching (module, name, line).
    for qname, cls in program.classes.items():
        if cls.module == module and cls.line == node.lineno and cls.name == node.name:
            return qname
    return f"{module}.{node.name}"


def _is_self_attr(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _constructor_class(
    program: Program, module: str, value: Optional[ast.expr]
) -> Optional[str]:
    if not isinstance(value, ast.Call):
        return None
    dotted = _dotted_of(value.func)
    if dotted is None:
        return None
    resolved = program.resolve(module, dotted)
    return resolved if resolved in program.classes else None


def _annotation_class(
    program: Program, module: str, annotation: ast.expr
) -> Optional[str]:
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        dotted = annotation.value.strip()
    else:
        dotted = _dotted_of(annotation)
        if dotted is None and isinstance(annotation, ast.Subscript):
            # Optional[X] / "Optional[X]" style: use the head argument.
            inner = annotation.slice
            dotted = _dotted_of(inner) if not isinstance(inner, ast.Tuple) else None
    if not dotted:
        return None
    resolved = program.resolve(module, dotted)
    return resolved if resolved in program.classes else None


def _dotted_of(expr: ast.expr) -> Optional[str]:
    parts: List[str] = []
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    if not isinstance(expr, ast.Name):
        return None
    parts.append(expr.id)
    return ".".join(reversed(parts))


def _module_level_nodes(tree: ast.AST) -> List[ast.AST]:
    out: List[ast.AST] = []

    def visit(node: ast.AST, at_class_level: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # decorators handled separately in _link_file
            if isinstance(child, ast.ClassDef):
                visit(child, True)
                continue
            out.append(child)
            visit(child, at_class_level)

    visit(tree, False)
    return out


def _function_body_nodes(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> List[ast.AST]:
    """Every node in the body, lambdas included, nested defs excluded."""
    out: List[ast.AST] = []

    def visit(parent: ast.AST) -> None:
        for child in ast.iter_child_nodes(parent):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            out.append(child)
            visit(child)

    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        out.append(stmt)
        visit(stmt)
    return out


def _link_function(
    program: Program,
    linker: "_Linker",
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    *,
    prefix: str,
    self_class: Optional[str],
) -> None:
    qname = f"{prefix}.{node.name}"
    fn = program.functions.get(qname)
    if fn is None:  # pragma: no cover - index and link walk the same tree
        return
    fn.returns = (
        _annotation_class(program, linker.module, node.returns)
        if node.returns is not None
        else None
    )
    linker.link(fn, _function_body_nodes(node), self_class=self_class, args=node.args)
    for child in node.body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested = f"{qname}.<locals>.{child.name}"
            if nested in program.functions:
                fn.calls.append((nested, child.lineno, "defines"))
                _link_function(
                    program, linker, child,
                    prefix=f"{qname}.<locals>", self_class=self_class,
                )


class _Linker:
    """Per-module call resolution with a light type environment."""

    def __init__(self, program: Program, module: str) -> None:
        self.program = program
        self.module = module

    # ------------------------------------------------------------------
    def link(
        self,
        fn: FunctionNode,
        body: List[ast.AST],
        *,
        self_class: Optional[str],
        args: Optional[ast.arguments] = None,
    ) -> None:
        env = self._type_env(body, self_class, args)
        for node in body:
            if isinstance(node, ast.Call):
                self._link_call(fn, node, self_class, env)
            elif isinstance(node, ast.Attribute) and not isinstance(
                getattr(node, "ctx", None), ast.Store
            ):
                self._link_property_read(fn, node, self_class, env)
            elif isinstance(node, ast.Subscript):
                dotted = _dotted_of(node.value)
                if dotted is not None:
                    resolved = self.program.resolve(self.module, dotted)
                    if resolved == "os.environ":
                        fn.env_reads.append(("os.environ[...]", node.lineno))
            elif isinstance(node, ast.Constant) and isinstance(node.value, float):
                fn.float_lines.append(node.lineno)

    # ------------------------------------------------------------------
    def _type_env(
        self,
        body: List[ast.AST],
        self_class: Optional[str],
        args: Optional[ast.arguments],
    ) -> Dict[str, str]:
        env: Dict[str, str] = {}
        if args is not None:
            every = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            for arg in every:
                if arg.annotation is None:
                    continue
                cls = _annotation_class(self.program, self.module, arg.annotation)
                if cls is not None:
                    env[arg.arg] = cls
        for node in body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    cls = _constructor_class(self.program, self.module, node.value)
                    if cls is not None:
                        env.setdefault(target.id, cls)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                cls = _annotation_class(self.program, self.module, node.annotation)
                if cls is not None:
                    env.setdefault(node.target.id, cls)
        return env

    def _infer(
        self,
        expr: ast.expr,
        self_class: Optional[str],
        env: Dict[str, str],
    ) -> Optional[str]:
        """Class qname of ``expr``'s value, when statically knowable."""
        if isinstance(expr, ast.Name):
            if expr.id in ("self", "cls") and self_class is not None:
                return self_class
            return env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            owner = self._infer(expr.value, self_class, env)
            if owner is not None:
                typed = self.program.lookup_attr_type(owner, expr.attr)
                if typed is not None:
                    return typed
                getter = self.program.lookup_method(owner, expr.attr)
                if getter is not None and self.program.is_property(
                    owner, expr.attr
                ):
                    return self.program.functions[getter].returns
            return None
        if isinstance(expr, ast.Call):
            target = self._resolve_call_target(expr, self_class, env)
            if target is None:
                return None
            if target in self.program.classes:
                return target
            fn = self.program.functions.get(target)
            return fn.returns if fn is not None else None
        return None

    # ------------------------------------------------------------------
    def link_decorator(self, fn: FunctionNode, expr: ast.expr) -> None:
        """One decorator application, parenthesised or bare."""
        if isinstance(expr, ast.Call):
            self._link_call(fn, expr, None, {})
            return
        dotted = _dotted_of(expr)
        if dotted is None:
            return
        target = self.program.resolve(self.module, dotted)
        if target is None:
            return
        if target in self.program.functions:
            fn.calls.append((target, expr.lineno, "call"))
        elif target not in self.program.classes:
            fn.external_calls.append((target, expr.lineno))

    # ------------------------------------------------------------------
    def _resolve_call_target(
        self,
        node: ast.Call,
        self_class: Optional[str],
        env: Dict[str, str],
    ) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Name):
            return self.program.resolve(self.module, func.id)
        if not isinstance(func, ast.Attribute):
            return None
        # super().m()
        if (
            isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
            and self_class is not None
        ):
            return self.program.lookup_method(
                self_class, func.attr, skip_self=True
            )
        dotted = _dotted_of(func)
        if dotted is not None:
            resolved = self.program.resolve(self.module, dotted)
            if resolved is not None:
                return resolved
        owner = self._infer(func.value, self_class, env)
        if owner is not None:
            return self.program.lookup_method(owner, func.attr)
        return None

    def _link_call(
        self,
        fn: FunctionNode,
        node: ast.Call,
        self_class: Optional[str],
        env: Dict[str, str],
    ) -> None:
        target = self._resolve_call_target(node, self_class, env)
        line = node.lineno
        if target is None:
            return
        program = self.program
        if target in program.classes:
            # Instantiation runs __init__ (and, for dataclasses that
            # validate themselves, __post_init__).
            for hook in ("__init__", "__post_init__"):
                method = program.lookup_method(target, hook)
                if method is not None:
                    fn.calls.append((method, line, "call"))
            return
        if target in program.functions:
            fn.calls.append((target, line, "call"))
            return
        fn.external_calls.append((target, line))

    def _link_property_read(
        self,
        fn: FunctionNode,
        node: ast.Attribute,
        self_class: Optional[str],
        env: Dict[str, str],
    ) -> None:
        owner = self._infer(node.value, self_class, env)
        if owner is None or not self.program.is_property(owner, node.attr):
            return
        getter = self.program.lookup_method(owner, node.attr)
        if getter is not None:
            fn.calls.append((getter, node.lineno, "property"))
