"""Transitive nondeterminism and exactness taint.

The single-line rules (``wall-clock``, ``unseeded-random``,
``float-literal``) already forbid *direct* violations inside the
governed modules; this pass closes the interprocedural gap.  A helper in
``repro.intervals`` that calls ``time.time()`` is legal in isolation —
until ``repro.system`` calls the helper, at which point the replay
contract is broken two hops away from any governed file.

Propagation runs *backwards* over the call graph: every function that
directly touches a source is tainted, every caller of a tainted
function is tainted, and functions in the sanctioned transit modules
(``repro.observability`` — whose clock readings never feed back into
simulated state — and, for exactness, the declared float64 kernels)
absorb taint instead of carrying it.  Findings are reported at the
**boundary edge**: the call *from* a governed-module function *to* a
tainted function outside the governed scope, so the direct-call case
stays the line rules' business and nothing is double-reported.  Each
finding carries the full shortest witness chain
``caller → hop → … → source`` with ``path:line`` anchors.

A source line sanctioned by a reasoned ``# repro-lint: disable=`` naming
the matching line rule *or* the flow rule does not seed taint — the
human already vouched for it once; flow trusts the same sanction.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.flow.callgraph import FunctionNode, Program
from repro.analysis.lint.engine import Finding
from repro.analysis.lint.rules_code import (
    _AMBIENT_RANDOM_CALLS,
    _AMBIENT_RANDOM_PREFIXES,
    _CLOCK_CALLS,
    DETERMINISTIC_MODULES,
    EXACT_MODULES,
    INEXACT_KERNELS,
)

#: Modules whose functions absorb nondeterminism taint instead of
#: carrying it: the observability registry's clock reads are sanctioned
#: because their readings are strictly *telemetry* (PR 5 contract).
NONDET_EXEMPT_TRANSIT: Tuple[str, ...] = ("repro.observability",)

#: Modules whose functions absorb exactness taint: the declared float64
#: kernels (floats are their job) and telemetry (floats never flow back).
EXACT_EXEMPT_TRANSIT: Tuple[str, ...] = INEXACT_KERNELS + (
    "repro.observability",
)

#: Environment reads: no line rule owns these, so flow reports even the
#: direct (chain-length-zero) case.
_ENV_CALLS = frozenset({"os.getenv", "os.environ.get", "os.getenvb"})


@dataclass(frozen=True)
class TaintSource:
    """Why a function is directly tainted."""

    kind: str  # "clock" | "random" | "entropy" | "env" | "float"
    detail: str  # e.g. "time.time()" / "float literal 0.5"
    line: int


def _in_modules(module: str, prefixes: Sequence[str]) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in prefixes
    )


def _sanctioned(
    program: Program, fn: FunctionNode, line: int, rule_names: Sequence[str]
) -> bool:
    suppression = program.suppressions.get(fn.path, {}).get(line)
    if suppression is None or not suppression.has_reason:
        return False
    if not any(name in suppression.rules for name in rule_names):
        return False
    # Mark flow-rule sanctions used so they cannot go stale silently;
    # line-rule sanctions are marked by the line rules themselves.
    for name in suppression.rules:
        if name.startswith("flow-"):
            suppression.used.add(name)
    return True


def classify_external(dotted: str) -> Optional[Tuple[str, str]]:
    """``(kind, human detail)`` when ``dotted`` is a nondeterminism
    source, else ``None``.  ``random.Random`` / seeded ``default_rng``
    are the sanctioned constructors and never sources (the line rule
    polices their seed arguments where it matters)."""
    if dotted in _CLOCK_CALLS:
        return "clock", f"{dotted}() reads the host clock"
    if dotted == "random.SystemRandom" or dotted in _AMBIENT_RANDOM_CALLS:
        return "entropy", f"{dotted}() draws OS entropy"
    if dotted.startswith("random.") and dotted not in (
        "random.Random",
        "random.SystemRandom",
    ):
        return "random", f"{dotted}() uses the process-global RNG"
    if dotted.startswith(_AMBIENT_RANDOM_PREFIXES):
        if dotted == "numpy.random.default_rng":
            return None  # seeded-or-not is the line rule's call
        return "entropy", f"{dotted}() is ambient randomness"
    if dotted in _ENV_CALLS or dotted.startswith("os.environ."):
        return "env", f"{dotted}() reads the process environment"
    return None


def nondet_sources(program: Program, fn: FunctionNode) -> List[TaintSource]:
    out: List[TaintSource] = []
    for dotted, line in fn.external_calls:
        classified = classify_external(dotted)
        if classified is None:
            continue
        kind, detail = classified
        line_rule = {
            "clock": "wall-clock",
            "random": "unseeded-random",
            "entropy": "unseeded-random",
            "env": "flow-nondeterminism",  # no line rule owns env reads
        }[kind]
        if _sanctioned(program, fn, line, (line_rule, "flow-nondeterminism")):
            continue
        out.append(TaintSource(kind=kind, detail=detail, line=line))
    for detail, line in fn.env_reads:
        if _sanctioned(program, fn, line, ("flow-nondeterminism",)):
            continue
        out.append(
            TaintSource(
                kind="env",
                detail=f"{detail} reads the process environment",
                line=line,
            )
        )
    return out


def float_sources(program: Program, fn: FunctionNode) -> List[TaintSource]:
    out: List[TaintSource] = []
    for line in fn.float_lines:
        if _sanctioned(program, fn, line, ("float-literal", "flow-exactness")):
            continue
        out.append(TaintSource(kind="float", detail="bare float literal", line=line))
    return out


class _TaintMap:
    """Backward-propagated taint with witness reconstruction."""

    def __init__(
        self,
        program: Program,
        direct: Dict[str, List[TaintSource]],
        exempt_transit: Sequence[str],
    ) -> None:
        self.program = program
        self.direct = direct
        self.exempt = tuple(exempt_transit)
        #: qname -> (next hop qname or None for a direct source,
        #:           call line in qname that continues the chain,
        #:           the source at the chain's end)
        self.witness: Dict[str, Tuple[Optional[str], int, TaintSource]] = {}
        self._propagate()

    def _carries(self, qname: str) -> bool:
        fn = self.program.functions.get(qname)
        return fn is not None and not _in_modules(fn.module, self.exempt)

    def _propagate(self) -> None:
        program = self.program
        callers: Dict[str, List[Tuple[str, int]]] = {}
        for fn in program.functions.values():
            for callee, line, _kind in fn.calls:
                callers.setdefault(callee, []).append((fn.qname, line))
        queue: deque[str] = deque()
        for qname in sorted(self.direct):
            if not self._carries(qname):
                continue
            sources = self.direct[qname]
            if not sources:
                continue
            first = min(sources, key=lambda s: s.line)
            self.witness[qname] = (None, first.line, first)
            queue.append(qname)
        # BFS from the sources outward gives every tainted function a
        # *shortest* witness chain, deterministically (sorted seeds,
        # FIFO worklist, first-writer-wins).
        while queue:
            current = queue.popleft()
            source = self.witness[current][2]
            for caller, line in sorted(callers.get(current, [])):
                if caller in self.witness or not self._carries(caller):
                    continue
                self.witness[caller] = (current, line, source)
                queue.append(caller)

    def tainted(self, qname: str) -> bool:
        return qname in self.witness

    def chain(self, qname: str) -> List[Tuple[str, str, int]]:
        """``(qname, path, line)`` hops from ``qname`` down to the source
        line; the last entry anchors the source itself."""
        out: List[Tuple[str, str, int]] = []
        cursor: Optional[str] = qname
        while cursor is not None:
            nxt, line, _source = self.witness[cursor]
            fn = self.program.functions[cursor]
            out.append((cursor, fn.path, line))
            cursor = nxt
        return out


def _render_chain(
    caller: FunctionNode,
    call_line: int,
    hops: List[Tuple[str, str, int]],
    source: TaintSource,
) -> str:
    parts = [f"{caller.qname} ({caller.path}:{call_line})"]
    for qname, path, line in hops:
        parts.append(f"{qname} ({path}:{line})")
    parts.append(f"{source.detail} at {hops[-1][1]}:{hops[-1][2]}")
    return " -> ".join(parts)


def _boundary_findings(
    program: Program,
    taint: _TaintMap,
    *,
    rule: str,
    sink_modules: Sequence[str],
    sink_exempt: Sequence[str],
    contract: str,
) -> Iterator[Finding]:
    seen: Set[Tuple[str, int, str]] = set()
    for qname in sorted(program.functions):
        fn = program.functions[qname]
        if not _in_modules(fn.module, sink_modules):
            continue
        if sink_exempt and _in_modules(fn.module, sink_exempt):
            continue
        for callee, line, _kind in fn.calls:
            target = program.functions.get(callee)
            if target is None or not taint.tainted(callee):
                continue
            if _in_modules(target.module, sink_modules) and not (
                sink_exempt and _in_modules(target.module, sink_exempt)
            ):
                continue  # intra-scope hop; report at the true boundary
            key = (qname, line, callee)
            if key in seen:
                continue
            seen.add(key)
            hops = taint.chain(callee)
            source = taint.witness[callee][2]
            yield Finding(
                path=fn.path,
                line=line,
                column=1,
                rule=rule,
                message=(
                    f"call into {callee} transitively reaches a source "
                    f"({source.detail}), {contract}; witness: "
                    + _render_chain(fn, line, hops, source)
                ),
            )


def nondeterminism_findings(
    program: Program,
    *,
    sink_modules: Sequence[str] = DETERMINISTIC_MODULES,
) -> Iterator[Finding]:
    direct = {
        qname: nondet_sources(program, fn)
        for qname, fn in program.functions.items()
    }
    taint = _TaintMap(program, direct, NONDET_EXEMPT_TRANSIT)
    yield from _boundary_findings(
        program,
        taint,
        rule="flow-nondeterminism",
        sink_modules=sink_modules,
        sink_exempt=(),
        contract=(
            "which the replay-verify contract of deterministic modules "
            "forbids at any call depth"
        ),
    )
    # Direct environment reads inside the governed modules: no line rule
    # owns them, so the chain-length-zero case is flow's to report.
    for qname in sorted(program.functions):
        fn = program.functions[qname]
        if not _in_modules(fn.module, sink_modules):
            continue
        for source in direct.get(qname, ()):
            if source.kind != "env":
                continue
            yield Finding(
                path=fn.path,
                line=source.line,
                column=1,
                rule="flow-nondeterminism",
                message=(
                    f"{source.detail} inside deterministic module "
                    f"{fn.module}; configuration must arrive through "
                    "explicit plan/scenario parameters, never ambient "
                    "process state"
                ),
            )


def exactness_findings(
    program: Program,
    *,
    sink_modules: Sequence[str] = EXACT_MODULES,
) -> Iterator[Finding]:
    direct = {
        qname: float_sources(program, fn)
        for qname, fn in program.functions.items()
    }
    taint = _TaintMap(program, direct, EXACT_EXEMPT_TRANSIT)
    yield from _boundary_findings(
        program,
        taint,
        rule="flow-exactness",
        sink_modules=sink_modules,
        sink_exempt=INEXACT_KERNELS,
        contract=(
            "smuggling rounding into the int/Fraction arithmetic the "
            "Theorem 1-4 procedures rely on"
        ),
    )
