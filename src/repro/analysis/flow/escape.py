"""Shared-state escape analysis for the enclave-parallel packages.

The ROADMAP's parallel-DES item wants one simulator (or thread) per
enclave.  That is only sound if no state *escapes* an enclave through a
module-level alias: a module-level dict is process-global, an ambient
singleton instance is shared by every enclave that imports it, and a
``global`` statement is a write to neither-yours-nor-mine memory.  This
pass inventories every such escape hatch in the packages the parallel
plan would shard (``repro.system``, ``repro.encapsulation``,
``repro.decision``) and emits two artifacts:

* **findings** (rule ``flow-shared-state``) for the hard escapes —
  module-level mutable containers and repro-class singleton instances,
  class-level mutable defaults, and ``global`` statements.  These block
  the gate unless carrying a reasoned suppression (a deliberate ambient
  object is a *decision*, and decisions get written down);
* a ranked **isolation report** (also covering the soft, sanctioned
  reads such as ``get_registry()``) that is the work-list for the
  parallel-DES refactor: rank 1 must move into per-enclave state, rank
  2 must become instance state or parameters, rank 3 is safe if the
  ambient object stays read-only per process.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.flow.callgraph import Program, _dotted_of
from repro.analysis.lint.engine import Finding, SourceFile

#: Packages the parallel per-enclave simulator would shard.
ESCAPE_SCOPE: Tuple[str, ...] = (
    "repro.system",
    "repro.encapsulation",
    "repro.decision",
)

#: Constructors whose result is shared mutable state at module level.
_MUTABLE_CALLS = frozenset(
    {
        "dict",
        "list",
        "set",
        "bytearray",
        "collections.defaultdict",
        "collections.deque",
        "collections.Counter",
        "collections.OrderedDict",
        "itertools.count",
        "threading.Lock",
        "threading.RLock",
        "queue.Queue",
    }
)

#: Sanctioned ambient accessors; reads are rank-3 report entries, not
#: findings (the registry contract keeps telemetry out of state).
_AMBIENT_ACCESSORS = frozenset(
    {
        "repro.observability.metrics.get_registry",
        "repro.observability.metrics.set_registry",
        "repro.observability.metrics.use_registry",
    }
)


@dataclass(frozen=True, order=True)
class IsolationEntry:
    """One row of the ranked isolation report (lower rank = worse)."""

    rank: int
    module: str
    path: str
    line: int
    name: str
    kind: str
    detail: str

    def render(self) -> str:
        return (
            f"  [rank {self.rank}] {self.path}:{self.line} "
            f"{self.name} ({self.kind}): {self.detail}"
        )


def _in_scope(module: Optional[str], scope: Sequence[str]) -> bool:
    return module is not None and any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in scope
    )


def _mutable_value(
    program: Program, module: str, value: ast.expr
) -> Optional[str]:
    """Human description when ``value`` builds shared mutable state."""
    if isinstance(value, (ast.List, ast.ListComp)):
        return "module-level list"
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "module-level dict"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "module-level set"
    if isinstance(value, ast.Call):
        dotted = _dotted_of(value.func)
        if dotted is None:
            return None
        resolved = program.resolve(module, dotted)
        if resolved is None:
            # Unimported bare name: the builtin constructors.
            resolved = dotted if dotted in _MUTABLE_CALLS else None
        if resolved is None:
            return None
        if resolved in _MUTABLE_CALLS:
            return f"module-level {resolved}(...)"
        if resolved in program.classes:
            return f"ambient singleton instance of {resolved}"
    return None


def _module_assigns(
    source: SourceFile,
) -> Iterator[Tuple[str, ast.expr, int]]:
    for node in source.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                yield target.id, node.value, node.lineno
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                yield node.target.id, node.value, node.lineno


def _class_level_assigns(
    source: SourceFile,
) -> Iterator[Tuple[str, str, ast.expr, int]]:
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for child in node.body:
            if isinstance(child, ast.Assign) and len(child.targets) == 1:
                target = child.targets[0]
                if isinstance(target, ast.Name):
                    yield node.name, target.id, child.value, child.lineno


def escape_findings_and_report(
    program: Program,
    *,
    scope: Sequence[str] = ESCAPE_SCOPE,
) -> Tuple[List[Finding], List[IsolationEntry]]:
    findings: List[Finding] = []
    report: List[IsolationEntry] = []
    for path in sorted(program.files):
        source = program.files[path]
        module = source.module
        if not _in_scope(module, scope):
            continue
        assert module is not None
        for name, value, line in _module_assigns(source):
            if name.startswith("__") and name.endswith("__"):
                continue  # export/metadata dunders, written once at import
            detail = _mutable_value(program, module, value)
            if detail is None:
                continue
            findings.append(
                Finding(
                    path=path,
                    line=line,
                    column=1,
                    rule="flow-shared-state",
                    message=(
                        f"{detail} '{name}' is process-global state in "
                        f"enclave-scoped module {module}; every enclave "
                        "of a parallel run would alias it — move it into "
                        "per-enclave instance state"
                    ),
                )
            )
            report.append(
                IsolationEntry(
                    rank=1,
                    module=module,
                    path=path,
                    line=line,
                    name=name,
                    kind="module-global",
                    detail=detail,
                )
            )
        for cls_name, attr, value, line in _class_level_assigns(source):
            detail = _mutable_value(program, module, value)
            if detail is None:
                continue
            findings.append(
                Finding(
                    path=path,
                    line=line,
                    column=1,
                    rule="flow-shared-state",
                    message=(
                        f"class-level mutable default {cls_name}.{attr} "
                        f"({detail}) is shared by every instance across "
                        "every enclave; initialise it in __init__"
                    ),
                )
            )
            report.append(
                IsolationEntry(
                    rank=2,
                    module=module,
                    path=path,
                    line=line,
                    name=f"{cls_name}.{attr}",
                    kind="class-default",
                    detail=detail,
                )
            )
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Global):
                names = ", ".join(node.names)
                findings.append(
                    Finding(
                        path=path,
                        line=node.lineno,
                        column=1,
                        rule="flow-shared-state",
                        message=(
                            f"'global {names}' writes process-global state "
                            f"from enclave-scoped module {module}; thread "
                            "the value through explicit state instead"
                        ),
                    )
                )
                report.append(
                    IsolationEntry(
                        rank=2,
                        module=module,
                        path=path,
                        line=node.lineno,
                        name=names,
                        kind="global-stmt",
                        detail="global statement",
                    )
                )
    _ambient_reads(program, scope, report)
    report.sort()
    return findings, report


def _ambient_reads(
    program: Program, scope: Sequence[str], report: List[IsolationEntry]
) -> None:
    seen = set()
    for qname in sorted(program.functions):
        fn = program.functions[qname]
        if not _in_scope(fn.module, scope):
            continue
        for callee, line, _kind in fn.calls:
            if callee not in _AMBIENT_ACCESSORS:
                continue
            key = (fn.path, line)
            if key in seen:
                continue
            seen.add(key)
            report.append(
                IsolationEntry(
                    rank=3,
                    module=fn.module,
                    path=fn.path,
                    line=line,
                    name=callee.rsplit(".", 1)[-1],
                    kind="ambient-read",
                    detail=(
                        "sanctioned registry access; safe while the "
                        "ambient registry stays read-only per process"
                    ),
                )
            )
