"""The ``# repro-flow:`` annotation family.

Annotations are the flow analyses' positive counterpart to the
``# repro-lint: disable=`` suppressions: instead of silencing a finding
they *discharge a proof obligation* — today the only directive is::

    self._cache = {}  # repro-flow: derivable=_cache -- rebuilt lazily on restore

which tells the checkpoint-coverage proof that the named attribute is
deliberately absent from the class's snapshot methods because a restore
can rederive (or safely reset) it.  The grammar mirrors the suppression
grammar deliberately:

* ``repro-flow: <directive>=<argument>`` names what is being sanctioned;
* everything after a literal ``--`` is the mandatory human reason.

And the same self-policing meta-rules apply (see
:data:`repro.analysis.flow.names.FLOW_META_RULES`): a reasonless
annotation discharges nothing and is itself a finding, as is one using
an unknown directive or one that sanctions nothing — so stale
annotations surface the moment the snapshot method starts covering the
attribute they excuse.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Set

from repro.analysis.lint.engine import Finding
from repro.analysis.flow.names import FLOW_META_RULES  # noqa: F401  (re-export)

#: Directives the analyzer understands, with the analyses that consume
#: them.  Growing the family means growing this map, deliberately.
KNOWN_DIRECTIVES = ("derivable",)

_PATTERN = re.compile(
    r"#\s*repro-flow:\s*(?P<directive>[A-Za-z0-9_-]+)\s*=\s*"
    r"(?P<argument>[A-Za-z0-9_.,-]+)"
    r"(?P<reason_clause>\s*--\s*(?P<reason>.*\S))?"
)


@dataclass
class FlowAnnotation:
    """One ``# repro-flow: <directive>=<argument>`` comment."""

    line: int
    directive: str
    argument: str
    reason: str | None
    #: set by the analyses that consumed the annotation
    used: bool = field(default=False)

    @property
    def has_reason(self) -> bool:
        return bool(self.reason and self.reason.strip())


def parse_annotations(text: str) -> Dict[int, FlowAnnotation]:
    """All ``# repro-flow:`` comments in ``text``, keyed by 1-based line.

    Only genuine ``#`` comments count (the pattern inside a docstring is
    inert); when the file does not tokenize, a lexical scan takes over so
    an annotation on a broken line is still reported, not swallowed.
    """
    try:
        comments = [
            (token.start[0], token.string)
            for token in tokenize.generate_tokens(io.StringIO(text).readline)
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, SyntaxError, ValueError):
        comments = list(enumerate(text.splitlines(), start=1))
    out: Dict[int, FlowAnnotation] = {}
    for number, raw in comments:
        match = _PATTERN.search(raw)
        if match is None:
            continue
        out[number] = FlowAnnotation(
            line=number,
            directive=match.group("directive"),
            argument=match.group("argument"),
            reason=match.group("reason"),
        )
    return out


def annotation_meta_findings(
    annotations: Dict[int, FlowAnnotation], path: str
) -> Iterator[Finding]:
    """The self-policing pass, run after every analysis had its chance to
    mark annotations used."""
    for annotation in annotations.values():
        at = dict(path=path, line=annotation.line, column=1)
        if not annotation.has_reason:
            yield Finding(
                rule="flow-annotation-missing-reason",
                message=(
                    "flow annotation must state a reason: '# repro-flow: "
                    f"{annotation.directive}={annotation.argument} "
                    "-- <why this state is derivable>'"
                ),
                **at,
            )
            continue  # a reasonless annotation discharges nothing
        if annotation.directive not in KNOWN_DIRECTIVES:
            yield Finding(
                rule="flow-annotation-unknown-directive",
                message=(
                    f"unknown flow directive {annotation.directive!r} "
                    f"(known: {', '.join(KNOWN_DIRECTIVES)})"
                ),
                **at,
            )
            continue
        if not annotation.used:
            yield Finding(
                rule="flow-annotation-unused",
                message=(
                    f"annotation '{annotation.directive}="
                    f"{annotation.argument}' sanctions nothing here; "
                    "remove it or move it inside the checkpointable "
                    "class whose attribute it excuses"
                ),
                **at,
            )


def derivable_attributes(
    annotations: Dict[int, FlowAnnotation],
    first_line: int,
    last_line: int,
) -> Dict[str, List[FlowAnnotation]]:
    """``derivable`` annotations lying within a class's line span,
    mapped by the attribute name(s) they sanction (comma-separated
    arguments sanction several at once)."""
    out: Dict[str, List[FlowAnnotation]] = {}
    for annotation in annotations.values():
        if annotation.directive != "derivable" or not annotation.has_reason:
            continue
        if not first_line <= annotation.line <= last_line:
            continue
        for name in annotation.argument.split(","):
            name = name.strip()
            if name:
                out.setdefault(name, []).append(annotation)
    return out


def mark_used(annotations: List[FlowAnnotation]) -> None:
    for annotation in annotations:
        annotation.used = True


def unused_arguments(annotations: Dict[int, FlowAnnotation]) -> Set[str]:
    return {
        a.argument for a in annotations.values() if not a.used
    }
