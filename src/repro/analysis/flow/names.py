"""The flow-analysis rule namespace.

Kept in a leaf module so :func:`repro.analysis.lint.engine.known_rule_names`
can pull the names in without importing the (heavier) call-graph
machinery — a suppression naming ``flow-shared-state`` must parse as a
known rule under ``repro-lint code`` too, even though only
``repro-lint flow`` can produce or discharge the finding.
"""

from __future__ import annotations

from typing import Dict

#: Interprocedural rules run by ``repro-lint flow``.
FLOW_RULES: Dict[str, str] = {
    "flow-nondeterminism": (
        "a function in a deterministic module transitively reaches a "
        "wall-clock, ambient-randomness, or environment read through its "
        "call chain; the finding carries the full witness chain"
    ),
    "flow-exactness": (
        "a function in an exact-arithmetic module transitively reaches "
        "a function containing bare float literals; Theorems 1-4 stay "
        "proofs only while every reachable operand is int/Fraction"
    ),
    "flow-snapshot-coverage": (
        "a checkpointable class assigns a self attribute no snapshot "
        "method captures and no 'repro-flow: derivable' annotation "
        "sanctions — state that would silently vanish across a resume"
    ),
    "flow-shared-state": (
        "module-level mutable state, an ambient singleton instance, a "
        "class-level mutable default, or a 'global' statement inside the "
        "enclave-parallel packages (system/encapsulation/decision) — "
        "state that escapes per-enclave isolation"
    ),
}

#: Meta-rules policing the ``# repro-flow:`` annotation family itself,
#: mirroring the PR 5 suppression contract (a reasonless annotation
#: sanctions nothing; stale annotations cannot accumulate).
FLOW_META_RULES: Dict[str, str] = {
    "flow-annotation-missing-reason": (
        "a '# repro-flow:' annotation lacks the mandatory '-- reason' "
        "clause"
    ),
    "flow-annotation-unknown-directive": (
        "a '# repro-flow:' annotation uses a directive the analyzer "
        "does not know (known: derivable=<attr>)"
    ),
    "flow-annotation-unused": (
        "a '# repro-flow:' annotation sanctions nothing (the attribute "
        "is already captured, or the line is outside any checkpointable "
        "class)"
    ),
}
