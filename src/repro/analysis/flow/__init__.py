"""Whole-program flow analyses over the ``repro`` tree.

Where :mod:`repro.analysis.lint` sees one line at a time, this package
sees one *call chain* at a time: an AST-derived interprocedural call
graph (:mod:`.callgraph`) feeding three analyses —

* :mod:`.taint` — transitive nondeterminism/exactness taint into the
  deterministic and exact-arithmetic module families, with full witness
  chains;
* :mod:`.coverage` — the checkpoint-coverage proof for
  ``@checkpointable`` classes (every ``self`` attribute captured or
  annotated derivable);
* :mod:`.escape` — shared-state escape detection plus the ranked
  isolation report grounding the parallel per-enclave simulator.

Exposed as ``repro-lint flow`` with the engine's 0/1/2 exit contract.
"""

from repro.analysis.flow.analyzer import (
    FlowAnalyzer,
    FlowResult,
    render_flow_json,
    render_flow_text,
)
from repro.analysis.flow.annotations import FlowAnnotation, parse_annotations
from repro.analysis.flow.callgraph import Program, build_program
from repro.analysis.flow.names import FLOW_META_RULES, FLOW_RULES

__all__ = [
    "FLOW_META_RULES",
    "FLOW_RULES",
    "FlowAnalyzer",
    "FlowAnnotation",
    "FlowResult",
    "Program",
    "build_program",
    "parse_annotations",
    "render_flow_json",
    "render_flow_text",
]
