"""The ``repro-lint flow`` driver: build the program, run the three
interprocedural analyses, reconcile sanctions, render.

The reconcile contract mirrors the line engine exactly: a finding on a
line carrying a reasoned ``# repro-lint: disable=<flow-rule>`` is
silenced and the suppression marked used; a flow-named suppression that
silences nothing is itself a finding (``suppression-unused``) — *this*
analyzer polices those, because ``repro-lint code`` deliberately skips
the unused check for flow-named suppressions it cannot discharge.  The
``# repro-flow:`` annotation family is policed here too (see
:mod:`repro.analysis.flow.annotations`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.flow.annotations import annotation_meta_findings
from repro.analysis.flow.callgraph import Program, build_program
from repro.analysis.flow.coverage import (
    checkpointable_classes,
    coverage_findings,
)
from repro.analysis.flow.escape import (
    IsolationEntry,
    escape_findings_and_report,
)
from repro.analysis.flow.names import FLOW_RULES
from repro.analysis.flow.taint import (
    exactness_findings,
    nondeterminism_findings,
)
from repro.analysis.lint.engine import Finding
from repro.analysis.lint.reporters import FINDING_FIELDS

#: Version of the ``repro-lint flow --format json`` document.
FLOW_JSON_SCHEMA_VERSION = 1


@dataclass
class FlowResult:
    """Everything one analysis run produced."""

    findings: List[Finding]
    files_checked: int
    isolation_report: List[IsolationEntry]
    stats: Dict[str, int] = field(default_factory=dict)


class FlowAnalyzer:
    """Whole-program analysis over a set of paths (plus in-memory
    sources, which tests use to inject mutated modules)."""

    def check_paths(
        self,
        paths: Sequence[str | Path],
        *,
        sources: Optional[Dict[str, str]] = None,
    ) -> FlowResult:
        program = build_program(paths, sources=sources)
        raw: List[Finding] = []
        for path, (line, message) in sorted(program.parse_errors.items()):
            raw.append(
                Finding(
                    path=path, line=line, column=1,
                    rule="parse-error", message=message,
                )
            )
        # Ordering matters only for annotation bookkeeping: coverage
        # marks 'derivable' annotations used before the meta pass runs.
        raw.extend(nondeterminism_findings(program))
        raw.extend(exactness_findings(program))
        raw.extend(coverage_findings(program))
        escape, report = escape_findings_and_report(program)
        raw.extend(escape)
        kept = self._reconcile(program, raw)
        for path in sorted(program.annotations):
            kept.extend(
                annotation_meta_findings(program.annotations[path], path)
            )
        kept.extend(self._stale_flow_suppressions(program))
        kept.sort()
        files_checked = len(program.files) + len(program.parse_errors)
        return FlowResult(
            findings=kept,
            files_checked=files_checked,
            isolation_report=report,
            stats={
                "functions": len(program.functions),
                "classes": len(program.classes),
                "call_edges": sum(
                    len(fn.calls) for fn in program.functions.values()
                ),
                "checkpointable_classes": len(
                    checkpointable_classes(program)
                ),
            },
        )

    # ------------------------------------------------------------------
    def _reconcile(
        self, program: Program, raw: List[Finding]
    ) -> List[Finding]:
        kept: List[Finding] = []
        for finding in raw:
            suppression = program.suppressions.get(finding.path, {}).get(
                finding.line
            )
            if (
                suppression is not None
                and suppression.has_reason
                and finding.rule in suppression.rules
            ):
                suppression.used.add(finding.rule)
                continue
            kept.append(finding)
        return kept

    def _stale_flow_suppressions(self, program: Program) -> List[Finding]:
        out: List[Finding] = []
        for path in sorted(program.suppressions):
            for suppression in program.suppressions[path].values():
                flow_named = [
                    name for name in suppression.rules if name in FLOW_RULES
                ]
                if not flow_named or not suppression.has_reason:
                    continue
                if suppression.used & set(flow_named):
                    continue
                out.append(
                    Finding(
                        path=path,
                        line=suppression.line,
                        column=1,
                        rule="suppression-unused",
                        message=(
                            "flow suppression "
                            f"({', '.join(flow_named)}) silences nothing "
                            "on this line; remove it or move it to the "
                            "offending line"
                        ),
                    )
                )
        return out


# ----------------------------------------------------------------------
# Reporters (the text form delegates to the engine's renderer idiom; the
# JSON document extends the code schema with the isolation report).
# ----------------------------------------------------------------------
def render_flow_text(result: FlowResult, *, report: bool = False) -> str:
    lines = [finding.render() for finding in result.findings]
    errors = sum(1 for f in result.findings if f.severity == "error")
    warnings = len(result.findings) - errors
    if result.findings:
        lines.append(
            f"{errors} error(s), {warnings} warning(s) "
            f"in {result.files_checked} file(s) checked"
        )
    else:
        lines.append(
            f"clean: {result.files_checked} file(s) checked, no findings"
        )
    if report:
        lines.append(
            f"isolation report ({len(result.isolation_report)} "
            "entries, rank 1 = hardest escape):"
        )
        for entry in result.isolation_report:
            lines.append(entry.render())
    return "\n".join(lines)


def render_flow_json(result: FlowResult) -> str:
    document = {
        "version": FLOW_JSON_SCHEMA_VERSION,
        "tool": "repro-lint flow",
        "files_checked": result.files_checked,
        "counts": {
            "error": sum(
                1 for f in result.findings if f.severity == "error"
            ),
            "warning": sum(
                1 for f in result.findings if f.severity == "warning"
            ),
        },
        "findings": [
            {name: getattr(finding, name) for name in FINDING_FIELDS}
            for finding in result.findings
        ],
        "isolation_report": [
            {
                "rank": entry.rank,
                "module": entry.module,
                "path": entry.path,
                "line": entry.line,
                "name": entry.name,
                "kind": entry.kind,
                "detail": entry.detail,
            }
            for entry in result.isolation_report
        ],
        "stats": result.stats,
    }
    return json.dumps(document, indent=2, sort_keys=False)
