"""Checkpoint-coverage proof for snapshot-bearing classes.

PR 9 existed because wire state silently went missing from checkpoints:
``MeshPolicy`` grew attributes faster than its snapshot grew keys, and
nothing noticed until a crash-recovery replay diverged.  This pass makes
the invariant a machine-checked proof obligation:

    for every class marked :func:`repro.markers.checkpointable` (plus
    the four seed classes, pinned by name so deleting a decorator cannot
    silently drop them), **every attribute ever assigned on ``self``**
    must be either

    * *captured* — read by one of the class's snapshot methods
      (``state_snapshot`` / ``network_snapshot`` / ``__getstate__``),
      directly or through same-class helpers they call, including a
      wholesale ``dict(self.__dict__)`` minus the names it pops — or
    * *derivable* — sanctioned by a reasoned
      ``# repro-flow: derivable=<attr> -- <reason>`` annotation inside
      the class body.

Restore methods deliberately do **not** count as capture: restoring an
attribute proves it *would* round-trip if captured, not that it is.
The wholesale form resolves pops through class-level string-tuple
constants (``for name in self._WIRE_STATE: state.pop(name, ...)``), so
the PR 9 idiom of "everything except the wire section" is understood
exactly.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.flow.annotations import derivable_attributes, mark_used
from repro.analysis.flow.callgraph import ClassNode, Program
from repro.analysis.lint.engine import Finding

#: Methods whose body constitutes the capture proof.
CAPTURE_METHODS: Tuple[str, ...] = (
    "state_snapshot",
    "network_snapshot",
    "__getstate__",
)

#: Classes under the proof regardless of decoration — the contract
#: cannot be exited by deleting a decorator line.
SEED_CLASSES: Tuple[str, ...] = (
    "repro.system.channel.MessageChannel",
    "repro.encapsulation.lease.LeaseTable",
    "repro.faults.netfaults.MeshPolicy",
    "repro.decision.admission.AdmissionController",
)

_CHECKPOINTABLE_MARKER = "repro.markers.checkpointable"


def checkpointable_classes(program: Program) -> List[ClassNode]:
    out: List[ClassNode] = []
    for qname in sorted(program.classes):
        cls = program.classes[qname]
        if qname in SEED_CLASSES:
            out.append(cls)
            continue
        for decorator in cls.decorators:
            if program.resolve(cls.module, decorator) == _CHECKPOINTABLE_MARKER:
                out.append(cls)
                break
    return out


def _method_ast(program: Program, fn_qname: str) -> Optional[ast.FunctionDef]:
    fn = program.functions.get(fn_qname)
    if fn is None:
        return None
    source = program.files.get(fn.path)
    if source is None:
        return None
    for node in ast.walk(source.tree):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == fn.name
            and node.lineno == fn.line
        ):
            return node
    return None


def _class_constant(
    program: Program, cls: ClassNode, name: str
) -> Optional[Tuple[str, ...]]:
    for ancestor in program.mro(cls.qname):
        found = program.classes[ancestor].str_constants.get(name)
        if found is not None:
            return found
    return None


def _is_wholesale(node: ast.Call) -> bool:
    """``dict(self.__dict__)`` / ``self.__dict__.copy()`` / ``vars(self)``."""
    func = node.func
    if isinstance(func, ast.Name):
        if func.id == "dict" and node.args:
            arg = node.args[0]
            return (
                isinstance(arg, ast.Attribute)
                and arg.attr == "__dict__"
                and isinstance(arg.value, ast.Name)
                and arg.value.id == "self"
            )
        if func.id == "vars" and node.args:
            arg = node.args[0]
            return isinstance(arg, ast.Name) and arg.id == "self"
        return False
    if isinstance(func, ast.Attribute) and func.attr == "copy":
        owner = func.value
        return (
            isinstance(owner, ast.Attribute)
            and owner.attr == "__dict__"
            and isinstance(owner.value, ast.Name)
            and owner.value.id == "self"
        )
    return False


class _CaptureScan:
    """What one capture method (plus same-class helpers it calls) sees."""

    def __init__(self, program: Program, cls: ClassNode) -> None:
        self.program = program
        self.cls = cls
        self.reads: Set[str] = set()
        self.wholesale = False
        self.popped: Set[str] = set()
        self._visited: Set[str] = set()

    def scan(self, method_qname: str) -> None:
        if method_qname in self._visited:
            return
        self._visited.add(method_qname)
        body = _method_ast(self.program, method_qname)
        if body is None:
            return
        for node in ast.walk(body):
            if isinstance(node, ast.Attribute):
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and not isinstance(node.ctx, ast.Store)
                    and node.attr != "__dict__"
                ):
                    self.reads.add(node.attr)
            elif isinstance(node, ast.Call):
                if _is_wholesale(node):
                    self.wholesale = True
                self._scan_pop(node)
                self._follow_self_call(node)
            elif isinstance(node, ast.For):
                self._scan_pop_loop(node)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    name = _subscript_literal(target)
                    if name is not None:
                        self.popped.add(name)

    # -- pops ----------------------------------------------------------
    def _scan_pop(self, node: ast.Call) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "pop"):
            return
        if not node.args:
            return
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            self.popped.add(arg.value)

    def _scan_pop_loop(self, node: ast.For) -> None:
        """``for name in self._WIRE_STATE: state.pop(name, ...)``."""
        iterated = node.iter
        if not (
            isinstance(iterated, ast.Attribute)
            and isinstance(iterated.value, ast.Name)
            and iterated.value.id == "self"
        ):
            return
        names = _class_constant(self.program, self.cls, iterated.attr)
        if names is None:
            return
        loop_vars = {
            element.id
            for element in ast.walk(node.target)
            if isinstance(element, ast.Name)
        }
        for inner in ast.walk(node):
            if (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Attribute)
                and inner.func.attr in ("pop", "__delitem__")
                and inner.args
                and isinstance(inner.args[0], ast.Name)
                and inner.args[0].id in loop_vars
            ):
                self.popped.update(names)
                return

    # -- helper recursion ----------------------------------------------
    def _follow_self_call(self, node: ast.Call) -> None:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            return
        target = self.program.lookup_method(self.cls.qname, func.attr)
        if target is not None:
            self.scan(target)


def _subscript_literal(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Subscript):
        inner = node.slice
        if isinstance(inner, ast.Constant) and isinstance(inner.value, str):
            return inner.value
    return None


def covered_attributes(
    program: Program, cls: ClassNode
) -> Tuple[Set[str], List[str]]:
    """``(captured attribute names, capture methods found)``."""
    methods: List[str] = []
    covered: Set[str] = set()
    for name in CAPTURE_METHODS:
        qname = program.lookup_method(cls.qname, name)
        if qname is None:
            continue
        methods.append(name)
        scan = _CaptureScan(program, cls)
        scan.scan(qname)
        covered |= scan.reads
        if scan.wholesale:
            covered |= set(cls.self_attrs) - scan.popped
    return covered, methods


def coverage_findings(program: Program) -> Iterator[Finding]:
    for cls in checkpointable_classes(program):
        annotations = program.annotations.get(cls.path, {})
        derivable = derivable_attributes(annotations, cls.line, cls.end_line)
        covered, methods = covered_attributes(program, cls)
        if not methods:
            yield Finding(
                path=cls.path,
                line=cls.line,
                column=1,
                rule="flow-snapshot-coverage",
                message=(
                    f"{cls.qname} is checkpointable but defines none of "
                    + "/".join(CAPTURE_METHODS)
                    + "; its state cannot survive a resume"
                ),
            )
            continue
        for attr in sorted(cls.self_attrs):
            if attr in covered:
                continue
            if attr in derivable:
                mark_used(derivable[attr])
                continue
            yield Finding(
                path=cls.path,
                line=cls.self_attrs[attr],
                column=1,
                rule="flow-snapshot-coverage",
                message=(
                    f"{cls.qname} assigns self.{attr} but no snapshot "
                    f"method ({', '.join(methods)}) captures it and no "
                    "'# repro-flow: derivable' annotation sanctions it; "
                    "this state silently vanishes across a checkpoint/"
                    "restore cycle"
                ),
            )
