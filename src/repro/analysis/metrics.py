"""Scoring simulation outcomes.

Metrics used across the synthetic evaluation:

* **admission precision** — of the computations a policy admitted, the
  fraction whose deadline actually held when executed.  ROTA's soundness
  claim is precision = 1.
* **goodput** — total demanded quantity of computations that completed on
  time, normalised by offered capacity: how much *useful, assured* work
  the system delivered.
* **admission rate / miss rate** — volume knobs that distinguish timid
  from reckless policies.
* **confusion vs a reference** — given a reference policy's per-arrival
  outcomes on the same event stream (typically ROTA, or an exhaustive
  oracle), per-arrival agreement buckets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.system.simulator import ComputationRecord, SimulationReport


@dataclass(frozen=True)
class PolicyScore:
    """One row of the policy-comparison table."""

    policy: str
    arrivals: int
    admitted: int
    completed: int
    missed: int
    rejected: int
    precision: float
    admission_rate: float
    miss_rate: float
    goodput: float
    utilization: float

    @property
    def sound(self) -> bool:
        """No admitted computation missed its deadline."""
        return self.missed == 0


def score(report: SimulationReport, *, offered_total: float | None = None) -> PolicyScore:
    """Collapse one simulation report into a score row."""
    offered = (
        offered_total
        if offered_total is not None
        else sum(report.offered.values())
    )
    completed_work = 0.0
    for record in report.records:
        if record.completed:
            completed_work += _work_of(record)
    return PolicyScore(
        policy=report.policy_name,
        arrivals=report.arrivals,
        admitted=report.admitted,
        completed=report.completed,
        missed=report.missed,
        rejected=report.rejected,
        precision=report.admission_precision,
        admission_rate=report.admitted / report.arrivals if report.arrivals else 1.0,
        miss_rate=report.missed / report.admitted if report.admitted else 0.0,
        goodput=completed_work / offered if offered else 0.0,
        utilization=report.utilization,
    )


def _work_of(record: ComputationRecord) -> float:
    # Work is approximated by consumed share; the simulator does not keep
    # the original requirement on the record, so completed work is tallied
    # from the trace by callers needing exact figures.  Here each
    # completed computation counts its window-normalised unit.
    return 1.0


@dataclass(frozen=True)
class Confusion:
    """Per-arrival agreement between a policy and a reference."""

    both_admit: int
    only_policy: int
    only_reference: int
    both_reject: int

    @property
    def total(self) -> int:
        return self.both_admit + self.only_policy + self.only_reference + self.both_reject

    @property
    def agreement(self) -> float:
        return (self.both_admit + self.both_reject) / self.total if self.total else 1.0


def confusion(
    report: SimulationReport, reference: SimulationReport
) -> Confusion:
    """Compare two reports over the same event stream, by arrival label."""
    ref = {record.label: record.admitted for record in reference.records}
    both_admit = only_policy = only_reference = both_reject = 0
    for record in report.records:
        reference_admitted = ref.get(record.label, False)
        if record.admitted and reference_admitted:
            both_admit += 1
        elif record.admitted:
            only_policy += 1
        elif reference_admitted:
            only_reference += 1
        else:
            both_reject += 1
    return Confusion(both_admit, only_policy, only_reference, both_reject)


def completed_demand(report: SimulationReport) -> Dict[str, float]:
    """Exact consumed quantity per completed arrival, from the trace."""
    per_actor = report.trace.consumption_by_actor()
    out: Dict[str, float] = {}
    for record in report.records:
        if not record.completed:
            continue
        total = 0.0
        for actor, amounts in per_actor.items():
            owner = actor.split("[")[0]
            if owner == record.label:
                total += sum(amounts.values())
        out[record.label] = total
    return out


def goodput_quantity(report: SimulationReport) -> float:
    """Total consumed quantity that belonged to on-time computations."""
    return sum(completed_demand(report).values())
