"""Fault injection and promise-violation recovery.

The paper's open-system model is cooperatively dynamic: "if a resource is
going to leave the system in the future, the time of leaving must be
explicitly specified at the time of joining", so every admission promise
is sound by construction.  This package deliberately breaks that
assumption — crashes, unannounced revocations, stragglers — and gives the
simulator the machinery to *survive* the breakage:

* :class:`FaultPlan` — seeded, deterministic generation of unannounced
  fault events, composable with any existing scenario
  (:func:`faulty_scenario`).
* :func:`find_victims` / :class:`PromiseViolation` — detection of admitted
  computations whose remaining feasible window died.
* :class:`RecoveryPolicy` — the victim pipeline: re-admission against
  surviving resources through the same Theorem-4 check, capped
  exponential backoff between offers, and graceful degradation into an
  explicit ``abandoned`` outcome with salvage accounting.
"""

from repro.baselines.retry import ExponentialBackoff
from repro.faults.chaos import (
    ChaosResult,
    CrashingFile,
    CrashPoint,
    SimulatedCrash,
    chaos_crash_matrix,
    crashing_opener,
    diff_fingerprints,
    report_fingerprint,
)
from repro.faults.detection import Victim, find_victims, residual_requirement
from repro.faults.netfaults import (
    MeshPolicy,
    NetfaultPoint,
    NetfaultResult,
    PartitionCrashPoint,
    PartitionCrashResult,
    PartitionPlan,
    admitted_promise_violations,
    chaos_partition_crash_matrix,
    chaos_partition_matrix,
    mesh_events,
    network_digest,
    resume_mesh,
    run_mesh,
)
from repro.faults.overload import (
    OverloadPlan,
    OverloadPoint,
    OverloadResult,
    chaos_overload_matrix,
)
from repro.faults.plan import FaultPlan, faulty_scenario
from repro.faults.recovery import RecoveryPolicy
from repro.system.tracing import PromiseViolation, ResourceLoss

__all__ = [
    "ChaosResult",
    "CrashingFile",
    "CrashPoint",
    "ExponentialBackoff",
    "FaultPlan",
    "MeshPolicy",
    "NetfaultPoint",
    "NetfaultResult",
    "OverloadPlan",
    "PartitionCrashPoint",
    "PartitionCrashResult",
    "OverloadPoint",
    "OverloadResult",
    "PartitionPlan",
    "SimulatedCrash",
    "admitted_promise_violations",
    "chaos_crash_matrix",
    "chaos_overload_matrix",
    "chaos_partition_crash_matrix",
    "chaos_partition_matrix",
    "crashing_opener",
    "diff_fingerprints",
    "faulty_scenario",
    "find_victims",
    "mesh_events",
    "network_digest",
    "resume_mesh",
    "run_mesh",
    "report_fingerprint",
    "residual_requirement",
    "PromiseViolation",
    "RecoveryPolicy",
    "ResourceLoss",
    "Victim",
]
