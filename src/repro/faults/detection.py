"""Detecting promise violations after a fault.

An admission promise says: the admitted computation's remaining demand
fits into the resources available within its window.  A fault can kill
that promise silently — the victim sits in ``rho`` consuming a trickle
until its deadline passes.  Detection makes the death explicit at the
instant of the fault, which is what allows *recovery* (re-admission
elsewhere) instead of a guaranteed miss.

The check here is the order-blind necessary condition
``U_now^d Theta >= remaining demand`` (the quantity comparison underlying
the paper's satisfaction function ``f``): if even the aggregate totals
cannot cover the residual demand, no execution order can.  Passing the
check does not guarantee survival — sequencing may still fail — so
detection errs on the side of leaving feasible-looking victims alone;
they either finish or are scored as honest misses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.computation.demands import Demands
from repro.computation.requirements import (
    ComplexRequirement,
    ConcurrentRequirement,
)
from repro.errors import RecoveryError
from repro.intervals.interval import Interval, Time
from repro.logic.state import ActorProgress, SystemState


@dataclass(frozen=True)
class Victim:
    """One computation whose promise died, with everything recovery needs."""

    label: str
    #: residual work as a fresh requirement over ``(now, deadline)``
    residual: ConcurrentRequirement
    deadline: Time
    #: order-blind total demand still outstanding at detection time
    remaining_total: Time


def components_of(
    state: SystemState, label: str
) -> Tuple[ActorProgress, ...]:
    """All of an arrival's actor components currently accommodated."""
    return tuple(
        p
        for p in state.rho
        if p.label == label or p.label.startswith(label + "[")
    )


def remaining_demands(components: Sequence[ActorProgress]) -> Demands:
    """Summed outstanding demand across components (order-blind)."""
    total: Dict = {}
    for progress in components:
        if progress.is_complete:
            continue
        outstanding = progress.current_demands
        for phase in progress.requirement.phases[progress.phase + 1:]:
            outstanding = outstanding + phase
        for ltype, quantity in outstanding.items():
            total[ltype] = total.get(ltype, 0) + quantity
    return Demands(total)


def residual_requirement(
    components: Sequence[ActorProgress], now: Time, label: str
) -> ConcurrentRequirement:
    """The victim's unfinished work, re-windowed to ``(now, deadline)``.

    Completed components drop out; each unfinished one contributes its
    partially-consumed current phase followed by its untouched phases, so
    a successful re-admission completes exactly the original demand.
    """
    parts: List[ComplexRequirement] = []
    deadline = None
    for progress in components:
        if progress.is_complete:
            continue
        deadline = progress.deadline if deadline is None else deadline
        phases = [progress.current_demands]
        phases.extend(progress.requirement.phases[progress.phase + 1:])
        parts.append(
            ComplexRequirement(
                phases, Interval(now, progress.deadline), label=label
            )
        )
    if not parts or deadline is None:
        raise RecoveryError(
            f"{label!r} has no unfinished components to recover"
        )
    window = Interval(now, max(p.deadline for p in parts))
    return ConcurrentRequirement(tuple(parts), window)


def find_victims(
    state: SystemState,
    labels: Sequence[str],
) -> List[Tuple[str, Time]]:
    """Labels whose remaining feasible window died, with residual totals.

    ``labels`` are the candidate arrivals (admitted, unfinished, not
    already in recovery).  Returns ``(label, remaining_total)`` pairs for
    every candidate whose outstanding demand exceeds what the surviving
    ``theta`` can supply before the deadline.
    """
    victims: List[Tuple[str, Time]] = []
    for label in labels:
        components = components_of(state, label)
        unfinished = [p for p in components if not p.is_complete]
        if not unfinished:
            continue
        deadline = min(p.deadline for p in unfinished)
        if state.t >= deadline:
            continue  # already a plain miss; nothing left to recover
        remaining = remaining_demands(unfinished)
        if remaining.is_empty:
            continue
        window = Interval(state.t, deadline)
        if not state.theta.can_supply(remaining, window):
            victims.append((label, remaining.total))
    return victims
