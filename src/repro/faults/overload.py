"""Overload as an injectable condition, and the matrix that proves the
front door's guarantees under it.

The crash matrix (:mod:`repro.faults.chaos`) asks "does a killed run
resume identically?"; this module asks the overload analogues:

1. **Promise safety** — at every load multiplier (up to a 10x flash
   crowd), no admitted request's promise is violated by queueing alone:
   every admitted schedule fits inside ``(decision time, deadline)``.
2. **Replay identity** — shed, breaker, and brownout decisions are a
   deterministic function of ``(stream, config, seed)``: serving the
   same stream twice yields byte-identical decision-log fingerprints.
3. **Brownout soundness** — the degraded (Theorem-1 screen) path never
   rejects anything the exact Theorem-4 check would admit; every screen
   rejection is cross-checked against the read-only exact check.

A fourth leg runs the stalled-enclave plan through the *simulator* with
:class:`~repro.service.FrontDoorPolicy`, asserting the extended
conservation identity (``offered = consumed + expired + lost + shed``)
mid-run at every slice, plus field-identical reports across a re-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import FaultInjectionError
from repro.service.config import ServiceConfig
from repro.service.driver import serve
from repro.service.policy import FrontDoorPolicy
from repro.service.report import ServiceReport
from repro.system.simulator import OpenSystemSimulator
from repro.faults.chaos import diff_fingerprints, report_fingerprint
from repro.workloads.overload import (
    flash_crowd_requests,
    stalled_enclave_stream,
)


@dataclass(frozen=True)
class OverloadPlan:
    """Deterministic description of an overload experiment."""

    seed: int = 0
    #: flash-crowd load multipliers to sweep (1 = no overload control)
    multipliers: Tuple[int, ...] = (1, 2, 4, 10)
    #: nodes in the synthetic cluster
    nodes: int = 3
    #: burst window (start, duration) in simulated time
    burst_at: int = 20
    burst_duration: int = 10
    horizon: int = 60
    #: per-request deadline slack (window length)
    deadline_slack: int = 8
    #: also run the stalled-enclave leg
    stalled_enclave: bool = True

    def __post_init__(self) -> None:
        if not self.multipliers:
            raise FaultInjectionError("multipliers must be non-empty")
        if any(
            not isinstance(m, int) or m < 1 for m in self.multipliers
        ):
            raise FaultInjectionError(
                f"multipliers must be positive integers, got "
                f"{self.multipliers!r}"
            )
        if self.nodes < 1:
            raise FaultInjectionError(f"nodes must be >= 1, got {self.nodes!r}")
        if self.burst_at < 0 or self.burst_duration <= 0:
            raise FaultInjectionError(
                f"burst window must be non-negative and non-empty, got "
                f"start={self.burst_at!r} duration={self.burst_duration!r}"
            )
        if self.horizon <= self.burst_at:
            raise FaultInjectionError(
                f"horizon {self.horizon!r} must exceed burst_at "
                f"{self.burst_at!r}"
            )
        if self.deadline_slack <= 0:
            raise FaultInjectionError(
                f"deadline_slack must be > 0, got {self.deadline_slack!r}"
            )


@dataclass
class OverloadPoint:
    """One cell of the overload matrix and what it proved."""

    kind: str  # "flash-crowd" | "stalled-enclave" | "simulator"
    multiplier: int
    offered: int = 0
    admitted: int = 0
    shed: int = 0
    #: labels of admitted requests whose promise queueing already broke
    queueing_violations: List[str] = field(default_factory=list)
    #: decision-log fingerprints of the two runs agree byte-for-byte
    identical: bool = False
    #: brownout screen rejections cross-checked against the exact check
    brownout_verified: int = 0
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.identical and not self.queueing_violations and not self.detail


@dataclass
class OverloadResult:
    """Outcome of a full overload matrix."""

    points: List[OverloadPoint] = field(default_factory=list)

    @property
    def failures(self) -> List[OverloadPoint]:
        return [p for p in self.points if not p.ok]

    @property
    def ok(self) -> bool:
        return bool(self.points) and not self.failures

    def summary(self) -> str:
        return (
            f"{len(self.points)} overload points, "
            f"{len(self.points) - len(self.failures)} clean, "
            f"{len(self.failures)} failures"
        )


def _config(plan: OverloadPlan) -> ServiceConfig:
    # Thresholds sized to the synthetic cluster: small queues so a 10x
    # burst actually pressures them, brownout engaging well before the
    # bound so the degraded path is exercised, not just reachable.
    return ServiceConfig(
        max_queue=16,
        brownout_enter=8,
        brownout_exit=3,
        seed=plan.seed,
    )


def chaos_overload_matrix(
    plan: OverloadPlan = OverloadPlan(),
    *,
    config_factory: Optional[Callable[[OverloadPlan], ServiceConfig]] = None,
) -> OverloadResult:
    """Sweep the overload matrix; callers assert ``result.ok``.

    Every flash-crowd multiplier is served twice (replay identity) with
    brownout soundness verification on; the stalled-enclave leg runs
    both standalone and through the simulator with per-slice
    conservation checks.
    """
    make_config = config_factory or _config
    result = OverloadResult()
    for multiplier in plan.multipliers:
        result.points.append(_flash_crowd_point(plan, multiplier, make_config))
    if plan.stalled_enclave:
        result.points.append(_stalled_enclave_point(plan, make_config))
        result.points.append(_simulator_point(plan))
    return result


def _serve_flash_crowd(
    plan: OverloadPlan, multiplier: int, config: ServiceConfig
) -> ServiceReport:
    resources, requests = flash_crowd_requests(
        plan.seed,
        multiplier=multiplier,
        nodes=plan.nodes,
        burst_at=plan.burst_at,
        burst_duration=plan.burst_duration,
        horizon=plan.horizon,
        deadline_slack=plan.deadline_slack,
    )
    return serve(
        requests,
        resources=resources,
        config=config,
        verify_brownout=True,
    )


def _flash_crowd_point(
    plan: OverloadPlan,
    multiplier: int,
    make_config: Callable[[OverloadPlan], ServiceConfig],
) -> OverloadPoint:
    config = make_config(plan)
    first = _serve_flash_crowd(plan, multiplier, config)
    second = _serve_flash_crowd(plan, multiplier, config)
    point = OverloadPoint(
        kind="flash-crowd",
        multiplier=multiplier,
        offered=len(first.outcomes),
        admitted=first.goodput,
        shed=len(first.shed),
        queueing_violations=first.queueing_violations(),
        identical=first.fingerprint == second.fingerprint,
        brownout_verified=first.brownout_verified,
    )
    if not point.identical:
        point.detail = (
            f"fingerprints diverge: {first.fingerprint[:12]} vs "
            f"{second.fingerprint[:12]}"
        )
    return point


def _stalled_enclave_point(
    plan: OverloadPlan,
    make_config: Callable[[OverloadPlan], ServiceConfig],
) -> OverloadPoint:
    config = make_config(plan)

    def run() -> ServiceReport:
        resources, requests, joins, stalls = stalled_enclave_stream(
            plan.seed, nodes=plan.nodes, horizon=plan.horizon
        )
        return serve(
            requests,
            resources=resources,
            joins=joins,
            config=config,
            stalls=stalls,
            verify_brownout=True,
        )

    first, second = run(), run()
    point = OverloadPoint(
        kind="stalled-enclave",
        multiplier=1,
        offered=len(first.outcomes),
        admitted=first.goodput,
        shed=len(first.shed),
        queueing_violations=first.queueing_violations(),
        identical=first.fingerprint == second.fingerprint,
        brownout_verified=first.brownout_verified,
    )
    if not point.identical:
        point.detail = "stalled-enclave fingerprints diverge"
    elif not first.breaker_transitions:
        point.detail = "stall never tripped a breaker (plan too gentle)"
    return point


def _simulator_point(plan: OverloadPlan) -> OverloadPoint:
    """The simulator leg: shed conservation holds at every slice and the
    whole run (including shed losses) replays field-identically."""
    from repro.system.events import arrival, resource_join

    def run():
        resources, requests, joins, stalls = stalled_enclave_stream(
            plan.seed, nodes=plan.nodes, horizon=plan.horizon
        )
        policy = FrontDoorPolicy(
            config=ServiceConfig(
                breaker_failures=2,
                seed=plan.seed,
            ),
            stalls=stalls,
            verify_brownout=True,
        )
        simulator = OpenSystemSimulator(
            policy,
            initial_resources=resources,
            invariant_interval=1,
        )
        events = [
            arrival(r.arrival, r.requirement, label=r.label)
            for r in requests
        ]
        events.extend(
            resource_join(at, joining) for at, joining in joins
        )
        simulator.schedule(*events)
        return simulator.run(plan.horizon), policy

    report_a, policy_a = run()
    report_b, _ = run()
    fp_a = report_fingerprint(report_a)
    fp_b = report_fingerprint(report_b)
    admitted = sum(1 for r in report_a.records if r.admitted)
    point = OverloadPoint(
        kind="simulator",
        multiplier=1,
        offered=len(report_a.records),
        admitted=admitted,
        shed=len(report_a.trace.shed_totals()),
        identical=fp_a == fp_b,
        brownout_verified=policy_a.door.brownout_verified,
    )
    # The extended identity over the whole run; the per-slice version
    # already ran inside the simulator (invariant_interval=1).
    gaps = report_a.trace.conservation_gaps(report_a.offered)
    if gaps:
        point.detail = "conservation gaps: " + "; ".join(gaps)
    elif not point.identical:
        point.detail = "simulator reports diverge: " + ", ".join(
            diff_fingerprints(fp_a, fp_b)
        )
    elif not report_a.trace.shed_totals():
        point.detail = "no capacity was shed (breaker never walled a join)"
    return point
