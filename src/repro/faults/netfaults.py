"""Unreliable networks: partitions, message loss, and lease-based
promise renegotiation across the enclave hierarchy.

Everything before this module assumed the control plane was free:
admission verdicts, capacity joins, and migration offers moved between
enclaves instantly and reliably.  Here they become wire messages on a
:class:`~repro.system.channel.MessageChannel` — delayed, lost,
duplicated, reordered, and severed by scheduled partitions — and the
temporal-reasoning story extends to the network itself:

* **Network time is deadline time.**  A cross-enclave admission is a
  request/verdict RPC with timeout and seeded-backoff retries; the whole
  exchange's elapsed time is charged against the arrival's deadline via
  :func:`~repro.decision.admission.clip_start` *before* the Theorem-4
  check runs, so a verdict that crawled through a lossy link admits
  strictly less than a prompt one.
* **Cross-enclave capacity is leased, not owned.**  A mid-run join
  destined for a child enclave crosses the wire and arrives as a
  :class:`~repro.encapsulation.lease.Lease`-backed grant that must be
  renewed over the channel.  A partitioned child cannot renew: at expiry
  it *conservatively renounces* the leased remainder — a measured
  ``"lease-expired"`` capacity loss that flows through the ordinary
  promise-violation pipeline (evict, Theorem-4 re-admission against the
  local allotment, salvage on abandonment).  Degraded autonomy is
  literal: while cut off, the enclave re-decides victims against what it
  owns outright, no round trip.
* **Heal means reconcile.**  When a partition heals, the policy settles
  the partitioned sides' accounts: every lease that lapsed during the
  window is reported with its renounced quantity and dependents, and the
  extended conservation identity
  ``offered = consumed + expired + lost + shed + lease-expired``
  keeps holding at every slice throughout.

:func:`chaos_partition_matrix` sweeps partition start/duration x loss x
delay and asserts the two properties that make the model trustworthy:
**zero admitted-promise violations** (no admitted computation silently
misses — every one completes, recovers, or is honestly abandoned with
salvage) and **replay identity** (every cell, run twice, produces
field-identical report fingerprints — fates are stateless SHA-256 draws,
so an unreliable network is still a deterministic one).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.backoff import Backoff
from repro.baselines.base import AdmissionPolicy, PolicyDecision
from repro.computation.requirements import ConcurrentRequirement
from repro.decision.admission import clip_start
from repro.encapsulation.enclave import Enclave
from repro.encapsulation.lease import Lease, LeaseTable
from repro.errors import ChannelError, CheckpointError, FaultInjectionError
from repro.faults.chaos import (
    SimulatedCrash,
    crashing_opener,
    diff_fingerprints,
    report_fingerprint,
)
from repro.faults.recovery import RecoveryPolicy
from repro.intervals.interval import Interval, Time
from repro.markers import checkpointable
from repro.resources.located_type import Node
from repro.resources.resource_set import ResourceSet
from repro.serialization import time_from_wire, time_to_wire
from repro.system.channel import (
    LinkConfig,
    MessageChannel,
    NetworkModel,
    PartitionSpan,
    RpcOutcome,
)
from repro.system.checkpoint import CheckpointStore, Journal
from repro.system.events import (
    Event,
    arrival,
    partition_heal,
    partition_start,
    resource_join,
)
from repro.system.simulator import OpenSystemSimulator, SimulationReport
from repro.workloads.partition import mesh_names, partitioned_mesh_stream


@dataclass(frozen=True)
class PartitionPlan:
    """Deterministic description of one unreliable-network experiment.

    Same shape discipline as :class:`~repro.faults.plan.FaultPlan` and
    :class:`~repro.faults.overload.OverloadPlan`: a frozen value object
    validated on construction, so a plan can be logged, replayed, and
    swept by :func:`dataclasses.replace` without surprises.
    """

    seed: int = 0
    #: child enclaves behind the door node ``n0``
    children: int = 2
    #: partition window start; ``partition_duration == 0`` disables it
    partition_start: Time = 18
    partition_duration: Time = 10
    #: child nodes the partition cuts off from the door
    severed: Tuple[str, ...] = ("n1",)
    partition_name: str = "p0"
    #: default link behaviour (applies to every door<->child link)
    link_delay: int = 0
    link_jitter: int = 0
    link_loss: float = 0.0
    link_duplicate: float = 0.0
    #: lease discipline for cross-enclave grants
    lease_ttl: Time = 6
    renew_every: Time = 2
    #: request/verdict exchange parameters
    rpc_timeout: Time = 2
    rpc_attempts: int = 3
    #: workload shape (see :func:`repro.workloads.partition`)
    node_rate: Time = 6
    lease_rate: Time = 2
    lease_joins_at: Tuple[Time, ...] = (6, 10)
    horizon: Time = 48
    deadline_slack: Time = 12

    def __post_init__(self) -> None:
        if self.children < 1:
            raise FaultInjectionError(
                f"children must be >= 1, got {self.children!r}"
            )
        if self.partition_start < 0 or self.partition_duration < 0:
            raise FaultInjectionError(
                f"partition window must be non-negative, got "
                f"start={self.partition_start!r} "
                f"duration={self.partition_duration!r}"
            )
        names = mesh_names(self.children)
        if self.partition_duration > 0:
            if not self.severed:
                raise FaultInjectionError(
                    "a partition must sever at least one child"
                )
            for node in self.severed:
                if node not in names[1:]:
                    raise FaultInjectionError(
                        f"severed node {node!r} is not a child of the mesh "
                        f"(children: {', '.join(names[1:])})"
                    )
            if self.partition_start >= self.horizon:
                raise FaultInjectionError(
                    f"partition_start {self.partition_start!r} must precede "
                    f"the horizon {self.horizon!r}"
                )
        try:
            LinkConfig(
                delay=self.link_delay,
                jitter=self.link_jitter,
                loss=self.link_loss,
                duplicate=self.link_duplicate,
            )
        except ChannelError as exc:
            raise FaultInjectionError(str(exc)) from None
        if self.lease_ttl <= 0:
            raise FaultInjectionError(
                f"lease_ttl must be > 0, got {self.lease_ttl!r}"
            )
        if not 0 < self.renew_every < self.lease_ttl:
            raise FaultInjectionError(
                f"renew_every must lie in (0, lease_ttl), got "
                f"{self.renew_every!r} against ttl {self.lease_ttl!r} "
                "(a lease renewed less often than it expires is dead "
                "on a perfect network too)"
            )
        if self.rpc_timeout <= 0:
            raise FaultInjectionError(
                f"rpc_timeout must be > 0, got {self.rpc_timeout!r}"
            )
        if self.rpc_attempts < 1:
            raise FaultInjectionError(
                f"rpc_attempts must be >= 1, got {self.rpc_attempts!r}"
            )
        if self.horizon <= 0:
            raise FaultInjectionError(
                f"horizon must be > 0, got {self.horizon!r}"
            )

    # ------------------------------------------------------------------
    @property
    def door(self) -> str:
        return mesh_names(self.children)[0]

    @property
    def node_names(self) -> Tuple[str, ...]:
        return mesh_names(self.children)

    @property
    def partition_end(self) -> Time:
        return self.partition_start + self.partition_duration

    @property
    def severed_links(self) -> Tuple[Tuple[str, str], ...]:
        return tuple((self.door, node) for node in self.severed)

    @property
    def is_benign(self) -> bool:
        """No partition and a perfect link: the perfect-network baseline."""
        return self.partition_duration == 0 and self.link().is_perfect

    # ------------------------------------------------------------------
    def link(self) -> LinkConfig:
        return LinkConfig(
            delay=self.link_delay,
            jitter=self.link_jitter,
            loss=self.link_loss,
            duplicate=self.link_duplicate,
        )

    def network(self) -> NetworkModel:
        partitions: Tuple[PartitionSpan, ...] = ()
        if self.partition_duration > 0:
            partitions = (
                PartitionSpan(
                    start=self.partition_start,
                    end=self.partition_end,
                    severed=self.severed_links,
                    name=self.partition_name,
                ),
            )
        return NetworkModel(
            seed=self.seed, default=self.link(), partitions=partitions
        )

    def backoff(self) -> Backoff:
        """Retry spacing for RPC retransmissions: short and jittered, so
        retries from different arrivals never synchronise."""
        return Backoff(base=1, factor=2.0, cap=4, jitter=0.25, seed=self.seed)


@checkpointable
class MeshPolicy(AdmissionPolicy):
    """Admission over an enclave mesh whose control plane is a network.

    The door enclave (``n0``) fronts the system; each child node is its
    own enclave carved from the initial allotment.  Every cross-enclave
    interaction is a wire message:

    * arrivals targeting a child are decided by an ``admit`` RPC whose
      elapsed time (delays, timeouts, retries) is charged against the
      deadline before the child's Theorem-4 check;
    * mid-run joins destined for a child are *sent* — a lost or severed
      join is shed at the boundary (the ``+ shed`` conservation leg), a
      delivered one becomes a lease-backed grant on the child's
      controller;
    * leases are renewed holder -> grantor with acks back; a partition
      blocks both legs, so the lease lapses and the child conservatively
      renounces the remainder (the ``+ lease-expired`` leg), evicting
      dependents into the recovery pipeline;
    * a victim's re-admission is decided *locally* by its own enclave
      (degraded autonomy — no round trip); only if the local allotment
      cannot re-assure the deadline are migration offers sent to other
      enclaves over the wire.

    The policy is picklable (plans, network model, channel, enclave tree,
    lease table — all plain data), so checkpoint/resume keeps working.
    """

    name = "netmesh"

    def __init__(self, plan: PartitionPlan) -> None:
        self._plan = plan
        self._network = plan.network()
        self._channel = MessageChannel(self._network, name="mesh")
        self._backoff = plan.backoff()
        self._door = plan.door
        self._node_names = plan.node_names
        # The enclave tree is built lazily from the first
        # observe_resources call (the simulator's initial-resources
        # priming), so the same policy object works with any base set.
        self._root: Optional[Enclave] = None
        self._enclaves: Dict[str, Enclave] = {}
        self._leases = LeaseTable()
        self._placements: Dict[str, str] = {}
        #: wire msg_ids already applied (duplicate deliveries are dropped)
        self._applied: Dict[str, bool] = {}
        #: leases lapsed since the last reconciliation, with expiry time
        self._unreconciled: List[Tuple[Lease, Time]] = []
        #: renounced quantity per lease id, measured at expiry
        self._renounced: Dict[str, Time] = {}
        self._rpc_seq = 0
        #: wire WAL entries accumulated this slice; the simulator drains
        #: them into the journal via :meth:`drain_wire_records`
        # repro-flow: derivable=_wire_wal -- slice-local journal buffer,
        # drained every slice; PR 9 recovery replays it from the journal,
        # so checkpoints deliberately exclude it (_WIRE_STATE)
        self._wire_wal: List[Dict[str, object]] = []
        # Observational tallies (reported by benchmarks, never traced).
        self.network_delay_charged: Time = 0
        self.rpc_failures = 0
        self.stray_verdicts = 0
        self.late_acks = 0
        self.joins_shed = 0
        self.migrations = 0

    # ------------------------------------------------------------------
    @property
    def plan(self) -> PartitionPlan:
        return self._plan

    @property
    def channel(self) -> MessageChannel:
        return self._channel

    @property
    def leases(self) -> LeaseTable:
        return self._leases

    @property
    def root(self) -> Optional[Enclave]:
        return self._root

    def placement_of(self, label: str) -> Optional[str]:
        return self._placements.get(label)

    # ------------------------------------------------------------------
    # Durability: the wire is derivable state
    # ------------------------------------------------------------------
    #: Attributes excluded from the policy's own pickle: the checkpoint
    #: carries them in its dedicated ``network`` section instead (see
    #: :meth:`network_snapshot`), the single authority on wire state.
    _WIRE_STATE = (
        "_channel",
        "_leases",
        "_applied",
        "_unreconciled",
        "_renounced",
        "_wire_wal",
    )

    def __getstate__(self) -> Dict[str, object]:
        state = dict(self.__dict__)
        for name in self._WIRE_STATE:
            state.pop(name, None)
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        # A bare unpickle yields a structurally valid policy with an
        # *empty* wire; resume() immediately follows up with
        # restore_network() from the checkpoint's network section.
        self.__dict__.update(state)
        self._channel = MessageChannel(self._network, name="mesh")
        self._leases = LeaseTable()
        self._applied = {}
        self._unreconciled = []
        self._renounced = {}
        self._wire_wal = []

    def network_snapshot(self) -> Dict[str, object]:
        """The policy's entire wire state as one checkpoint section.

        Fates are stateless draws over ``(seed, link, msg_id)``, so this
        — the in-flight queue and its send-order counter, the channel
        stats/log, the lease table's grant/renewal clocks, the
        applied-message dedup map, and the RPC attempt counter — is all
        a resume needs to rebuild a byte-identical channel without
        replaying a single draw."""
        return {
            "channel": self._channel.state_snapshot(),
            "leases": self._leases.state_snapshot(),
            "applied": dict(self._applied),
            "unreconciled": [
                (lease.lease_id, at) for lease, at in self._unreconciled
            ],
            "renounced": dict(self._renounced),
            "rpc_seq": self._rpc_seq,
            "tallies": {
                "network_delay_charged": self.network_delay_charged,
                "rpc_failures": self.rpc_failures,
                "stray_verdicts": self.stray_verdicts,
                "late_acks": self.late_acks,
                "joins_shed": self.joins_shed,
                "migrations": self.migrations,
            },
        }

    def restore_network(self, snapshot: Dict[str, object]) -> None:
        """Reinstate a :meth:`network_snapshot` (the dedup map included,
        so a resumed run neither double-applies a retransmitted message
        nor double-renounces an already-expired lease)."""
        self._channel.restore_state(snapshot["channel"])
        self._leases.restore_state(snapshot["leases"])
        self._applied = dict(snapshot["applied"])
        self._unreconciled = [
            (self._leases.get(lease_id), at)
            for lease_id, at in snapshot["unreconciled"]
        ]
        self._renounced = dict(snapshot["renounced"])
        self._rpc_seq = snapshot["rpc_seq"]
        for name, value in snapshot["tallies"].items():
            setattr(self, name, value)
        self._wire_wal = []

    def drain_wire_records(self) -> List[Dict[str, object]]:
        """Hand the slice's wire WAL entries to the simulator's journal
        (lease grants/renewals/expiries, RPC verdicts, duplicate drops —
        each re-verified, never re-decided, on replay)."""
        drained, self._wire_wal = self._wire_wal, []
        return drained

    def _wal_rpc(
        self, op: str, key: str, outcome: RpcOutcome, now: Time
    ) -> None:
        end = outcome.completed_at if outcome.ok else outcome.gave_up_at
        self._wire_wal.append(
            {
                "type": "wire",
                "kind": "rpc",
                "op": op,
                "key": key,
                "ok": bool(outcome.ok),
                "attempts": outcome.attempts,
                "strays": outcome.stray_replies,
                "time": time_to_wire(now),
                "end": time_to_wire(end),
            }
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _advance(self, now: Time) -> None:
        if self._root is None:
            return
        for enclave in self._root.walk():
            enclave.controller.advance_to(now)

    @staticmethod
    def _location_name(ltype) -> str:
        where = ltype.location
        if isinstance(where, Node):
            return where.name
        return where.source.name

    def _split_by_node(
        self, resources: ResourceSet
    ) -> List[Tuple[str, ResourceSet]]:
        groups: Dict[str, Dict] = {}
        for ltype in resources.located_types:
            groups.setdefault(self._location_name(ltype), {})[ltype] = (
                resources.profile(ltype)
            )
        return [
            (node, ResourceSet.from_profiles(profiles))
            for node, profiles in groups.items()
        ]

    def _target_node(self, requirement: ConcurrentRequirement) -> str:
        for component in requirement.components:
            for phase in component.phases:
                for ltype in phase:
                    return self._location_name(ltype)
        return self._door

    def _attach(self, node: str, label: str) -> None:
        """Admissions at a child ride every lease active there: their
        promise is only as durable as the pledges backing the slack."""
        for lease in self._leases.active(self._enclaves[node].controller.now):
            if lease.holder == node:
                lease.attach(label)

    # ------------------------------------------------------------------
    # AdmissionPolicy interface
    # ------------------------------------------------------------------
    def observe_resources(self, resources: ResourceSet, now: Time) -> None:
        if self._root is None:
            # Priming call: the base allotments, owned outright (the only
            # capacity that is *not* leased).  Children are carved from
            # the root per node.
            self._root = Enclave.root(
                resources, name=self._door, now=now, align=1
            )
            self._enclaves = {self._door: self._root}
            portions = dict(self._split_by_node(resources))
            for node in self._node_names[1:]:
                allotment = portions.get(node, ResourceSet.empty())
                self._enclaves[node] = self._root.spawn(node, allotment)
            return
        # A later join: admit_resources already put the child-bound
        # portions on the wire (they join their enclaves at delivery,
        # via poll); only the door's own portion lands here directly.
        self._advance(now)
        for node, portion in self._split_by_node(resources):
            if node == self._door:
                self._root.controller.add_resources(portion)

    def admit_resources(self, resources: ResourceSet, now: Time) -> ResourceSet:
        """Send child-bound join portions over the wire; a lost or
        severed join never enters the system — it is shed at the
        boundary, the simulator measures it, conservation extends."""
        if self._root is None:
            return resources
        kept: Dict = {}
        dropped = False
        for node, portion in self._split_by_node(resources):
            if node == self._door:
                for ltype in portion.located_types:
                    kept[ltype] = portion.profile(ltype)
                continue
            record = self._channel.send(
                "join",
                self._door,
                node,
                now,
                msg_id=f"join:{node}@{now}",
                payload=portion,
            )
            if record.delivered:
                for ltype in portion.located_types:
                    kept[ltype] = portion.profile(ltype)
            else:
                dropped = True
                self.joins_shed += 1
        if not dropped:
            return resources
        return ResourceSet.from_profiles(kept)

    def decide(
        self, requirement: ConcurrentRequirement, now: Time
    ) -> PolicyDecision:
        if self._root is None:
            return PolicyDecision(False, reason="mesh has no resources yet")
        self._advance(now)
        label = requirement.components[0].label.split("[")[0] or "arrival"
        placed = self._placements.get(label)
        if placed is not None:
            return self._redecide(label, placed, requirement, now)
        target = self._target_node(requirement)
        enclave = self._enclaves.get(target)
        if enclave is None:
            return PolicyDecision(
                False, reason=f"no enclave at node {target!r}"
            )
        if target == self._door:
            decision = enclave.admit(requirement)
        else:
            # Cross-enclave admission: request/verdict over the wire,
            # elapsed network time charged against the deadline.
            self._rpc_seq += 1
            rpc_key = f"{label}:a{self._rpc_seq}"
            outcome = self._channel.rpc(
                "admit",
                self._door,
                target,
                now,
                key=rpc_key,
                deadline=requirement.deadline,
                timeout=self._plan.rpc_timeout,
                backoff=self._backoff,
                max_attempts=self._plan.rpc_attempts,
            )
            self.stray_verdicts += outcome.stray_replies
            self._wal_rpc("admit", rpc_key, outcome, now)
            if not outcome.ok:
                self.rpc_failures += 1
                return PolicyDecision(
                    False,
                    reason=(
                        f"enclave {target!r} unreachable: no admission "
                        f"verdict after {outcome.attempts} attempt(s)"
                    ),
                )
            if outcome.completed_at >= requirement.deadline:
                self.rpc_failures += 1
                return PolicyDecision(
                    False,
                    reason=(
                        f"verdict from {target!r} landed at "
                        f"t={outcome.completed_at} — after the deadline"
                    ),
                )
            self.network_delay_charged = (
                self.network_delay_charged + outcome.elapsed(now)
            )
            checked = (
                clip_start(requirement, outcome.completed_at)
                if outcome.completed_at > now
                else requirement
            )
            decision = enclave.admit(checked)
        if decision.admitted:
            self._placements[label] = target
            self._attach(target, label)
            return PolicyDecision(True, schedule=decision.schedule)
        return PolicyDecision(
            False,
            reason=decision.reason
            or f"enclave {target!r} cannot assure the deadline",
        )

    def _redecide(
        self,
        label: str,
        placed: str,
        requirement: ConcurrentRequirement,
        now: Time,
    ) -> PolicyDecision:
        """Recovery re-admission: degraded autonomy first, offers second.

        The victim's own enclave decides on its *local* allotment — no
        round trip, so a partitioned enclave keeps re-admitting on what
        it owns outright.  Only when the local check fails are migration
        offers sent to the other enclaves over the (possibly severed)
        wire, each one's latency charged against the deadline.
        """
        local = self._enclaves[placed]
        decision = local.admit(requirement)
        if decision.admitted:
            self._attach(placed, label)
            return PolicyDecision(True, schedule=decision.schedule)
        for node in self._node_names:
            if node == placed:
                continue
            self._rpc_seq += 1
            rpc_key = f"{label}:m{self._rpc_seq}"
            outcome = self._channel.rpc(
                "migrate",
                placed,
                node,
                now,
                key=rpc_key,
                deadline=requirement.deadline,
                timeout=self._plan.rpc_timeout,
                backoff=self._backoff,
                max_attempts=1,
            )
            self.stray_verdicts += outcome.stray_replies
            self._wal_rpc("migrate", rpc_key, outcome, now)
            if not outcome.ok:
                self.rpc_failures += 1
                continue
            if outcome.completed_at >= requirement.deadline:
                continue
            self.network_delay_charged = (
                self.network_delay_charged + outcome.elapsed(now)
            )
            offered = (
                clip_start(requirement, outcome.completed_at)
                if outcome.completed_at > now
                else requirement
            )
            accepted = self._enclaves[node].admit(offered)
            if accepted.admitted:
                self._placements[label] = node
                self._attach(node, label)
                self.migrations += 1
                return PolicyDecision(True, schedule=accepted.schedule)
        return PolicyDecision(
            False,
            reason=(
                f"degraded autonomy: enclave {placed!r} cannot re-assure "
                f"{label!r} locally and no reachable enclave accepted "
                "the migration offer"
            ),
        )

    def observe_loss(self, lost: ResourceSet, now: Time) -> None:
        """Route a measured loss to the enclaves owning the capacity."""
        if self._root is None:
            return
        self._advance(now)
        for node, portion in self._split_by_node(lost):
            enclave = self._enclaves.get(node)
            if enclave is not None:
                enclave.controller.revoke_resources(portion)

    def forfeit(self, label: str, now: Time) -> None:
        placed = self._placements.get(label)
        if placed is None:
            return
        controller = self._enclaves[placed].controller
        controller.advance_to(now)
        try:
            controller.forfeit(label)
        except Exception:
            # Eviction is best-effort by design (see RotaAdmission).
            pass

    def on_leave(self, label: str, now: Time) -> None:
        placed = self._placements.pop(label, None)
        if placed is None:
            return
        controller = self._enclaves[placed].controller
        try:
            controller.withdraw(label, now=now)
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Channel hooks (driven by the simulator each slice)
    # ------------------------------------------------------------------
    def poll(
        self, now: Time
    ) -> Iterator[Tuple[Optional[ResourceSet], str, str]]:
        """One slice of network housekeeping.

        Delivers due wire messages (joins become lease-backed grants,
        renewals are acked, acks extend expiries), sends due renewal
        requests, then conservatively expires unrenewable leases — acks
        are processed *before* the expiry check, so a renewal that beat
        the lapse always wins.  Yields ``(lost, cause, message)``
        incidents; a lease expiry's renounced remainder flows through
        the simulator's ordinary fault path.
        """
        if self._root is None:
            return
        self._advance(now)
        plan = self._plan
        for record in self._channel.deliver_due(now):
            if self._applied.get(record.msg_id):
                self._wire_wal.append(
                    {
                        "type": "wire",
                        "kind": "dup-drop",
                        "id": record.msg_id,
                        "time": time_to_wire(now),
                    }
                )
                yield (
                    None,
                    "",
                    f"duplicate {record.kind} {record.msg_id!r} dropped",
                )
                continue
            self._applied[record.msg_id] = True
            if record.kind == "join":
                node = record.dst
                grant: ResourceSet = record.payload
                usable = grant.truncate_before(now)
                self._enclaves[node].controller.add_resources(usable)
                lease = self._leases.grant(
                    Lease(
                        lease_id=record.msg_id,
                        grantor=self._door,
                        holder=node,
                        resources=grant,
                        granted_at=now,
                        expires_at=now + plan.lease_ttl,
                        ttl=plan.lease_ttl,
                        renew_every=plan.renew_every,
                    )
                )
                self._wire_wal.append(
                    {
                        "type": "wire",
                        "kind": "lease-grant",
                        "id": lease.lease_id,
                        "holder": node,
                        "time": time_to_wire(now),
                        "expires": time_to_wire(lease.expires_at),
                    }
                )
                yield (
                    None,
                    "",
                    f"lease {lease.lease_id!r} granted to {node!r} "
                    f"(ttl {plan.lease_ttl})",
                )
            elif record.kind == "lease-renew":
                # Landed at the grantor: ack back over the wire.
                self._channel.send(
                    "lease-ack",
                    record.dst,
                    record.src,
                    now,
                    msg_id=f"{record.msg_id}:ack",
                    payload=record.payload,
                )
            elif record.kind == "lease-ack":
                lease = self._leases.get(record.payload)
                if lease.expired:
                    self.late_acks += 1
                    self._wire_wal.append(
                        {
                            "type": "wire",
                            "kind": "lease-ack",
                            "id": lease.lease_id,
                            "time": time_to_wire(now),
                            "late": True,
                        }
                    )
                    yield (
                        None,
                        "",
                        f"late renewal ack for expired lease "
                        f"{lease.lease_id!r} ignored",
                    )
                else:
                    lease.renew(now)
                    self._wire_wal.append(
                        {
                            "type": "wire",
                            "kind": "lease-ack",
                            "id": lease.lease_id,
                            "time": time_to_wire(now),
                            "late": False,
                            "expires": time_to_wire(lease.expires_at),
                        }
                    )
        for lease in self._leases.due_renewals(now):
            lease.mark_renewal_sent(now)
            sent = self._channel.send(
                "lease-renew",
                lease.holder,
                lease.grantor,
                now,
                msg_id=f"{lease.lease_id}:renew@{now}",
                payload=lease.lease_id,
            )
            if not sent.delivered:
                lease.failed_renewals += 1
            self._wire_wal.append(
                {
                    "type": "wire",
                    "kind": "lease-renew",
                    "id": lease.lease_id,
                    "time": time_to_wire(now),
                    "delivered": sent.delivered,
                }
            )
        for lease in self._leases.expire_due(now):
            remaining = lease.remaining(now)
            quantity: Time = 0
            measure = Interval(now, plan.horizon)
            for ltype in remaining.located_types:
                quantity = quantity + remaining.quantity(ltype, measure)
            self._renounced[lease.lease_id] = quantity
            self._unreconciled.append((lease, now))
            self._wire_wal.append(
                {
                    "type": "wire",
                    "kind": "lease-expired",
                    "id": lease.lease_id,
                    "time": time_to_wire(now),
                    "renounced": time_to_wire(quantity),
                    "failed_renewals": lease.failed_renewals,
                }
            )
            yield (
                None if remaining.is_empty else remaining,
                "lease-expired",
                f"lease {lease.lease_id!r} expired unrenewable at t={now} "
                f"after {lease.failed_renewals} failed renewal(s): "
                f"{lease.holder!r} conservatively renounces the remainder",
            )

    def on_partition(
        self, name: str, links, now: Time, *, healed: bool = False
    ) -> Iterator[str]:
        """Partition boundaries: degraded autonomy on start, account
        reconciliation on heal (returned lines become trace notes)."""
        self._advance(now)
        cut: List[str] = []
        for pair in links:
            for endpoint in pair:
                if endpoint != self._door and endpoint not in cut:
                    cut.append(endpoint)
        if not healed:
            for node in cut:
                yield (
                    f"enclave {node!r} enters degraded autonomy "
                    f"(link to {self._door!r} severed)"
                )
            return
        settled = list(self._unreconciled)
        self._unreconciled = []
        stats = self._channel.stats
        yield (
            f"partition {name!r} reconciled: {len(settled)} lease(s) "
            f"settled expired, {stats.severed} message(s) severed, "
            f"{self.rpc_failures} rpc failure(s) so far"
        )
        for lease, at in settled:
            quantity = self._renounced.get(lease.lease_id, 0)
            yield (
                f"reconcile lease {lease.lease_id!r}: expired t={at}, "
                f"renounced quantity {float(quantity):g}, "
                f"dependents {list(lease.dependents)!r}"
            )


# ----------------------------------------------------------------------
# Scenario plumbing
# ----------------------------------------------------------------------
def mesh_events(plan: PartitionPlan) -> Tuple[ResourceSet, List[Event]]:
    """The plan's full event list: arrivals, lease-backed joins, and —
    when a partition is scheduled — its start/heal boundary events."""
    resources, stream, joins = partitioned_mesh_stream(
        plan.seed,
        children=plan.children,
        node_rate=plan.node_rate,
        horizon=plan.horizon,
        lease_joins_at=plan.lease_joins_at,
        lease_rate=plan.lease_rate,
        deadline_slack=plan.deadline_slack,
    )
    events: List[Event] = [
        arrival(at, requirement, label=label)
        for at, label, requirement in stream
    ]
    events.extend(resource_join(at, joining) for at, joining in joins)
    if plan.partition_duration > 0:
        events.append(
            partition_start(
                plan.partition_start, plan.partition_name, plan.severed_links
            )
        )
        events.append(
            partition_heal(
                plan.partition_end, plan.partition_name, plan.severed_links
            )
        )
    return resources, events


def run_mesh(
    plan: PartitionPlan,
    *,
    invariant_interval: int = 1,
    recovery: Optional[RecoveryPolicy] = None,
    checkpoint_every: int = 0,
    checkpoint_dir: Union[str, Path, CheckpointStore, None] = None,
    journal: Union[str, Path, Journal, None] = None,
) -> Tuple[SimulationReport, MeshPolicy]:
    """One full mesh run under the plan's network, with recovery on and
    (by default) the extended conservation identity asserted per slice.

    Durability is opt-in exactly as for any other policy: ``journal``
    write-ahead-logs events, decisions, *and* wire outcomes;
    ``checkpoint_dir`` snapshots the simulator plus the policy's network
    section, so a killed mesh run resumes via :func:`resume_mesh`."""
    resources, events = mesh_events(plan)
    policy = MeshPolicy(plan)
    simulator = OpenSystemSimulator(
        policy,
        initial_resources=resources,
        recovery=recovery or RecoveryPolicy(),
        invariant_interval=invariant_interval,
    )
    simulator.schedule(*events)
    report = simulator.run(
        plan.horizon,
        checkpoint_every=checkpoint_every,
        checkpoint_dir=checkpoint_dir,
        journal=journal,
    )
    return report, policy


def resume_mesh(
    checkpoint_dir: Union[str, Path],
) -> Tuple[SimulationReport, MeshPolicy]:
    """Resume an interrupted mesh run from its durable artifacts.

    Picks the newest usable checkpoint under ``checkpoint_dir`` (delta
    chains validated), replays the journal suffix with every regenerated
    record — wire WAL entries included — verified against the crashed
    run's, and finishes the run.  Returns the full report plus the
    restored policy, whose channel log, lease table, and stats are
    byte-identical to an uninterrupted run's."""
    directory = Path(checkpoint_dir)
    store = CheckpointStore(directory)
    latest = store.latest()
    if latest is None:
        raise CheckpointError(
            f"no usable checkpoint under {directory}: nothing to resume"
        )
    journal_path = directory / "journal.jsonl"
    simulator = OpenSystemSimulator.resume(
        latest,
        journal_path if journal_path.exists() else None,
        checkpoint_dir=store,
    )
    report = simulator.resume_run()
    policy = simulator.admission_policy
    if not isinstance(policy, MeshPolicy):
        raise CheckpointError(
            f"checkpoint under {directory} restored policy "
            f"{policy.name!r}, not the mesh"
        )
    return report, policy


def network_digest(policy: MeshPolicy) -> str:
    """A canonical SHA-256 over the policy's entire wire state.

    Covers the channel log (message identities, fates, and timing — the
    full history of every draw's outcome), the in-flight queue, the
    aggregate stats, the lease table's clocks, the applied-message dedup
    map, and the RPC attempt counter.  Two runs with equal digests took
    byte-identical wires; the crash matrix demands resumed == fresh."""
    snapshot = policy.network_snapshot()
    channel = snapshot["channel"]

    def wire(value) -> Optional[str]:
        return None if value is None else str(time_to_wire(value))

    payload = {
        "log": [
            [r.msg_id, r.kind, r.src, r.dst, wire(r.sent_at), r.fate,
             wire(r.deliver_at)]
            for r in channel["log"]
        ],
        "pending": sorted(
            [wire(at), seq, record.msg_id]
            for at, seq, record in channel["pending"]
        ),
        "pending_seq": channel["pending_seq"],
        "stats": {
            "sent": channel["stats"].sent,
            "delivered": channel["stats"].delivered,
            "lost": channel["stats"].lost,
            "severed": channel["stats"].severed,
            "duplicated": channel["stats"].duplicated,
            "total_delay": wire(channel["stats"].total_delay),
            "by_kind": sorted(channel["stats"].by_kind.items()),
        },
        "leases": [
            [l.lease_id, l.grantor, l.holder, wire(l.granted_at),
             wire(l.expires_at), wire(l.next_renew_at), l.renewals,
             l.failed_renewals, list(l.dependents), wire(l.expired_at)]
            for l in snapshot["leases"]
        ],
        "applied": sorted(snapshot["applied"]),
        "unreconciled": [
            [lease_id, wire(at)]
            for lease_id, at in snapshot["unreconciled"]
        ],
        "renounced": sorted(
            (lease_id, wire(quantity))
            for lease_id, quantity in snapshot["renounced"].items()
        ),
        "rpc_seq": snapshot["rpc_seq"],
        "tallies": {
            name: wire(value)
            for name, value in snapshot["tallies"].items()
        },
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def admitted_promise_violations(report: SimulationReport) -> List[str]:
    """Labels of admitted computations whose promise silently broke.

    ``missed`` is the violation the model must rule out; ``running`` at
    the horizon means a promise was neither kept nor honestly settled.
    Recovered and abandoned-with-salvage records are *not* violations —
    they went through the renegotiation pipeline."""
    return [
        r.label for r in report.records if r.outcome in ("missed", "running")
    ]


# ----------------------------------------------------------------------
# The partition matrix
# ----------------------------------------------------------------------
@dataclass
class NetfaultPoint:
    """One cell of the partition matrix and what it proved."""

    start: Time
    duration: Time
    loss: float
    delay: int
    arrivals: int = 0
    admitted: int = 0
    completed: int = 0
    recovered: int = 0
    abandoned: int = 0
    lease_expirations: int = 0
    rpc_failures: int = 0
    #: admitted promises that silently broke (must stay empty)
    violations: List[str] = field(default_factory=list)
    #: the two runs' report fingerprints agree field-for-field
    identical: bool = False
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.identical and not self.violations and not self.detail


@dataclass
class NetfaultResult:
    """Outcome of a full partition matrix."""

    points: List[NetfaultPoint] = field(default_factory=list)

    @property
    def failures(self) -> List[NetfaultPoint]:
        return [p for p in self.points if not p.ok]

    @property
    def ok(self) -> bool:
        return bool(self.points) and not self.failures

    def summary(self) -> str:
        return (
            f"{len(self.points)} partition points, "
            f"{len(self.points) - len(self.failures)} clean, "
            f"{len(self.failures)} failures"
        )


def _mesh_point(plan: PartitionPlan) -> NetfaultPoint:
    report_a, policy_a = run_mesh(plan)
    report_b, _ = run_mesh(plan)
    fp_a = report_fingerprint(report_a)
    fp_b = report_fingerprint(report_b)
    point = NetfaultPoint(
        start=plan.partition_start,
        duration=plan.partition_duration,
        loss=plan.link_loss,
        delay=plan.link_delay,
        arrivals=report_a.arrivals,
        admitted=report_a.admitted,
        completed=report_a.completed,
        recovered=report_a.recovered,
        abandoned=report_a.abandoned,
        lease_expirations=len(policy_a.leases.expired()),
        rpc_failures=policy_a.rpc_failures,
        violations=admitted_promise_violations(report_a),
        identical=fp_a == fp_b,
    )
    # The whole-run extended identity; the per-slice version already ran
    # inside the simulator (invariant_interval=1).
    gaps = report_a.trace.conservation_gaps(report_a.offered)
    if gaps:
        point.detail = "conservation gaps: " + "; ".join(gaps)
    elif not point.identical:
        point.detail = "mesh reports diverge: " + ", ".join(
            diff_fingerprints(fp_a, fp_b)
        )
    elif (
        plan.partition_duration > plan.lease_ttl
        and plan.severed
        and not point.lease_expirations
    ):
        point.detail = (
            "partition outlasted the ttl but no lease expired "
            "(plan too gentle)"
        )
    return point


def chaos_partition_matrix(
    plan: PartitionPlan = PartitionPlan(),
    *,
    starts: Optional[Sequence[Time]] = None,
    durations: Optional[Sequence[Time]] = None,
    losses: Optional[Sequence[float]] = None,
    delays: Optional[Sequence[int]] = None,
) -> NetfaultResult:
    """Sweep partition start/duration x loss x delay; callers assert
    ``result.ok``.

    Every cell runs the same seeded mesh twice and demands (1) zero
    admitted-promise violations, (2) field-identical report fingerprints
    (the PR-3 replay oracle), and (3) the extended conservation identity
    — per slice inside the runs, whole-run here.  Defaults include the
    benign cell (no partition, perfect link) as the baseline the
    benchmark compares degraded goodput against.
    """
    if starts is None:
        starts = (plan.partition_start,)
    if durations is None:
        durations = (0, plan.partition_duration)
    if losses is None:
        losses = (0.0, plan.link_loss if plan.link_loss else 0.15)
    if delays is None:
        delays = (0, plan.link_delay if plan.link_delay else 1)
    result = NetfaultResult()
    for duration in durations:
        for start in starts:
            for loss in losses:
                for delay in delays:
                    cell = dataclasses.replace(
                        plan,
                        partition_start=start,
                        partition_duration=duration,
                        link_loss=loss,
                        link_delay=delay,
                    )
                    result.points.append(_mesh_point(cell))
    return result


# ----------------------------------------------------------------------
# The partition x crash matrix
# ----------------------------------------------------------------------
@dataclass
class PartitionCrashPoint:
    """One kill of a journaled mesh run and what its resume proved."""

    kind: str  # "boundary" | "mid-write"
    index: int  # 1-based journal write the crash landed on
    duration: Time  # the cell's partition duration
    #: where the lost record's instant falls relative to the partition
    #: window: "benign" | "pre-partition" | "mid-partition" |
    #: "post-partition"
    phase: str
    #: the lost record is a multi-attempt RPC verdict — the resume must
    #: re-walk the seeded backoff ladder, not re-draw it
    mid_rpc: bool
    crashed: bool
    resumed_from: str = ""
    #: resumed report fingerprint == uninterrupted run's
    identical: bool = False
    #: resumed network digest == uninterrupted run's
    network_identical: bool = False
    detail: str = ""

    @property
    def ok(self) -> bool:
        if not self.crashed:
            return True  # write budget outlived the run; nothing to prove
        return self.identical and self.network_identical


@dataclass
class PartitionCrashResult:
    """Outcome of a full partition x crash matrix."""

    points: List[PartitionCrashPoint] = field(default_factory=list)
    cells: int = 0
    journal_records: int = 0

    @property
    def crashed_points(self) -> List[PartitionCrashPoint]:
        return [p for p in self.points if p.crashed]

    @property
    def mismatches(self) -> List[PartitionCrashPoint]:
        return [p for p in self.points if not p.ok]

    @property
    def covered_mid_partition(self) -> bool:
        return any(p.phase == "mid-partition" for p in self.crashed_points)

    @property
    def covered_mid_rpc(self) -> bool:
        return any(p.mid_rpc for p in self.crashed_points)

    @property
    def ok(self) -> bool:
        return bool(self.crashed_points) and not self.mismatches

    def summary(self) -> str:
        crashed = self.crashed_points
        return (
            f"{self.cells} cells, {self.journal_records} journal records, "
            f"{len(self.points)} kill points ({len(crashed)} crashed, "
            f"{sum(1 for p in crashed if p.phase == 'mid-partition')} "
            f"mid-partition, {sum(1 for p in crashed if p.mid_rpc)} "
            f"mid-rpc-backoff), {len(self.mismatches)} mismatches"
        )


def _crash_phase(cell: PartitionPlan, record: Optional[dict]) -> str:
    """Classify the journal record a crash tears by partition phase."""
    if cell.partition_duration <= 0:
        return "benign"
    if record is None or "time" not in record:
        return "pre-partition"  # the header, or nothing yet
    at = time_from_wire(record["time"])
    if at < cell.partition_start:
        return "pre-partition"
    if at < cell.partition_end:
        return "mid-partition"
    return "post-partition"


def _is_mid_rpc(record: Optional[dict]) -> bool:
    return (
        record is not None
        and record.get("type") == "wire"
        and record.get("kind") == "rpc"
        and record.get("attempts", 1) > 1
    )


def _partition_crash_point(
    cell: PartitionPlan,
    truth_fp: Dict[str, object],
    truth_digest: str,
    pointdir: Path,
    *,
    kind: str,
    crash_at_write: int,
    partial_bytes: Optional[int],
    checkpoint_every: int,
    phase: str,
    mid_rpc: bool,
) -> PartitionCrashPoint:
    pointdir.mkdir(parents=True, exist_ok=True)
    journal_path = pointdir / "journal.jsonl"
    journal = Journal(
        journal_path,
        opener=crashing_opener(
            crash_at_write=crash_at_write, partial_bytes=partial_bytes
        ),
    )
    point = PartitionCrashPoint(
        kind=kind,
        index=crash_at_write,
        duration=cell.partition_duration,
        phase=phase,
        mid_rpc=mid_rpc,
        crashed=False,
    )
    try:
        run_mesh(
            cell,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=pointdir,
            journal=journal,
        )
        return point  # budget outlived the run; nothing to resume
    except SimulatedCrash:
        point.crashed = True
    finally:
        journal.close()
    if CheckpointStore(pointdir).latest() is None:
        # Death before any snapshot became durable: recovery degenerates
        # to starting over — still loss-free, still identical.
        point.resumed_from = "fresh"
        resumed_report, resumed_policy = run_mesh(cell)
    else:
        resumed_report, resumed_policy = resume_mesh(pointdir)
        point.resumed_from = "checkpoint"
    fingerprint = report_fingerprint(resumed_report)
    point.identical = fingerprint == truth_fp
    point.network_identical = network_digest(resumed_policy) == truth_digest
    if not point.identical:
        point.detail = "diverged fields: " + ", ".join(
            diff_fingerprints(truth_fp, fingerprint)
        )
    elif not point.network_identical:
        point.detail = "network digests diverge"
    return point


def chaos_partition_crash_matrix(
    workdir: Union[str, Path],
    plan: PartitionPlan = PartitionPlan(),
    *,
    durations: Optional[Sequence[Time]] = None,
    checkpoint_every: int = 4,
    boundary_stride: int = 1,
    mid_write: bool = True,
) -> PartitionCrashResult:
    """Kill journaled mesh runs at journal-record boundaries (and torn
    mid-write) across partition cells; callers assert ``result.ok``.

    Per cell: an uninterrupted plain run and an uninterrupted
    journaled+checkpointed run must already agree (durability I/O alone
    changes nothing); then the run is killed at every ``boundary_stride``-th
    record boundary — the default 1 covers *every* boundary, including
    mid-partition instants and mid-RPC-backoff records — and each resume
    must reproduce a field-identical report *and* an identical network
    digest versus the uninterrupted run.  In-flight messages, lease
    clocks, and retry ladders all cross the crash boundary through the
    checkpoint's network section + wire WAL, never through a re-drawn
    fate."""
    if boundary_stride < 1:
        raise FaultInjectionError(
            f"boundary_stride must be >= 1, got {boundary_stride!r}"
        )
    workdir = Path(workdir)
    if durations is None:
        durations = (0, plan.partition_duration)
    result = PartitionCrashResult()
    for duration in durations:
        cell = dataclasses.replace(plan, partition_duration=duration)
        result.cells += 1
        celldir = workdir / f"cell-d{duration}"
        truth_report, truth_policy = run_mesh(cell)
        truth_fp = report_fingerprint(truth_report)
        truth_digest = network_digest(truth_policy)
        basedir = celldir / "baseline"
        basedir.mkdir(parents=True, exist_ok=True)
        base_report, base_policy = run_mesh(
            cell,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=basedir,
            journal=basedir / "journal.jsonl",
        )
        base_fp = report_fingerprint(base_report)
        if base_fp != truth_fp or network_digest(base_policy) != truth_digest:
            raise FaultInjectionError(
                "journaling the mesh changed the run itself: "
                + ", ".join(diff_fingerprints(truth_fp, base_fp))
            )
        records, _ = Journal.scan(basedir / "journal.jsonl")
        result.journal_records += len(records)
        for write_index in range(1, len(records) + 1, boundary_stride):
            torn = records[write_index - 1]
            phase = _crash_phase(cell, torn)
            mid_rpc = _is_mid_rpc(torn)
            result.points.append(
                _partition_crash_point(
                    cell,
                    truth_fp,
                    truth_digest,
                    celldir / f"boundary-{write_index:04d}",
                    kind="boundary",
                    crash_at_write=write_index,
                    partial_bytes=None,
                    checkpoint_every=checkpoint_every,
                    phase=phase,
                    mid_rpc=mid_rpc,
                )
            )
            if mid_write:
                result.points.append(
                    _partition_crash_point(
                        cell,
                        truth_fp,
                        truth_digest,
                        celldir / f"midwrite-{write_index:04d}",
                        kind="mid-write",
                        crash_at_write=write_index,
                        partial_bytes=17,
                        checkpoint_every=checkpoint_every,
                        phase=phase,
                        mid_rpc=mid_rpc,
                    )
                )
    return result
