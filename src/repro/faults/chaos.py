"""Chaos harness: kill a run anywhere, resume it, demand identity.

The durability subsystem's contract (:mod:`repro.system.checkpoint`) is
that a run interrupted at *any* instant resumes to the same temporal
state — not a merely similar one.  This module turns that sentence into
an exhaustive experiment:

* :class:`CrashingFile` — an injectable file object that dies after a
  budgeted number of writes, optionally mid-write (leaving the torn tail
  a real ``kill -9`` would leave);
* :func:`chaos_crash_matrix` — runs one seeded scenario, then re-runs it
  once per crash point (every journal-record boundary, i.e. every event
  application and admission decision, plus mid-write tears and
  checkpoint-write crashes), resumes each from the surviving artifacts,
  and compares the resumed :class:`~repro.system.simulator.SimulationReport`
  field-for-field against the uninterrupted run;
* :func:`report_fingerprint` — the canonical, exhaustive comparison form
  (records including violation causes and salvage accounting, offered /
  consumed tallies, every trace note, loss, violation, and per-slice
  transition label).

Conservation (``offered = consumed + expired + lost``) is re-verified at
the resume instant by :meth:`OpenSystemSimulator.resume` itself; the
matrix additionally asserts it on every final report.

The networked sibling of this matrix lives in
:func:`repro.faults.netfaults.chaos_partition_crash_matrix`: it reuses
:class:`SimulatedCrash` / :func:`crashing_opener` to kill *mesh* runs at
every journal-record boundary — including mid-partition and mid-RPC
backoff — and additionally demands the resumed run's wire state
(:func:`repro.faults.netfaults.network_digest`) be byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.errors import RotaError
from repro.serialization import time_to_wire
from repro.system.checkpoint import CheckpointStore, Journal
from repro.system.simulator import OpenSystemSimulator, SimulationReport
from repro.workloads.scenarios import Scenario


class SimulatedCrash(RotaError, RuntimeError):
    """The injected process death.  Raised by :class:`CrashingFile`; the
    harness catches it where a supervisor would observe the exit."""


class CrashingFile:
    """File wrapper that crashes on the ``crash_at_write``-th write call.

    With ``partial_bytes`` set, that write first delivers a prefix of its
    payload (and flushes it, so the torn bytes truly reach the file) —
    modelling a crash mid-``write(2)``.  With ``partial_bytes=None`` the
    write delivers nothing: a clean record-boundary death.
    """

    def __init__(
        self,
        handle: Any,
        *,
        crash_at_write: int,
        partial_bytes: Optional[int] = None,
    ) -> None:
        if crash_at_write < 1:
            raise ValueError("crash_at_write counts writes from 1")
        self._handle = handle
        self._crash_at_write = crash_at_write
        self._partial_bytes = partial_bytes
        self._writes = 0

    def write(self, data) -> int:
        self._writes += 1
        if self._writes == self._crash_at_write:
            if self._partial_bytes:
                torn = data[: self._partial_bytes]
                self._handle.write(torn)
                self._handle.flush()
            raise SimulatedCrash(
                f"simulated crash on write {self._writes}"
                + (" (mid-write)" if self._partial_bytes else "")
            )
        return self._handle.write(data)

    def flush(self) -> None:
        self._handle.flush()

    def fileno(self) -> int:
        return self._handle.fileno()

    def close(self) -> None:
        self._handle.close()

    def __getattr__(self, name: str):
        return getattr(self._handle, name)


def crashing_opener(
    *, crash_at_write: int, partial_bytes: Optional[int] = None
) -> Callable[..., CrashingFile]:
    """An ``open``-alike whose files share one write budget — inject into
    :class:`Journal` or :class:`CheckpointStore` to schedule the death."""
    budget = {"writes_left": crash_at_write}

    def opener(path, mode="r"):
        handle = open(path, mode)
        wrapper = CrashingFile(
            handle,
            crash_at_write=budget["writes_left"],
            partial_bytes=partial_bytes,
        )
        # Writes on earlier files of the same opener count against the
        # shared budget (a process has one death, not one per file).
        original_write = wrapper.write

        def write(data):
            try:
                return original_write(data)
            finally:
                budget["writes_left"] -= 1

        wrapper.write = write  # type: ignore[method-assign]
        return wrapper

    return opener


class _CrashingCheckpointStore(CheckpointStore):
    """Checkpoint store whose ``crash_at_save``-th save dies mid-write,
    leaving a torn temp file and never surfacing the final name."""

    def __init__(self, directory, *, crash_at_save: int) -> None:
        super().__init__(directory)
        self._crash_at_save = crash_at_save
        self._saves = 0

    def save(self, checkpoint) -> Path:
        self._saves += 1
        if self._saves == self._crash_at_save:
            torn = self.path_for(checkpoint.step).with_suffix(".json.tmp")
            torn.write_text(checkpoint.to_json()[: 40])
            raise SimulatedCrash(
                f"simulated crash during checkpoint save {self._saves}"
            )
        return super().save(checkpoint)


# ----------------------------------------------------------------------
# Field-for-field report identity
# ----------------------------------------------------------------------

def report_fingerprint(report: SimulationReport) -> Dict[str, Any]:
    """A canonical value covering every field a report exposes.

    Two runs with equal fingerprints agree on every record (including
    violation instants, recovery attempts, and salvage accounting), every
    aggregate tally, and every trace entry down to per-slice consumption.
    """
    trace = report.trace
    return {
        "policy": report.policy_name,
        "horizon": time_to_wire(report.horizon),
        "records": [
            {
                "label": r.label,
                "arrival_time": time_to_wire(r.arrival_time),
                "window": (
                    time_to_wire(r.window.start),
                    time_to_wire(r.window.end),
                ),
                "total_demands": str(r.total_demands),
                "admitted": r.admitted,
                "rejection_reason": r.rejection_reason,
                "completed": r.completed,
                "finish_time": time_to_wire(r.finish_time)
                if r.finish_time is not None
                else None,
                "missed": r.missed,
                "violated_at": time_to_wire(r.violated_at)
                if r.violated_at is not None
                else None,
                "recovery_attempts": r.recovery_attempts,
                "recovered": r.recovered,
                "abandoned": r.abandoned,
                "salvaged": r.salvaged,
                "outcome": r.outcome,
            }
            for r in report.records
        ],
        "offered": _tally(report.offered),
        "consumed": _tally(report.consumed),
        "notes": [(time_to_wire(n.time), n.message) for n in trace.notes],
        "losses": [
            (time_to_wire(l.time), l.cause, str(l.ltype), float(l.quantity))
            for l in trace.losses
        ],
        "violations": [
            (
                time_to_wire(v.time),
                v.label,
                v.cause,
                time_to_wire(v.deadline),
                float(v.remaining_total),
            )
            for v in trace.violations
        ],
        "transitions": [
            (
                time_to_wire(tr.source.t),
                sorted(
                    (actor, str(ltype), float(q))
                    for actor, ltype, q in tr.label.consumed
                ),
                sorted(
                    (str(ltype), float(q)) for ltype, q in tr.label.expired
                ),
            )
            for tr in trace.transitions
        ],
    }


def _tally(amounts) -> List[tuple]:
    return sorted((str(ltype), float(q)) for ltype, q in amounts.items())


def diff_fingerprints(a: Dict[str, Any], b: Dict[str, Any]) -> List[str]:
    """Human-readable field paths where two fingerprints disagree."""
    gaps = []
    for key in a:
        if a[key] != b[key]:
            gaps.append(key)
    return gaps


# ----------------------------------------------------------------------
# The crash matrix
# ----------------------------------------------------------------------

@dataclass
class CrashPoint:
    """One scheduled death and what resuming from it produced."""

    kind: str  # "boundary" | "mid-write" | "checkpoint"
    index: int  # write (or save) number the crash landed on
    crashed: bool  # False when the run finished before the budget hit
    resumed_from: str = ""  # checkpoint file name, or "fresh" fallback
    replayed_records: int = 0
    identical: bool = False
    detail: str = ""


@dataclass
class ChaosResult:
    """Outcome of a full crash matrix over one scenario."""

    points: List[CrashPoint] = field(default_factory=list)
    journal_records: int = 0

    @property
    def crashed_points(self) -> List[CrashPoint]:
        return [p for p in self.points if p.crashed]

    @property
    def mismatches(self) -> List[CrashPoint]:
        return [p for p in self.crashed_points if not p.identical]

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        crashed = self.crashed_points
        return (
            f"{len(crashed)} crash points "
            f"({len(self.points)} scheduled), "
            f"{len(crashed) - len(self.mismatches)} identical resumes, "
            f"{len(self.mismatches)} mismatches"
        )


def chaos_crash_matrix(
    scenario: Scenario,
    simulator_factory: Callable[[], OpenSystemSimulator],
    workdir: Union[str, Path],
    *,
    checkpoint_every: int = 5,
    mid_write: bool = True,
    checkpoint_crashes: int = 2,
    boundary_stride: int = 1,
) -> ChaosResult:
    """Kill one seeded run at every event boundary; assert resume identity.

    ``simulator_factory`` must build a *fresh* simulator (fresh policy
    state) each call; the scenario's events are scheduled by the harness.
    ``boundary_stride`` thins the boundary sweep (1 = every journal
    record) for quick CI passes.  Returns a :class:`ChaosResult`; callers
    assert ``result.ok``.
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)

    # Ground truth: one plain run (no durability I/O at all) ...
    plain = simulator_factory()
    plain.schedule(*scenario.events)
    truth = report_fingerprint(plain.run(scenario.horizon))

    # ... and one journaled run, to prove journaling changes nothing and
    # to learn how many WAL records a full run writes.
    basedir = workdir / "baseline"
    base_sim = simulator_factory()
    base_sim.schedule(*scenario.events)
    base_report = base_sim.run(
        scenario.horizon,
        checkpoint_every=checkpoint_every,
        checkpoint_dir=basedir,
        journal=basedir / "journal.jsonl",
    )
    base_fp = report_fingerprint(base_report)
    if base_fp != truth:
        raise AssertionError(
            "journaling altered the run itself: "
            f"{diff_fingerprints(truth, base_fp)}"
        )
    records, _ = Journal.scan(basedir / "journal.jsonl")
    total = len(records)

    result = ChaosResult(journal_records=total)
    # Crash on the k-th journal write: the surviving journal holds k-1
    # acknowledged records — that is, death at every record boundary.
    for write_index in range(1, total + 1, boundary_stride):
        result.points.append(
            _run_crash_point(
                scenario, simulator_factory, truth,
                workdir / f"boundary-{write_index:04d}",
                kind="boundary",
                crash_at_write=write_index,
                partial_bytes=None,
                checkpoint_every=checkpoint_every,
            )
        )
        if mid_write:
            result.points.append(
                _run_crash_point(
                    scenario, simulator_factory, truth,
                    workdir / f"midwrite-{write_index:04d}",
                    kind="mid-write",
                    crash_at_write=write_index,
                    partial_bytes=17,
                    checkpoint_every=checkpoint_every,
                )
            )
    # Crashes while *writing a checkpoint*: the torn snapshot must never
    # surface; resume falls back to the previous one plus a longer replay.
    for save_index in range(2, 2 + checkpoint_crashes):
        result.points.append(
            _run_checkpoint_crash_point(
                scenario, simulator_factory, truth,
                workdir / f"ckptcrash-{save_index:02d}",
                crash_at_save=save_index,
                checkpoint_every=checkpoint_every,
            )
        )
    return result


def _run_crash_point(
    scenario: Scenario,
    simulator_factory: Callable[[], OpenSystemSimulator],
    truth: Dict[str, Any],
    pointdir: Path,
    *,
    kind: str,
    crash_at_write: int,
    partial_bytes: Optional[int],
    checkpoint_every: int,
) -> CrashPoint:
    pointdir.mkdir(parents=True, exist_ok=True)
    journal_path = pointdir / "journal.jsonl"
    journal = Journal(
        journal_path,
        opener=crashing_opener(
            crash_at_write=crash_at_write, partial_bytes=partial_bytes
        ),
    )
    simulator = simulator_factory()
    simulator.schedule(*scenario.events)
    point = CrashPoint(kind=kind, index=crash_at_write, crashed=False)
    try:
        simulator.run(
            scenario.horizon,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=pointdir,
            journal=journal,
        )
        return point  # budget outlived the run; nothing to resume
    except SimulatedCrash:
        point.crashed = True
    finally:
        journal.close()
    return _resume_and_compare(
        scenario, simulator_factory, truth, pointdir, journal_path, point
    )


def _run_checkpoint_crash_point(
    scenario: Scenario,
    simulator_factory: Callable[[], OpenSystemSimulator],
    truth: Dict[str, Any],
    pointdir: Path,
    *,
    crash_at_save: int,
    checkpoint_every: int,
) -> CrashPoint:
    pointdir.mkdir(parents=True, exist_ok=True)
    journal_path = pointdir / "journal.jsonl"
    store = _CrashingCheckpointStore(pointdir, crash_at_save=crash_at_save)
    simulator = simulator_factory()
    simulator.schedule(*scenario.events)
    point = CrashPoint(kind="checkpoint", index=crash_at_save, crashed=False)
    try:
        simulator.run(
            scenario.horizon,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=store,
            journal=journal_path,
        )
        return point
    except SimulatedCrash:
        point.crashed = True
    return _resume_and_compare(
        scenario, simulator_factory, truth, pointdir, journal_path, point
    )


def _resume_and_compare(
    scenario: Scenario,
    simulator_factory: Callable[[], OpenSystemSimulator],
    truth: Dict[str, Any],
    pointdir: Path,
    journal_path: Path,
    point: CrashPoint,
) -> CrashPoint:
    store = CheckpointStore(pointdir)
    latest = store.latest()
    if latest is None:
        # Death before any snapshot became durable: nothing to restore,
        # so recovery degenerates to starting over — still loss-free.
        point.resumed_from = "fresh"
        fresh = simulator_factory()
        fresh.schedule(*scenario.events)
        resumed_report = fresh.run(scenario.horizon)
    else:
        point.resumed_from = latest.name
        resumed = OpenSystemSimulator.resume(
            latest, journal_path if journal_path.exists() else None
        )
        point.replayed_records = len(resumed._replay_records)
        resumed_report = resumed.resume_run()
    fingerprint = report_fingerprint(resumed_report)
    point.identical = fingerprint == truth
    if not point.identical:
        point.detail = "diverged fields: " + ", ".join(
            diff_fingerprints(truth, fingerprint)
        )
    return point
