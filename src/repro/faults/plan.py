"""Seeded, deterministic fault plans.

A :class:`FaultPlan` turns any existing scenario into its faulty variant:
given the scenario's resource-join events (the sessions whose leave times
were honestly pre-declared, per :mod:`repro.workloads.churn`), the plan
injects *unannounced* events the paper's model forbids:

* **crashes** — Poisson-arriving :class:`NodeCrashEvent`\\ s: every
  resource at a node vanishes now, not at its declared end;
* **revocations** — per-session early capacity loss
  (:class:`ResourceRevocationEvent`, via
  :func:`repro.workloads.churn.broken_promises`);
* **stragglers** — Poisson-arriving :class:`RateDegradationEvent`\\ s: a
  node keeps running but delivers only a fraction of its declared rate.

Everything derives from ``random.Random(seed)`` alone, so two runs with
the same plan and workload produce identical traces — the determinism the
CI suite asserts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from fractions import Fraction
from typing import List, Optional, Sequence

from repro.errors import FaultInjectionError
from repro.resources.located_type import Node
from repro.system.events import (
    Event,
    NodeCrashEvent,
    RateDegradationEvent,
    ResourceJoinEvent,
)
from repro.system.node import Topology
from repro.workloads.churn import broken_promises
from repro.workloads.scenarios import Scenario


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic description of what goes wrong, and when."""

    seed: int = 0
    #: Poisson rate of node crashes per time unit (0 disables)
    crash_rate: float = 0.0
    #: per-session probability of early, unannounced revocation
    revocation_rate: float = 0.0
    #: Poisson rate of straggler (rate-degradation) events per time unit
    straggler_rate: float = 0.0
    #: surviving rate fraction after a straggler fault, in [0, 1)
    straggler_factor: float = 0.5
    #: how early (time units) a revocation lands before the declared end
    min_early: int = 2
    max_early: int = 10

    def __post_init__(self) -> None:
        if self.crash_rate < 0 or self.straggler_rate < 0:
            raise FaultInjectionError(
                "fault rates must be non-negative, got "
                f"crash_rate={self.crash_rate!r} "
                f"straggler_rate={self.straggler_rate!r}"
            )
        if not 0 <= self.revocation_rate <= 1:
            raise FaultInjectionError(
                f"revocation_rate must lie in [0, 1], got "
                f"{self.revocation_rate!r}"
            )
        if not 0 <= self.straggler_factor < 1:
            raise FaultInjectionError(
                f"straggler_factor must lie in [0, 1), got "
                f"{self.straggler_factor!r}"
            )
        if self.min_early < 1 or self.max_early < self.min_early:
            raise FaultInjectionError(
                f"invalid early-revocation bounds "
                f"[{self.min_early}, {self.max_early}]"
            )

    @property
    def is_benign(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            self.crash_rate == 0
            and self.revocation_rate == 0
            and self.straggler_rate == 0
        )

    def scaled(self, intensity: float) -> "FaultPlan":
        """The same plan with every rate multiplied by ``intensity`` —
        the knob fault-rate sweeps turn (revocation probability clamps
        at 1)."""
        if intensity < 0:
            raise FaultInjectionError(
                f"intensity must be non-negative, got {intensity!r}"
            )
        return replace(
            self,
            crash_rate=self.crash_rate * intensity,
            revocation_rate=min(1.0, self.revocation_rate * intensity),
            straggler_rate=self.straggler_rate * intensity,
        )

    # ------------------------------------------------------------------
    def events(
        self,
        *,
        horizon: int,
        locations: Sequence[Node],
        sessions: Sequence[ResourceJoinEvent] = (),
    ) -> List[Event]:
        """All injected fault events for one run, deterministically.

        ``locations`` are the nodes crashes and stragglers may strike;
        ``sessions`` are the join events revocations may violate.
        """
        if horizon <= 0:
            raise FaultInjectionError(
                f"horizon must be positive, got {horizon!r}"
            )
        rng = random.Random(self.seed)
        out: List[Event] = []
        if self.revocation_rate > 0 and sessions:
            out.extend(
                broken_promises(
                    rng,
                    list(sessions),
                    violation_rate=self.revocation_rate,
                    min_early=self.min_early,
                    max_early=self.max_early,
                )
            )
        if locations:
            out.extend(
                NodeCrashEvent(time=t, location=rng.choice(list(locations)))
                for t in _poisson_times(rng, self.crash_rate, horizon)
            )
            factor = Fraction(self.straggler_factor).limit_denominator(10_000)
            out.extend(
                RateDegradationEvent(
                    time=t,
                    location=rng.choice(list(locations)),
                    factor=factor,
                )
                for t in _poisson_times(rng, self.straggler_rate, horizon)
            )
        return out


def _poisson_times(
    rng: random.Random, rate: float, horizon: int
) -> List[int]:
    """Integer-grid Poisson arrival times in ``[1, horizon)``."""
    if rate <= 0:
        return []
    times: List[int] = []
    t = 0.0
    while True:
        t += rng.expovariate(rate)
        at = int(t)
        if at >= horizon:
            return times
        if at >= 1:  # a fault at t=0 would precede the scenario itself
            times.append(at)


def faulty_scenario(
    scenario: Scenario,
    plan: FaultPlan,
    *,
    topology: Optional[Topology] = None,
) -> Scenario:
    """Compose a scenario with a fault plan: same workload, plus faults.

    Crash/straggler locations come from ``topology`` when given, else
    from every node mentioned by the scenario's resources (initial set
    and join events).  The original scenario object is never mutated.
    """
    if topology is not None:
        locations: List[Node] = list(topology.nodes)
    else:
        locations = _mentioned_nodes(scenario)
    sessions = [
        event
        for event in scenario.events
        if isinstance(event, ResourceJoinEvent)
    ]
    injected = plan.events(
        horizon=scenario.horizon, locations=locations, sessions=sessions
    )
    return Scenario(
        name=f"{scenario.name}+faults@{plan.seed}",
        initial_resources=scenario.initial_resources,
        events=[*scenario.events, *injected],
        horizon=scenario.horizon,
    )


def _mentioned_nodes(scenario: Scenario) -> List[Node]:
    """Every node hosting capacity anywhere in the scenario, in first-seen
    order (deterministic, so fault plans replay)."""
    seen: dict = {}

    def visit(ltypes) -> None:
        for ltype in ltypes:
            location = ltype.location
            if isinstance(location, Node):
                seen.setdefault(location, None)
            else:  # a link: both endpoints host capacity
                seen.setdefault(location.source, None)
                seen.setdefault(location.destination, None)

    visit(scenario.initial_resources.located_types)
    for event in scenario.events:
        if isinstance(event, ResourceJoinEvent):
            visit(event.resources.located_types)
    return list(seen)
