"""The promise-violation recovery pipeline's configuration.

When detection (:mod:`repro.faults.detection`) declares a victim, the
simulator routes it through a :class:`RecoveryPolicy`:

1. **eviction** — the victim leaves ``rho``; its admission commitment is
   forfeited so the freed slack is visible to everyone;
2. **re-admission** — the residual requirement (remaining phases,
   re-windowed to ``(now, deadline)``) is re-offered to the same
   admission policy, i.e. through the same Theorem-4 check that made the
   original promise, now against *surviving* resources;
3. **backoff** — rejected re-offers repeat on a capped exponential
   schedule (:class:`repro.baselines.retry.ExponentialBackoff`,
   generalized from the retry baseline) until the attempt budget or the
   deadline runs out;
4. **graceful degradation** — a victim that cannot be re-placed ends in
   an explicit ``abandoned`` outcome with salvage accounting for the work
   it already consumed, never a crash or a stuck record.

The policy object is deliberately pure configuration: all mechanism lives
in the simulator so recovery replays deterministically with the event
stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.retry import ExponentialBackoff
from repro.errors import RecoveryError
from repro.intervals.interval import Time
from repro.observability import get_registry

#: Backoff delays are simulation-time units (powers of the backoff base),
#: not wall seconds; bucket on the exponential ladder.
_BACKOFF_BUCKETS = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


@dataclass(frozen=True)
class RecoveryPolicy:
    """How hard, and how patiently, to fight for a violated promise."""

    #: maximum re-admission offers per violation before abandoning
    max_attempts: int = 4
    #: delay schedule between consecutive re-offers
    backoff: ExponentialBackoff = field(default_factory=ExponentialBackoff)
    #: re-offer immediately at detection time (before any backoff delay);
    #: the fault that hurt this victim may have spared slack elsewhere
    immediate_first_offer: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise RecoveryError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )

    def next_offer_delay(self, attempts_done: int) -> Time:
        """Delay until the next re-offer after ``attempts_done`` failures."""
        delay = self.backoff.delay(max(0, attempts_done - 1))
        registry = get_registry()
        if registry.enabled:
            registry.histogram(
                "recovery_backoff_delay",
                "scheduled re-offer backoff delays (simulation-time units)",
                buckets=_BACKOFF_BUCKETS,
            ).observe(float(delay))
        return delay
