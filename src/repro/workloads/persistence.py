"""Persisting event streams: record once, replay anywhere.

The substitution policy (DESIGN.md) replaces the production traces the
paper's setting implies with seeded synthetic generators.  This module
closes the loop: any event stream — generated, hand-written, or captured
from a real system — serialises to JSON Lines and replays bit-identically,
so experiments can be shared as artifacts rather than as (seed, code
version) pairs.

One JSON object per line, tagged by event kind; times and quantities use
the exact wire scalars of :mod:`repro.serialization`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable, Iterator, List, Union

from repro.serialization import (
    SerializationError,
    requirement_from_wire,
    requirement_to_wire,
    resource_set_from_wire,
    resource_set_to_wire,
    time_from_wire,
    time_to_wire,
)
from repro.resources.located_type import Node
from repro.system.events import (
    ComputationArrivalEvent,
    ComputationLeaveEvent,
    Event,
    NodeCrashEvent,
    RateDegradationEvent,
    ResourceJoinEvent,
    ResourceRevocationEvent,
    rate_degradation,
)

PathLike = Union[str, Path]


def event_to_wire(event: Event) -> dict:
    """One event as a JSON-safe dict."""
    if isinstance(event, ResourceJoinEvent):
        return {
            "event": "resource_join",
            "time": time_to_wire(event.time),
            "resources": resource_set_to_wire(event.resources),
        }
    if isinstance(event, ResourceRevocationEvent):
        return {
            "event": "resource_revocation",
            "time": time_to_wire(event.time),
            "resources": resource_set_to_wire(event.resources),
        }
    if isinstance(event, ComputationArrivalEvent):
        return {
            "event": "computation_arrival",
            "time": time_to_wire(event.time),
            "label": event.label,
            "requirement": requirement_to_wire(event.requirement),
        }
    if isinstance(event, ComputationLeaveEvent):
        return {
            "event": "computation_leave",
            "time": time_to_wire(event.time),
            "label": event.label,
        }
    if isinstance(event, NodeCrashEvent):
        return {
            "event": "node_crash",
            "time": time_to_wire(event.time),
            "location": event.location.name,
        }
    if isinstance(event, RateDegradationEvent):
        return {
            "event": "rate_degradation",
            "time": time_to_wire(event.time),
            "location": event.location.name,
            "factor": time_to_wire(event.factor),
        }
    raise SerializationError(f"unsupported event {event!r}")


def event_from_wire(data: dict) -> Event:
    kind = data.get("event")
    time = time_from_wire(data["time"])
    if kind == "resource_join":
        return ResourceJoinEvent(
            time=time, resources=resource_set_from_wire(data["resources"])
        )
    if kind == "resource_revocation":
        return ResourceRevocationEvent(
            time=time, resources=resource_set_from_wire(data["resources"])
        )
    if kind == "computation_arrival":
        return ComputationArrivalEvent(
            time=time,
            requirement=requirement_from_wire(data["requirement"]),
            label=data.get("label", ""),
        )
    if kind == "computation_leave":
        return ComputationLeaveEvent(time=time, label=data.get("label", ""))
    if kind == "node_crash":
        return NodeCrashEvent(time=time, location=Node(data["location"]))
    if kind == "rate_degradation":
        return rate_degradation(
            time, data["location"], time_from_wire(data["factor"])
        )
    raise SerializationError(f"unknown event kind {kind!r}")


def save_events(events: Iterable[Event], destination: PathLike | IO[str]) -> int:
    """Write events as JSON Lines; returns the count written."""
    count = 0

    def write(handle: IO[str]) -> int:
        written = 0
        for event in events:
            handle.write(json.dumps(event_to_wire(event)))
            handle.write("\n")
            written += 1
        return written

    if hasattr(destination, "write"):
        return write(destination)  # type: ignore[arg-type]
    with open(destination, "w") as handle:  # type: ignore[arg-type]
        count = write(handle)
    return count


def load_events(source: PathLike | IO[str]) -> List[Event]:
    """Read a JSON Lines event stream, preserving order."""

    def read(handle: IO[str]) -> List[Event]:
        out: List[Event] = []
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SerializationError(
                    f"line {line_number}: invalid JSON"
                ) from exc
            out.append(event_from_wire(data))
        return out

    if hasattr(source, "read"):
        return read(source)  # type: ignore[arg-type]
    with open(source) as handle:  # type: ignore[arg-type]
        return read(handle)


def iter_events(source: PathLike) -> Iterator[Event]:
    """Streaming variant of :func:`load_events` for very long traces."""
    with open(source) as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield event_from_wire(json.loads(line))
