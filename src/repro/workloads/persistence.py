"""Persisting event streams: record once, replay anywhere.

The substitution policy (DESIGN.md) replaces the production traces the
paper's setting implies with seeded synthetic generators.  This module
closes the loop: any event stream — generated, hand-written, or captured
from a real system — serialises to JSON Lines and replays bit-identically,
so experiments can be shared as artifacts rather than as (seed, code
version) pairs.

One JSON object per line, tagged by event kind; times and quantities use
the exact wire scalars of :mod:`repro.serialization`.  Records carry a
``format_version`` so future readers can reject traces they do not
understand, and path writes are atomic (temp file + fsync + rename, via
:func:`repro.system.checkpoint.atomic_writer`) so a crash mid-save can
never leave a torn, half-valid trace that replays as a shorter one.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable, Iterator, List, Mapping, Union

from repro.serialization import (
    SerializationError,
    requirement_from_wire,
    requirement_to_wire,
    resource_set_from_wire,
    resource_set_to_wire,
    time_from_wire,
    time_to_wire,
)
from repro.resources.located_type import Node
from repro.system.checkpoint import atomic_writer
from repro.system.events import (
    ComputationArrivalEvent,
    ComputationLeaveEvent,
    Event,
    NodeCrashEvent,
    PartitionHealEvent,
    PartitionStartEvent,
    RateDegradationEvent,
    ResourceJoinEvent,
    ResourceRevocationEvent,
    partition_heal,
    partition_start,
    rate_degradation,
)

PathLike = Union[str, Path]

#: Version stamped on every wire record; bump on incompatible changes.
EVENT_FORMAT_VERSION = 1

#: Keys each event kind must carry (beyond the ``event`` tag itself).
_REQUIRED_KEYS = {
    "resource_join": ("time", "resources"),
    "resource_revocation": ("time", "resources"),
    "computation_arrival": ("time", "requirement"),
    "computation_leave": ("time", "label"),
    "node_crash": ("time", "location"),
    "rate_degradation": ("time", "location", "factor"),
    "partition_start": ("time", "name", "links"),
    "partition_heal": ("time", "name", "links"),
}


def event_to_wire(event: Event) -> dict:
    """One event as a JSON-safe dict."""
    if isinstance(event, ResourceJoinEvent):
        data = {
            "event": "resource_join",
            "time": time_to_wire(event.time),
            "resources": resource_set_to_wire(event.resources),
        }
    elif isinstance(event, ResourceRevocationEvent):
        data = {
            "event": "resource_revocation",
            "time": time_to_wire(event.time),
            "resources": resource_set_to_wire(event.resources),
        }
    elif isinstance(event, ComputationArrivalEvent):
        data = {
            "event": "computation_arrival",
            "time": time_to_wire(event.time),
            "label": event.label,
            "requirement": requirement_to_wire(event.requirement),
        }
    elif isinstance(event, ComputationLeaveEvent):
        data = {
            "event": "computation_leave",
            "time": time_to_wire(event.time),
            "label": event.label,
        }
    elif isinstance(event, NodeCrashEvent):
        data = {
            "event": "node_crash",
            "time": time_to_wire(event.time),
            "location": event.location.name,
        }
    elif isinstance(event, RateDegradationEvent):
        data = {
            "event": "rate_degradation",
            "time": time_to_wire(event.time),
            "location": event.location.name,
            "factor": time_to_wire(event.factor),
        }
    elif isinstance(event, (PartitionStartEvent, PartitionHealEvent)):
        data = {
            "event": (
                "partition_start"
                if isinstance(event, PartitionStartEvent)
                else "partition_heal"
            ),
            "time": time_to_wire(event.time),
            "name": event.name,
            "links": [list(pair) for pair in event.links],
        }
    else:
        raise SerializationError(f"unsupported event {event!r}")
    data["format_version"] = EVENT_FORMAT_VERSION
    return data


def event_from_wire(data: dict) -> Event:
    if not isinstance(data, Mapping):
        raise SerializationError(f"expected an event object, got {data!r}")
    kind = data.get("event")
    if kind not in _REQUIRED_KEYS:
        raise SerializationError(f"unknown event kind {kind!r}")
    version = data.get("format_version", 1)  # unstamped = legacy v1
    if not isinstance(version, int) or version < 1:
        raise SerializationError(
            f"{kind}: bad format_version {version!r}"
        )
    if version > EVENT_FORMAT_VERSION:
        raise SerializationError(
            f"{kind}: format_version {version} is newer than supported "
            f"{EVENT_FORMAT_VERSION}; refusing to guess at its meaning"
        )
    missing = [key for key in _REQUIRED_KEYS[kind] if key not in data]
    if missing:
        raise SerializationError(
            f"{kind} record is missing required key(s): "
            + ", ".join(repr(key) for key in missing)
        )
    time = time_from_wire(data["time"])
    if kind == "resource_join":
        return ResourceJoinEvent(
            time=time, resources=resource_set_from_wire(data["resources"])
        )
    if kind == "resource_revocation":
        return ResourceRevocationEvent(
            time=time, resources=resource_set_from_wire(data["resources"])
        )
    if kind == "computation_arrival":
        return ComputationArrivalEvent(
            time=time,
            requirement=requirement_from_wire(data["requirement"]),
            label=data.get("label", ""),
        )
    if kind == "computation_leave":
        return ComputationLeaveEvent(time=time, label=data["label"])
    if kind == "node_crash":
        return NodeCrashEvent(time=time, location=Node(data["location"]))
    if kind in ("partition_start", "partition_heal"):
        links = data["links"]
        if not isinstance(links, list) or any(
            not isinstance(pair, list) or len(pair) != 2 for pair in links
        ):
            raise SerializationError(
                f"{kind}: links must be a list of [src, dst] pairs, "
                f"got {links!r}"
            )
        make = partition_start if kind == "partition_start" else partition_heal
        return make(time, data["name"], [tuple(pair) for pair in links])
    return rate_degradation(
        time, data["location"], time_from_wire(data["factor"])
    )


def save_events(events: Iterable[Event], destination: PathLike | IO[str]) -> int:
    """Write events as JSON Lines; returns the count written."""
    count = 0

    def write(handle: IO[str]) -> int:
        written = 0
        for event in events:
            handle.write(json.dumps(event_to_wire(event)))
            handle.write("\n")
            written += 1
        return written

    if hasattr(destination, "write"):
        return write(destination)  # type: ignore[arg-type]
    with atomic_writer(Path(destination)) as handle:  # type: ignore[arg-type]
        count = write(handle)
    return count


def _parse_line(line: str, line_number: int) -> Event:
    """Decode one trace line, naming the line in any failure."""
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise SerializationError(
            f"line {line_number}: invalid JSON"
        ) from exc
    try:
        return event_from_wire(data)
    except SerializationError as exc:
        raise SerializationError(f"line {line_number}: {exc}") from exc


def load_events(source: PathLike | IO[str]) -> List[Event]:
    """Read a JSON Lines event stream, preserving order."""

    def read(handle: IO[str]) -> List[Event]:
        out: List[Event] = []
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if line:
                out.append(_parse_line(line, line_number))
        return out

    if hasattr(source, "read"):
        return read(source)  # type: ignore[arg-type]
    with open(source) as handle:  # type: ignore[arg-type]
        return read(handle)


def iter_events(source: PathLike) -> Iterator[Event]:
    """Streaming variant of :func:`load_events` for very long traces."""
    with open(source) as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if line:
                yield _parse_line(line, line_number)
