"""Seeded synthetic workload generation.

The paper has no workload section; these generators produce the arrival
processes and requirement shapes its motivation describes — deadline-
constrained multi-phase computations arriving over time in an open system
— with explicit seeds so every experiment is reproducible.

Two families:

* :func:`random_requirement` / :func:`poisson_arrivals` — general
  workloads for the policy-comparison benchmarks (integer quantities,
  controlled laxity).
* :func:`oracle_instance` — tiny *divisible* instances (every demand a
  multiple of the supplying rate, so phase finishes land on the integer
  grid) on which the brute-force oracle is exact; used by property tests
  to cross-validate the greedy decision procedure.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import List, Sequence

from repro.computation.demands import Demands
from repro.computation.requirements import ComplexRequirement, ConcurrentRequirement
from repro.errors import WorkloadError
from repro.intervals.interval import Interval, Time
from repro.resources.located_type import LocatedType
from repro.resources.resource_set import ResourceSet
from repro.resources.term import ResourceTerm
from repro.system.events import ComputationArrivalEvent, arrival

_label_counter = itertools.count(1)


def random_requirement(
    rng: random.Random,
    ltypes: Sequence[LocatedType],
    *,
    start: Time,
    max_phases: int = 4,
    max_quantity: int = 20,
    min_duration: int = 4,
    max_duration: int = 20,
    multi_type_phase_prob: float = 0.25,
    label: str | None = None,
) -> ComplexRequirement:
    """One sequential computation with random phases and window."""
    if not ltypes:
        raise WorkloadError("need at least one located type")
    phase_count = rng.randint(1, max_phases)
    phases: List[Demands] = []
    for _ in range(phase_count):
        if len(ltypes) > 1 and rng.random() < multi_type_phase_prob:
            chosen = rng.sample(list(ltypes), 2)
        else:
            chosen = [rng.choice(list(ltypes))]
        phases.append(
            Demands({lt: rng.randint(1, max_quantity) for lt in chosen})
        )
    duration = rng.randint(min_duration, max_duration)
    window = Interval(start, start + duration)
    return ComplexRequirement(
        phases, window, label=label or f"job{next(_label_counter)}"
    )


def poisson_arrivals(
    rng: random.Random,
    *,
    rate: float,
    horizon: int,
    start: int = 0,
) -> List[int]:
    """Integer arrival instants of a Poisson process of intensity ``rate``
    per time unit over ``[start, horizon)``."""
    if rate <= 0:
        raise WorkloadError("arrival rate must be positive")
    times: List[int] = []
    t = float(start)
    while True:
        t += rng.expovariate(rate)
        if t >= horizon:
            return times
        times.append(int(t))


@dataclass
class Workload:
    """A reproducible event stream plus the resources on offer."""

    resources: ResourceSet
    arrivals: List[ComputationArrivalEvent] = field(default_factory=list)
    horizon: int = 100

    @property
    def events(self) -> tuple[ComputationArrivalEvent, ...]:
        return tuple(self.arrivals)


def uniform_workload(
    seed: int,
    ltypes: Sequence[LocatedType],
    *,
    horizon: int = 100,
    arrival_rate: float = 0.3,
    capacity: int = 10,
    max_phases: int = 4,
    max_quantity: int = 20,
) -> Workload:
    """Stable resources, Poisson arrivals of random multi-phase jobs."""
    rng = random.Random(seed)
    resources = ResourceSet(
        ResourceTerm(capacity, lt, Interval(0, horizon)) for lt in ltypes
    )
    events = [
        arrival(
            t,
            random_requirement(
                rng,
                ltypes,
                start=t,
                max_phases=max_phases,
                max_quantity=max_quantity,
                max_duration=min(24, horizon - t) if horizon - t >= 4 else 4,
            ),
        )
        for t in poisson_arrivals(rng, rate=arrival_rate, horizon=horizon - 4)
    ]
    return Workload(resources, events, horizon)


# ----------------------------------------------------------------------
# Oracle-friendly instances
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class OracleInstance:
    """A tiny divisible instance plus the availability it runs against."""

    available: ResourceSet
    requirement: ConcurrentRequirement


def oracle_instance(
    rng: random.Random,
    ltypes: Sequence[LocatedType],
    *,
    max_actors: int = 2,
    max_phases: int = 3,
    horizon: int = 8,
    max_rate: int = 3,
) -> OracleInstance:
    """Random divisible instance: every demand is ``rate x k`` for integer
    ``k``, rates are constant over ``(0, horizon)``, windows are integer.

    On such instances the quantised brute-force oracle decides exactly the
    same feasibility question as the exact procedures.
    """
    rates = {lt: rng.randint(1, max_rate) for lt in ltypes}
    available = ResourceSet(
        ResourceTerm(rate, lt, Interval(0, horizon)) for lt, rate in rates.items()
    )
    components = []
    for index in range(rng.randint(1, max_actors)):
        phase_count = rng.randint(1, max_phases)
        phases = []
        for _ in range(phase_count):
            lt = rng.choice(list(ltypes))
            steps = rng.randint(1, max(1, horizon // (2 * phase_count)))
            phases.append(Demands({lt: rates[lt] * steps}))
        s = rng.randint(0, horizon // 2)
        d = rng.randint(s + 2, horizon)
        components.append(
            ComplexRequirement(phases, Interval(s, d), label=f"o{index}")
        )
    window = Interval(
        min(c.start for c in components), max(c.deadline for c in components)
    )
    return OracleInstance(available, ConcurrentRequirement(tuple(components), window))
