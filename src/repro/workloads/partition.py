"""Partitioned-mesh workloads: raw material for the unreliable-network
fault experiments (:mod:`repro.faults.netfaults`).

The shape: a door node fronting a small mesh of child enclaves, a steady
seeded arrival stream whose requests target specific nodes, and mid-run
capacity joins destined for the children — each join must cross the
network as a wire message and arrives as a *lease-backed* grant, so the
partition experiments have something to sever, delay, lose, and expire.

Generation follows the same discipline as :mod:`repro.workloads.overload`:
seeded ``random.Random`` for the request mix, exact scalars everywhere,
no dependence on iteration order of anything unordered — the replay
identity assertions in ``chaos_partition_matrix`` depend on it.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.computation.demands import Demands
from repro.computation.requirements import (
    ComplexRequirement,
    ConcurrentRequirement,
)
from repro.intervals.interval import Interval, Time
from repro.resources.located_type import cpu
from repro.resources.resource_set import ResourceSet
from repro.resources.term import ResourceTerm


def mesh_names(children: int) -> Tuple[str, ...]:
    """Node names of a mesh: the door ``n0`` plus ``children`` children."""
    if children < 1:
        raise ValueError(f"mesh needs at least one child, got {children!r}")
    return tuple(f"n{i}" for i in range(children + 1))


def partitioned_mesh_stream(
    seed: int = 0,
    *,
    children: int = 2,
    node_rate: Time = 6,
    horizon: Time = 48,
    lease_joins_at: Sequence[Time] = (6, 10),
    lease_rate: Time = 2,
    deadline_slack: Time = 12,
    max_quantity: int = 3,
) -> Tuple[
    ResourceSet,
    List[Tuple[Time, str, ConcurrentRequirement]],
    List[Tuple[Time, ResourceSet]],
]:
    """The partitioned-mesh raw material.

    Returns ``(resources, stream, joins)``:

    * ``resources`` — each node's base allotment, owned outright from
      t=0 (carved into per-child enclaves by the mesh policy);
    * ``stream`` — ``(arrival_time, label, requirement)`` triples, one
      request per tick, each demanding CPU at one seeded-random node, so
      a fixed fraction of decisions needs a cross-enclave round trip;
    * ``joins`` — ``(time, resources)`` pairs targeting child nodes
      round-robin; these are the lease-backed grants that travel over
      the wire and expire when renewals cannot get through.
    """
    rng = random.Random(seed)
    names = mesh_names(children)
    resources = ResourceSet(
        [
            ResourceTerm(node_rate, cpu(name), Interval(0, horizon))
            for name in names
        ]
    )
    stream: List[Tuple[Time, str, ConcurrentRequirement]] = []
    index = 0
    t = 1
    while t < horizon - 2:
        node = names[rng.randrange(len(names))]
        amount = rng.randint(1, max_quantity)
        label = f"pm{index}"
        window = Interval(t, t + deadline_slack)
        component = ComplexRequirement(
            [Demands({cpu(node): amount})], window, label=label
        )
        stream.append(
            (t, label, ConcurrentRequirement((component,), window))
        )
        index += 1
        t += 1
    joins: List[Tuple[Time, ResourceSet]] = []
    for i, at in enumerate(lease_joins_at):
        child = names[1 + i % children]
        joins.append(
            (
                at,
                ResourceSet(
                    [ResourceTerm(lease_rate, cpu(child), Interval(at, horizon))]
                ),
            )
        )
    return resources, stream, joins
