"""Resource churn: peers joining and leaving an open system.

The paper's motivating environment is one where "resources can
dynamically join or leave the system at any time".  ROTA models this with
the resource-acquisition rule plus term intervals that *pre-declare* the
leave time: "if a resource is going to leave the system in the future,
the time of leaving must be explicitly specified at the time of joining".

:func:`churn_events` renders that faithfully: each simulated peer session
is one :class:`ResourceJoinEvent` whose terms span exactly the session's
(join, leave) interval.
"""

from __future__ import annotations

import random
from typing import List

from repro.errors import WorkloadError
from repro.intervals.interval import Interval
from repro.resources.resource_set import ResourceSet
from repro.system.events import ResourceJoinEvent, resource_join
from repro.system.node import Topology


def churn_events(
    rng: random.Random,
    topology: Topology,
    *,
    horizon: int,
    session_rate: float = 0.2,
    min_session: int = 5,
    max_session: int = 30,
) -> List[ResourceJoinEvent]:
    """Peer sessions over ``[0, horizon)``.

    Sessions arrive Poisson(``session_rate``) per time unit; each picks a
    random node of the topology and contributes that node's resources
    (CPU + outgoing links) for a uniform session length, pre-declared in
    the term intervals.
    """
    if horizon <= 0:
        raise WorkloadError(f"horizon must be positive, got {horizon!r}")
    if session_rate <= 0:
        raise WorkloadError(
            f"session_rate must be positive, got {session_rate!r}"
        )
    if min_session < 1 or max_session < min_session:
        raise WorkloadError("invalid session length bounds")
    node_names = [node.name for node in topology.nodes]
    if not node_names:
        raise WorkloadError("topology has no nodes to churn")
    events: List[ResourceJoinEvent] = []
    t = 0.0
    while True:
        t += rng.expovariate(session_rate)
        join_at = int(t)
        if join_at >= horizon:
            return events
        length = rng.randint(min_session, max_session)
        leave_at = min(horizon, join_at + length)
        if leave_at <= join_at:
            continue
        name = rng.choice(node_names)
        resources = topology.node_resources(name, Interval(join_at, leave_at))
        events.append(resource_join(join_at, resources))


def broken_promises(
    rng: random.Random,
    sessions: List[ResourceJoinEvent],
    *,
    violation_rate: float,
    min_early: int = 2,
    max_early: int = 10,
) -> List["ResourceRevocationEvent"]:
    """Revocation events violating a fraction of the sessions' declared
    leave times.

    For each selected session, its resources vanish ``early`` time units
    before the declared end: a :class:`ResourceRevocationEvent` covering
    the session's final stretch.  ``violation_rate`` in [0, 1] is the
    per-session violation probability.
    """
    from repro.system.events import ResourceRevocationEvent

    if not 0 <= violation_rate <= 1:
        raise WorkloadError("violation_rate must be in [0, 1]")
    out: List[ResourceRevocationEvent] = []
    for session in sessions:
        if rng.random() >= violation_rate:
            continue
        terms = session.resources.terms()
        if not terms:
            continue
        declared_end = max(t.window.end for t in terms)
        early = rng.randint(min_early, max_early)
        cutoff = declared_end - early
        if cutoff <= session.time:
            continue
        vanished = session.resources.restrict(Interval(cutoff, declared_end))
        if vanished.is_empty:
            continue
        out.append(ResourceRevocationEvent(time=cutoff, resources=vanished))
    return out


def stable_base(
    topology: Topology, horizon: int, *, fraction: float = 0.5
) -> ResourceSet:
    """A stable backbone: the topology's capacity scaled by ``fraction``
    over the whole horizon (the part of the system that never churns)."""
    if not 0 < fraction <= 1:
        raise WorkloadError("fraction must be in (0, 1]")
    full = topology.resources(Interval(0, horizon))
    from fractions import Fraction

    from repro.resources.resource_set import ResourceSet as RS

    # Scale with an exact rational: float rates would leak rounding dust
    # into every downstream witness schedule and progress account.
    exact = Fraction(fraction).limit_denominator(10_000)
    return RS.from_profiles(
        {lt: profile.scale(exact) for lt, profile in full.profiles().items()}
    )
