"""Named end-to-end scenarios used by examples and benchmarks.

Each scenario is a fully seeded (resources, events, horizon) bundle
representing one of the environments the paper's introduction motivates:

* :func:`cloud_scenario` — a stable provider cluster with bursty
  deadline-constrained arrivals (grid/cloud computing framing).
* :func:`volunteer_scenario` — a small stable backbone plus heavy peer
  churn (peer-owned resources joining and leaving).
* :func:`pipeline_scenario` — multi-phase jobs whose resource *order*
  matters (CPU -> network -> CPU); this is the workload on which
  aggregate-quantity admission is unsound, the failure Section III's
  "right resources at the right time" remark predicts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from repro.computation.demands import Demands
from repro.computation.requirements import ComplexRequirement
from repro.intervals.interval import Interval
from repro.resources.located_type import cpu, network
from repro.resources.resource_set import ResourceSet
from repro.system.events import (
    ComputationArrivalEvent,
    Event,
    ResourceJoinEvent,
    arrival,
)
from repro.system.node import Topology
from repro.workloads.churn import churn_events, stable_base
from repro.workloads.generator import poisson_arrivals, random_requirement


@dataclass
class Scenario:
    """Everything a simulator run needs, reproducibly."""

    name: str
    initial_resources: ResourceSet
    events: List[Event] = field(default_factory=list)
    horizon: int = 100


def cloud_scenario(
    seed: int = 7,
    *,
    nodes: int = 4,
    horizon: int = 120,
    arrival_rate: float = 0.4,
) -> Scenario:
    """Stable full-mesh cluster; Poisson arrivals of mixed jobs."""
    rng = random.Random(seed)
    topology = Topology.full_mesh(nodes, cpu_rate=8, bandwidth=6)
    ltypes = [lt for lt, _ in topology.located_types()]
    events: List[Event] = [
        arrival(t, random_requirement(rng, ltypes, start=t, max_quantity=24))
        for t in poisson_arrivals(rng, rate=arrival_rate, horizon=horizon - 8)
    ]
    return Scenario(
        "cloud", topology.resources(Interval(0, horizon)), events, horizon
    )


def volunteer_scenario(
    seed: int = 11,
    *,
    nodes: int = 6,
    horizon: int = 150,
    session_rate: float = 0.25,
    arrival_rate: float = 0.3,
) -> Scenario:
    """Thin stable backbone + churning volunteer peers."""
    rng = random.Random(seed)
    topology = Topology.full_mesh(nodes, cpu_rate=6, bandwidth=4)
    base = stable_base(topology, horizon, fraction=0.25)
    events: List[Event] = list(
        churn_events(
            rng,
            topology,
            horizon=horizon,
            session_rate=session_rate,
            min_session=10,
            max_session=40,
        )
    )
    ltypes = [lt for lt, _ in topology.located_types()]
    events.extend(
        arrival(t, random_requirement(rng, ltypes, start=t, max_quantity=16))
        for t in poisson_arrivals(rng, rate=arrival_rate, horizon=horizon - 8)
    )
    return Scenario("volunteer", base, events, horizon)


def pipeline_scenario(
    seed: int = 13,
    *,
    horizon: int = 100,
    arrival_rate: float = 0.35,
    tightness: float = 1.3,
) -> Scenario:
    """CPU -> network -> CPU pipelines where ordering is everything.

    Resources are shaped adversarially for order-blind checks: the two
    nodes' CPU is plentiful *early*, the link capacity *late*.  A job
    needs CPU(src) first, then the link, then CPU(dst) — so aggregate
    totals look fine even when the job's third phase has no CPU left
    inside its feasible tail.  ``tightness`` scales windows: below ~1.0
    most jobs are infeasible, far above it everything fits.
    """
    rng = random.Random(seed)
    src_cpu, dst_cpu = cpu("src"), cpu("dst")
    link = network("src", "dst")
    half = horizon // 2
    resources = ResourceSet.of(
        # CPU available all along, but thinner late.
        *(
            [
                _term(8, src_cpu, 0, half),
                _term(2, src_cpu, half, horizon),
                _term(8, dst_cpu, 0, half),
                _term(2, dst_cpu, half, horizon),
                # Link capacity only in the late half.
                _term(6, link, half, horizon),
            ]
        )
    )
    events: List[Event] = []
    for index, t in enumerate(
        poisson_arrivals(rng, rate=arrival_rate, horizon=horizon - 10)
    ):
        work = rng.randint(4, 12)
        base_duration = work * 2
        duration = max(6, int(base_duration * tightness))
        window = Interval(t, min(horizon, t + duration))
        requirement = ComplexRequirement(
            [
                Demands({src_cpu: work}),
                Demands({link: work}),
                Demands({dst_cpu: work}),
            ],
            window,
            label=f"pipe{index}",
        )
        events.append(arrival(t, requirement))
    return Scenario("pipeline", resources, events, horizon)


def _term(rate, ltype, start, end):
    from repro.resources.term import ResourceTerm

    return ResourceTerm(rate, ltype, Interval(start, end))
