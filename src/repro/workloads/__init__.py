"""Seeded synthetic workloads, churn processes, and named scenarios."""

from repro.workloads.churn import broken_promises, churn_events, stable_base
from repro.workloads.generator import (
    OracleInstance,
    Workload,
    oracle_instance,
    poisson_arrivals,
    random_requirement,
    uniform_workload,
)
from repro.workloads.overload import (
    flash_crowd_requests,
    flash_crowd_requirements,
    flash_crowd_scenario,
    stalled_enclave_stream,
)
from repro.workloads.partition import mesh_names, partitioned_mesh_stream
from repro.workloads.persistence import (
    event_from_wire,
    event_to_wire,
    iter_events,
    load_events,
    save_events,
)
from repro.workloads.scenarios import (
    Scenario,
    cloud_scenario,
    pipeline_scenario,
    volunteer_scenario,
)

__all__ = [
    "broken_promises",
    "churn_events",
    "stable_base",
    "OracleInstance",
    "Workload",
    "oracle_instance",
    "poisson_arrivals",
    "random_requirement",
    "uniform_workload",
    "event_from_wire",
    "event_to_wire",
    "iter_events",
    "load_events",
    "save_events",
    "Scenario",
    "cloud_scenario",
    "flash_crowd_requests",
    "flash_crowd_requirements",
    "flash_crowd_scenario",
    "mesh_names",
    "partitioned_mesh_stream",
    "pipeline_scenario",
    "stalled_enclave_stream",
    "volunteer_scenario",
]
