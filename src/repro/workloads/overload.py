"""Overload workloads: flash crowds for the admission front door.

A *flash crowd* is the overload shape the front door exists for: a
steady, comfortably-admittable arrival stream that suddenly multiplies
(10x in the acceptance experiment) for a bounded burst, then subsides.
Without protection the admission queue grows without bound, every
arrival's slack drains while it waits, and goodput collapses; with the
front door, shedding keeps admitted promises intact and goodput
plateaus at the controller's capacity.

Generation is seeded and otherwise deterministic: burst arrivals are
evenly spaced on an exact rational grid (no float accumulation), so the
same ``(seed, multiplier)`` always produces the same stream — the
replay-identity assertions in :mod:`repro.faults.overload` depend on it.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from repro.computation.demands import Demands
from repro.computation.requirements import (
    ComplexRequirement,
    ConcurrentRequirement,
)
from repro.intervals.interval import Interval, Time
from repro.resources.located_type import cpu
from repro.resources.resource_set import ResourceSet
from repro.resources.term import ResourceTerm
from repro.service.frontdoor import ServiceRequest
from repro.system.events import Event, arrival
from repro.workloads.scenarios import Scenario


def _flash_crowd_times(
    *,
    multiplier: int,
    burst_at: Time,
    burst_duration: Time,
    horizon: Time,
) -> List[Time]:
    """Steady one-per-unit arrivals, multiplied inside the burst window.

    Burst arrivals sit on the exact grid ``t + j/multiplier`` so the
    stream is identical across runs and platforms.
    """
    times: List[Time] = []
    t = 1
    while t < horizon:
        in_burst = burst_at <= t < burst_at + burst_duration
        count = multiplier if in_burst else 1
        for j in range(count):
            times.append(t if j == 0 else t + Fraction(j, count))
        t += 1
    return times


def flash_crowd_requirements(
    seed: int = 0,
    *,
    multiplier: int = 10,
    nodes: int = 3,
    node_rate: Time = 6,
    burst_at: Time = 20,
    burst_duration: Time = 10,
    horizon: Time = 60,
    deadline_slack: Time = 8,
    max_quantity: int = 6,
) -> Tuple[ResourceSet, List[Tuple[Time, str, ConcurrentRequirement]]]:
    """The raw flash-crowd stream: resources plus timed requirements.

    Returns ``(resources, [(arrival_time, label, requirement), ...])``;
    the service driver and the simulator scenario both build on it.
    """
    if multiplier < 1:
        raise ValueError(f"multiplier must be >= 1, got {multiplier!r}")
    rng = random.Random(seed)
    names = [f"n{i}" for i in range(nodes)]
    resources = ResourceSet(
        [
            ResourceTerm(node_rate, cpu(name), Interval(0, horizon))
            for name in names
        ]
    )
    stream: List[Tuple[Time, str, ConcurrentRequirement]] = []
    for index, at in enumerate(
        _flash_crowd_times(
            multiplier=multiplier,
            burst_at=burst_at,
            burst_duration=burst_duration,
            horizon=horizon,
        )
    ):
        node = names[rng.randrange(nodes)]
        amount = rng.randint(1, max_quantity)
        label = f"fc{index}"
        window = Interval(at, at + deadline_slack)
        component = ComplexRequirement(
            [Demands({cpu(node): amount})], window, label=label
        )
        stream.append(
            (at, label, ConcurrentRequirement((component,), window))
        )
    return resources, stream


def flash_crowd_requests(
    seed: int = 0, *, multiplier: int = 10, **kwargs
) -> Tuple[ResourceSet, List[ServiceRequest]]:
    """Flash crowd as :class:`ServiceRequest` s (the ``serve()`` path)."""
    resources, stream = flash_crowd_requirements(
        seed, multiplier=multiplier, **kwargs
    )
    return resources, [
        ServiceRequest(label, requirement, at)
        for at, label, requirement in stream
    ]


def flash_crowd_scenario(
    seed: int = 0,
    *,
    multiplier: int = 10,
    horizon: Time = 60,
    **kwargs,
) -> Scenario:
    """Flash crowd as a simulator :class:`Scenario` (the policy path)."""
    resources, stream = flash_crowd_requirements(
        seed, multiplier=multiplier, horizon=horizon, **kwargs
    )
    events: List[Event] = [
        arrival(at, requirement, label=label)
        for at, label, requirement in stream
    ]
    return Scenario(
        f"flash-crowd-x{multiplier}", resources, events, horizon
    )


def stalled_enclave_stream(
    seed: int = 0,
    *,
    nodes: int = 3,
    stalled_node: int = 0,
    stall_window: Tuple[Time, Time] = (5, 45),
    horizon: Time = 60,
    joins_at: Sequence[Time] = (25, 40),
    node_rate: Time = 6,
    deadline_slack: Time = 12,
) -> Tuple[
    ResourceSet,
    List[ServiceRequest],
    List[Tuple[Time, ResourceSet]],
    dict,
]:
    """A stalled-enclave fault plan's raw material.

    One node's checks stall inside ``stall_window`` (tripping its
    breaker); mid-run joins target the stalled node (so breaker-open
    join shedding is exercised) and a healthy one (so recovery is too).
    Returns ``(resources, requests, joins, stalls)``.
    """
    rng = random.Random(seed)
    names = [f"n{i}" for i in range(nodes)]
    sick = names[stalled_node % nodes]
    resources = ResourceSet(
        [
            ResourceTerm(node_rate, cpu(name), Interval(0, horizon))
            for name in names
        ]
    )
    requests: List[ServiceRequest] = []
    index = 0
    t = 1
    while t < horizon - 2:
        node = names[rng.randrange(nodes)]
        label = f"se{index}"
        window = Interval(t, t + deadline_slack)
        component = ComplexRequirement(
            [Demands({cpu(node): rng.randint(1, 4)})], window, label=label
        )
        requests.append(
            ServiceRequest(
                label, ConcurrentRequirement((component,), window), t
            )
        )
        index += 1
        t += 1
    healthy = names[(stalled_node + 1) % nodes]
    joins: List[Tuple[Time, ResourceSet]] = []
    for at, name in zip(joins_at, (sick, healthy)):
        joins.append(
            (
                at,
                ResourceSet(
                    [ResourceTerm(2, cpu(name), Interval(at, horizon))]
                ),
            )
        )
    return resources, requests, joins, {sick: [stall_window]}
