"""Virtual-time queue bookkeeping for the admission front door.

The front door never sleeps: queueing is modelled with a virtual service
clock (``busy_until``) advanced by deterministic per-check costs.  An
arrival at ``t`` that finds the clock at ``busy_until > t`` waits
``busy_until - t`` — in *simulated* time, the same units as requirement
windows, so the wait can be charged against the arrival's own deadline
by window clipping.  No wall clock anywhere; two runs with the same
inputs see the same waits.
"""

from __future__ import annotations

from collections import deque
from fractions import Fraction
from typing import Deque

from repro.intervals.interval import Time


class LatencyEwma:
    """Exact exponentially-weighted moving average of check costs.

    ``alpha`` and every observation are rationals, so the estimate — and
    every shedding decision derived from it — is exact and replayable.
    The initial value seeds the estimate with the configured nominal
    check cost; the first real observation pulls it toward reality.
    """

    __slots__ = ("_alpha", "_value", "_observations")

    def __init__(self, alpha: Fraction, initial: Time) -> None:
        self._alpha = Fraction(alpha)
        self._value: Fraction = Fraction(initial)
        self._observations = 0

    @property
    def value(self) -> Fraction:
        return self._value

    @property
    def observations(self) -> int:
        return self._observations

    def observe(self, cost: Time) -> Fraction:
        self._value = self._alpha * Fraction(cost) + (1 - self._alpha) * self._value
        self._observations += 1
        return self._value


class EnclaveLane:
    """One enclave's bounded share of the front door's queue.

    The service clock is global (there is one controller); the lane
    tracks only *this* enclave's outstanding check completions, so a
    flooding enclave exhausts its own bound and gets shed while quieter
    enclaves keep their slots — queue-level isolation, complementing the
    breaker's failure isolation.
    """

    __slots__ = ("enclave", "max_queue", "_completions")

    def __init__(self, enclave: str, max_queue: int) -> None:
        self.enclave = enclave
        self.max_queue = max_queue
        self._completions: Deque[Time] = deque()

    @property
    def depth(self) -> int:
        """Checks accepted but not yet completed (in virtual time)."""
        return len(self._completions)

    @property
    def full(self) -> bool:
        return len(self._completions) >= self.max_queue

    def push(self, completion: Time) -> None:
        self._completions.append(completion)

    def drain(self, now: Time) -> int:
        """Retire completions at or before ``now``; returns how many."""
        drained = 0
        while self._completions and self._completions[0] <= now:
            self._completions.popleft()
            drained += 1
        return drained
