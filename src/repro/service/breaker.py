"""Per-enclave circuit breakers for the admission front door.

A *stalled* enclave — checks against it taking an order of magnitude
longer than nominal — is the service-level analogue of the paper's
unannounced resource faults: left alone, one sick enclave's slow checks
eat the whole controller's capacity and every enclave's arrivals pay the
queueing delay.  The breaker walls it off: after ``failures``
consecutive slow checks the enclave goes *open* (arrivals shed
instantly, joins refused), re-probed on a capped seeded-jitter backoff
schedule (*half-open*), and closed again after ``probes`` consecutive
fast checks.

Determinism: the backoff jitter is the stateless seeded kind
(:class:`repro.backoff.Backoff`), keyed by enclave name — concurrent
breakers never share an RNG stream, so the open/half-open timeline of
one enclave is independent of how many others are tripping.
"""

from __future__ import annotations

from typing import Optional

from repro.backoff import Backoff
from repro.intervals.interval import Time


class BreakerState:
    """The classic three states, as string constants (picklable, and
    stable in decision logs)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """One enclave's breaker; transitions driven by deterministic check
    costs, never wall-clock timeouts."""

    __slots__ = (
        "enclave",
        "_failure_threshold",
        "_probe_target",
        "_backoff",
        "state",
        "_consecutive_failures",
        "_probe_successes",
        "_open_attempt",
        "_retry_at",
        "transitions",
    )

    def __init__(
        self,
        enclave: str,
        *,
        failures: int,
        probes: int,
        backoff: Backoff,
    ) -> None:
        self.enclave = enclave
        self._failure_threshold = failures
        self._probe_target = probes
        self._backoff = backoff
        self.state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._probe_successes = 0
        #: how many times this breaker has opened since last closing —
        #: the backoff attempt counter, so repeated re-trips back off
        #: further and further (capped).
        self._open_attempt = 0
        self._retry_at: Optional[Time] = None
        #: ``(time, from, to)`` transition log, for reports and tests.
        self.transitions: list[tuple[Time, str, str]] = []

    # ------------------------------------------------------------------
    @property
    def retry_at(self) -> Optional[Time]:
        """When an open breaker next allows a probe (None unless open)."""
        return self._retry_at

    def accepting(self, now: Time) -> bool:
        """Read-only: would a request (or a resource join) get through?

        Open breakers refuse everything until their backoff elapses;
        half-open breakers accept (that *is* the probe).  Unlike
        :meth:`allow`, this never transitions state — resource-join
        screening must not consume probe slots.
        """
        if self.state == BreakerState.OPEN:
            return self._retry_at is not None and now >= self._retry_at
        return True

    def allow(self, now: Time) -> bool:
        """Gate one request at ``now``; open -> half-open when the
        backoff has elapsed."""
        if self.state == BreakerState.OPEN:
            if self._retry_at is None or now < self._retry_at:
                return False
            self._transition(now, BreakerState.HALF_OPEN)
            self._probe_successes = 0
        return True

    # ------------------------------------------------------------------
    def record_success(self, now: Time) -> None:
        """A check against this enclave completed at nominal cost."""
        if self.state == BreakerState.HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self._probe_target:
                self._transition(now, BreakerState.CLOSED)
                self._open_attempt = 0
                self._retry_at = None
        self._consecutive_failures = 0

    def record_failure(self, now: Time) -> None:
        """A check against this enclave ran slow (stall signature)."""
        if self.state == BreakerState.HALF_OPEN:
            # A failed probe re-opens immediately, with a longer backoff.
            self._open(now)
            return
        self._consecutive_failures += 1
        if (
            self.state == BreakerState.CLOSED
            and self._consecutive_failures >= self._failure_threshold
        ):
            self._open(now)

    # ------------------------------------------------------------------
    def _open(self, now: Time) -> None:
        self._transition(now, BreakerState.OPEN)
        self._retry_at = now + self._backoff.delay(
            self._open_attempt, key=self.enclave
        )
        self._open_attempt += 1
        self._consecutive_failures = 0
        self._probe_successes = 0

    def _transition(self, now: Time, to: str) -> None:
        if to != self.state:
            self.transitions.append((now, self.state, to))
            self.state = to
