"""One-call front-door runs: a merged join/arrival stream, served.

:func:`serve` is the standalone entry point (the CLI's ``serve``
command and the overload benchmark sit on it): build a controller, put
the front door in front of it, feed it a time-ordered stream, resolve
every brownout deferral, and summarise.  The simulator-integrated path
lives in :class:`repro.service.policy.FrontDoorPolicy` instead.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence, Tuple

from repro.decision.admission import AdmissionController
from repro.intervals.interval import Time
from repro.resources.resource_set import ResourceSet
from repro.service.config import ServiceConfig
from repro.service.frontdoor import AdmissionFrontDoor, ServiceRequest
from repro.service.report import ServiceReport


def serve(
    requests: Iterable[ServiceRequest],
    *,
    resources: Optional[ResourceSet] = None,
    joins: Sequence[Tuple[Time, ResourceSet]] = (),
    config: Optional[ServiceConfig] = None,
    stalls: Optional[Mapping[str, Sequence[Tuple[Time, Time]]]] = None,
    horizon: Optional[Time] = None,
    align: Time | None = 1,
    verify_brownout: bool = True,
    network=None,
) -> ServiceReport:
    """Serve ``requests`` (plus later ``joins``) through the front door.

    ``resources`` seeds the controller before any arrival; each
    ``(time, resource_set)`` join lands mid-stream.  At equal times,
    joins precede arrivals (an arrival may use capacity that joined "at"
    its own instant — the open-system convention the simulator uses).
    ``verify_brownout`` cross-checks every brownout screen rejection
    against the read-only exact check (soundness self-test; cheap
    because brownout rejections are rare by design).
    """
    controller = AdmissionController(resources, align=align)
    door = AdmissionFrontDoor.for_controller(
        controller,
        config,
        stalls=stalls,
        verify_brownout=verify_brownout,
        network=network,
    )
    arrivals = list(requests)
    events: list[tuple[Time, int, int, object]] = []
    for seq, (at, joining) in enumerate(joins):
        events.append((at, 0, seq, joining))
    for seq, request in enumerate(arrivals):
        events.append((request.arrival, 1, seq, request))
    events.sort(key=lambda event: (event[0], event[1], event[2]))

    end: Time = horizon if horizon is not None else 0
    if horizon is None:
        for request in arrivals:
            deadline = request.requirement.deadline
            if deadline > end:
                end = deadline
    for at, kind, _, payload in events:
        if kind == 0:
            door.add_resources(payload, at)
        else:
            door.offer(payload)
        # Resolve deferrals as soon as pressure allows — reconciliation
        # is part of serving, not an afterthought.
        door.reconcile(at)
    door.finish(end)
    return ServiceReport.from_door(door, end)
