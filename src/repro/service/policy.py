"""Simulator adapter: the front door as an :class:`AdmissionPolicy`.

Wrapping any inner policy (ROTA by default) puts the service layer's
overload protection between the simulator's event stream and the exact
check, which makes overload an *injectable condition*: flash crowds and
stalled enclaves become fault plans, and the chaos harness can assert
the front door's guarantees the same way it asserts crash consistency.

Two integration points beyond the plain policy interface:

* :meth:`FrontDoorPolicy.admit_resources` — joins for an enclave whose
  breaker is open are refused at the door; the simulator records the
  walled-off capacity as ``"shed"`` losses, extending the conservation
  identity to ``offered = consumed + expired + lost + shed``.
* brownout deferrals surface as rejections that re-enter through
  :meth:`retry_candidates` once pressure drops — the simulator's retry
  loop *is* the reconciliation queue.

Everything here must stay picklable (checkpoints snapshot policies), so
the door's hooks are small callable classes, never closures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.baselines.base import AdmissionPolicy, PolicyDecision
from repro.baselines.rota_policy import RotaAdmission
from repro.computation.requirements import ConcurrentRequirement
from repro.intervals.interval import Time
from repro.observability import get_registry
from repro.resources.located_type import Link
from repro.resources.resource_set import ResourceSet
from repro.service.config import ServiceConfig
from repro.service.frontdoor import (
    ADMITTED,
    REJECTED,
    AdmissionFrontDoor,
    ServiceRequest,
)

#: the deferral marker FrontDoorPolicy turns into a retryable rejection
DEFER_REASON = "brownout: deferred to reconciliation"


class _InnerChecker:
    """Picklable ``checker(requirement, now)`` over an inner policy."""

    def __init__(self, inner: AdmissionPolicy) -> None:
        self._inner = inner

    def __call__(self, requirement: ConcurrentRequirement, now: Time):
        return self._inner.decide(requirement, now)


class _ControllerSlackView:
    """The expiring slack of an inner policy that exposes a controller."""

    def __init__(self, inner: AdmissionPolicy) -> None:
        self._inner = inner

    def __call__(self) -> ResourceSet:
        return self._inner.controller.expiring_slack


class _ControllerProber:
    """Read-only exact check (brownout soundness cross-validation)."""

    def __init__(self, inner: AdmissionPolicy) -> None:
        self._inner = inner

    def __call__(self, requirement: ConcurrentRequirement, now: Time):
        controller = self._inner.controller
        if now > controller.now:
            controller.advance_to(now)
        return controller.can_admit(requirement)

    def __bool__(self) -> bool:  # pragma: no cover - trivial
        return True


class _ObservedSlackView:
    """Fallback screen view for inner policies without a controller:
    everything ever observed.  Coarser than the true slack, but a
    supply shortfall against *all* observed capacity still proves one
    against any slack subset — the screen stays reject-sound."""

    def __init__(self) -> None:
        self._seen = ResourceSet.empty()

    def add(self, resources: ResourceSet) -> None:
        self._seen = self._seen | resources

    def __call__(self) -> ResourceSet:
        return self._seen


def _enclave_of(ltype) -> str:
    location = ltype.location
    if isinstance(location, Link):
        return location.source.name
    return location.name


class FrontDoorPolicy(AdmissionPolicy):
    """Any admission policy, behind the overload-protecting front door."""

    def __init__(
        self,
        inner: Optional[AdmissionPolicy] = None,
        config: Optional[ServiceConfig] = None,
        *,
        stalls=None,
        verify_brownout: bool = False,
        network=None,
    ) -> None:
        inner = RotaAdmission() if inner is None else inner
        self._inner = inner
        has_controller = hasattr(inner, "controller")
        self._observed = None if has_controller else _ObservedSlackView()
        self._door = AdmissionFrontDoor(
            _InnerChecker(inner),
            _ControllerSlackView(inner) if has_controller else self._observed,
            config,
            prober=_ControllerProber(inner) if has_controller else None,
            stalls=stalls,
            defer_low_criticality=False,
            verify_brownout=verify_brownout and has_controller,
            network=network,
        )
        self.name = f"{inner.name}+door"
        #: brownout-deferred arrivals awaiting reconciliation via retry
        self._pending: Dict[str, ConcurrentRequirement] = {}
        #: capacity refused at the door by open breakers, per enclave
        self.shed_join_events: List[Tuple[Time, str]] = []

    # ------------------------------------------------------------------
    @property
    def inner(self) -> AdmissionPolicy:
        return self._inner

    @property
    def door(self) -> AdmissionFrontDoor:
        return self._door

    # ------------------------------------------------------------------
    def observe_resources(self, resources: ResourceSet, now: Time) -> None:
        if self._observed is not None:
            self._observed.add(resources)
        self._inner.observe_resources(resources, now)
        self._door.reconcile(now)

    def admit_resources(self, resources: ResourceSet, now: Time) -> ResourceSet:
        """Wall off joins for breaker-open enclaves (the shed leg).

        A stalled enclave's own capacity is exactly what the breaker
        distrusts: admitting its joins would let the exact check promise
        deadlines against resources the service cannot currently vouch
        for.  Refused profiles are returned to the simulator as shed
        capacity, not silently dropped.
        """
        kept = {}
        shed = False
        registry = get_registry()
        for ltype, profile in resources.profiles().items():
            enclave = _enclave_of(ltype)
            if self._door.accepting(enclave, now):
                kept[ltype] = profile
                continue
            shed = True
            self.shed_join_events.append((now, enclave))
            if registry.enabled:
                registry.counter(
                    "door_shed_capacity_total",
                    "resource joins refused by open breakers",
                    labels=("enclave",),
                ).inc(enclave=enclave)
        if not shed:
            return resources
        return ResourceSet.from_profiles(kept)

    def decide(self, requirement: ConcurrentRequirement, now: Time) -> PolicyDecision:
        label = requirement.components[0].label.split("[")[0] or "arrival"
        outcome = self._door.offer(
            ServiceRequest(label, requirement, arrival=now)
        )
        if outcome.outcome == ADMITTED:
            self._pending.pop(label, None)
            return PolicyDecision(True, schedule=outcome.schedule)
        if (
            outcome.outcome == REJECTED
            and outcome.reason == DEFER_REASON
            and requirement.deadline > now
        ):
            self._pending[label] = requirement
        else:
            self._pending.pop(label, None)
        return PolicyDecision(False, reason=f"{outcome.outcome}: {outcome.reason}")

    def on_leave(self, label: str, now: Time) -> None:
        self._inner.on_leave(label, now)

    def observe_loss(self, lost: ResourceSet, now: Time) -> None:
        self._inner.observe_loss(lost, now)

    def forfeit(self, label: str, now: Time) -> None:
        self._inner.forfeit(label, now)

    def retry_candidates(
        self, now: Time
    ) -> list[Tuple[str, ConcurrentRequirement]]:
        """Inner retries, plus brownout deferrals once pressure drops."""
        candidates = list(self._inner.retry_candidates(now))
        expired = [
            label
            for label, requirement in self._pending.items()
            if requirement.deadline <= now
        ]
        for label in expired:
            del self._pending[label]
        if not self._door.brownout.active:
            candidates.extend(self._pending.items())
        return candidates
