"""Front-door configuration: every overload-protection knob in one place.

All durations are *simulated* time in the same units as requirement
windows (never wall-clock seconds): the front door models the admission
service's own capacity with a virtual clock, which is what makes every
shed and breaker decision replayable bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from numbers import Rational
from typing import Any, Mapping, Optional

from repro.backoff import Backoff
from repro.errors import RecoveryError, ServiceConfigError
from repro.intervals.interval import Time

#: Recognised load-shedding policies.
#:
#: * ``"deadline"`` — deadline-aware: estimate queueing delay from the
#:   live check-latency EWMA and shed arrivals whose remaining slack
#:   cannot survive it (on enqueue *and* again on dequeue, where the
#:   delay is no longer an estimate).
#: * ``"tail-drop"`` — the classic baseline: shed only when the
#:   enclave's queue is full, regardless of deadlines.
SHED_POLICIES = ("deadline", "tail-drop")


def _as_exact(name: str, value: Any) -> Time:
    """Coerce a config duration to exact arithmetic (int or Fraction).

    Floats are accepted at the boundary (JSON has no rationals) but are
    converted immediately so the virtual clock never accumulates binary
    rounding — the same discipline the resource algebra enforces.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float, Rational)):
        raise ServiceConfigError(
            f"{name} must be a number, got {type(value).__name__}"
        )
    if isinstance(value, int):
        return value
    exact = Fraction(value).limit_denominator(1_000_000)
    return int(exact) if exact.denominator == 1 else exact


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs for :class:`repro.service.AdmissionFrontDoor`.

    Defaults model a controller whose exact Theorem-4 check costs 1/4 of
    a time unit, degrading to a 1/50-unit Theorem-1 screen under
    brownout, with queues bounded at 64 per enclave.
    """

    #: Per-enclave queue bound; arrivals beyond it are shed (tail drop).
    max_queue: int = 64
    #: One of :data:`SHED_POLICIES`.
    shed_policy: str = "deadline"
    #: Simulated cost of one exact Theorem-4 admission check.
    check_cost: Time = Fraction(1, 4)
    #: Simulated cost of the conservative Theorem-1 screen.
    screen_cost: Time = Fraction(1, 50)
    #: Simulated cost of a check against a *stalled* enclave (the fault
    #: the circuit breaker exists to wall off).
    stall_cost: Time = 8
    #: EWMA smoothing factor for the live check-latency estimate.
    ewma_alpha: Fraction = Fraction(1, 4)
    #: Queue depth (across all lanes) at or above which brownout engages.
    brownout_enter: int = 48
    #: Depth at or below which brownout disengages; must be < enter
    #: (hysteresis, so the mode does not flap at the boundary).
    brownout_exit: int = 16
    #: Optional latency trigger: brownout also engages while the check
    #: EWMA is at or above this (``None`` disables the latency trigger).
    brownout_latency: Optional[Time] = None
    #: Consecutive slow/failed checks that open an enclave's breaker.
    breaker_failures: int = 3
    #: Successful half-open probes required to close it again.
    breaker_probes: int = 2
    #: A check costing at least this multiple of ``check_cost`` counts as
    #: a breaker failure (stall detection).
    slow_check_factor: int = 8
    #: An arrival is low-criticality (brownout-degradable) when its
    #: remaining window exceeds this multiple of the estimated
    #: wait-plus-check time — it can afford to be deferred.
    criticality_laxity: int = 4
    #: Per-attempt timeout of the door -> enclave verdict exchange when
    #: the door runs over an unreliable network (no effect otherwise).
    rpc_timeout: Time = 2
    #: Attempts before the door declares an enclave unreachable and
    #: sheds the arrival (network mode only).
    rpc_attempts: int = 3
    #: Open -> half-open retry schedule (seeded jitter, keyed per
    #: enclave, so concurrent breakers never share an RNG stream).
    backoff: Backoff = field(
        default_factory=lambda: Backoff(base=4, cap=64, jitter=0.25)
    )
    #: Seed folded into breaker backoff jitter and the decision-log
    #: fingerprint; fixing it fixes every decision byte-for-byte.
    seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.max_queue, int) or self.max_queue < 1:
            raise ServiceConfigError(
                f"max_queue must be a positive integer, got {self.max_queue!r}"
            )
        if self.shed_policy not in SHED_POLICIES:
            raise ServiceConfigError(
                f"unknown shed policy {self.shed_policy!r}; "
                f"expected one of {SHED_POLICIES}"
            )
        object.__setattr__(self, "check_cost", _as_exact("check_cost", self.check_cost))
        object.__setattr__(
            self, "screen_cost", _as_exact("screen_cost", self.screen_cost)
        )
        object.__setattr__(self, "stall_cost", _as_exact("stall_cost", self.stall_cost))
        if self.check_cost <= 0:
            raise ServiceConfigError(
                f"check_cost must be > 0, got {self.check_cost!r}"
            )
        if not 0 < self.screen_cost <= self.check_cost:
            raise ServiceConfigError(
                "screen_cost must be in (0, check_cost]: the screen is the "
                f"cheap path, got {self.screen_cost!r} vs {self.check_cost!r}"
            )
        if self.stall_cost < self.check_cost:
            raise ServiceConfigError(
                f"stall_cost must be >= check_cost, got {self.stall_cost!r}"
            )
        alpha = _as_exact("ewma_alpha", self.ewma_alpha)
        if not 0 < alpha <= 1:
            raise ServiceConfigError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha!r}"
            )
        object.__setattr__(self, "ewma_alpha", Fraction(alpha))
        for name in ("brownout_enter", "brownout_exit"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 0:
                raise ServiceConfigError(
                    f"{name} must be a non-negative integer, got {value!r}"
                )
        if not self.brownout_exit < self.brownout_enter:
            raise ServiceConfigError(
                "brownout thresholds must satisfy exit < enter (hysteresis), "
                f"got exit={self.brownout_exit!r} enter={self.brownout_enter!r}"
            )
        if self.brownout_latency is not None:
            latency = _as_exact("brownout_latency", self.brownout_latency)
            if latency <= 0:
                raise ServiceConfigError(
                    f"brownout_latency must be > 0, got {self.brownout_latency!r}"
                )
            object.__setattr__(self, "brownout_latency", latency)
        for name in ("breaker_failures", "breaker_probes"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ServiceConfigError(
                    f"{name} must be a positive integer, got {value!r}"
                )
        if not isinstance(self.slow_check_factor, int) or self.slow_check_factor < 2:
            raise ServiceConfigError(
                f"slow_check_factor must be an integer >= 2, "
                f"got {self.slow_check_factor!r}"
            )
        if not isinstance(self.criticality_laxity, int) or self.criticality_laxity < 1:
            raise ServiceConfigError(
                f"criticality_laxity must be a positive integer, "
                f"got {self.criticality_laxity!r}"
            )
        object.__setattr__(
            self, "rpc_timeout", _as_exact("rpc_timeout", self.rpc_timeout)
        )
        if self.rpc_timeout <= 0:
            raise ServiceConfigError(
                f"rpc_timeout must be > 0, got {self.rpc_timeout!r}"
            )
        if not isinstance(self.rpc_attempts, int) or self.rpc_attempts < 1:
            raise ServiceConfigError(
                f"rpc_attempts must be a positive integer, "
                f"got {self.rpc_attempts!r}"
            )
        if not isinstance(self.backoff, Backoff):
            raise ServiceConfigError(
                f"backoff must be a Backoff, got {type(self.backoff).__name__}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ServiceConfigError(f"seed must be an integer, got {self.seed!r}")

    @property
    def slow_threshold(self) -> Time:
        """Check cost at or above which the breaker counts a failure."""
        return self.check_cost * self.slow_check_factor

    # ------------------------------------------------------------------
    @classmethod
    def from_document(cls, fields: Mapping[str, Any]) -> "ServiceConfig":
        """Build from a JSON-shaped mapping (the spec-linter entry point).

        ``backoff`` may be given as a nested mapping of
        :class:`~repro.backoff.Backoff` fields.  Unknown keys raise
        :class:`~repro.errors.ServiceConfigError` — a typo in an overload
        experiment's config silently changes which work gets refused.
        """
        if not isinstance(fields, Mapping):
            raise ServiceConfigError(
                f"service config must be a mapping, got {type(fields).__name__}"
            )
        known = {f for f in cls.__dataclass_fields__}
        unknown = [key for key in fields if key not in known]
        if unknown:
            raise ServiceConfigError(
                f"unknown service config keys: {', '.join(sorted(unknown))}"
            )
        kwargs = dict(fields)
        backoff = kwargs.get("backoff")
        if isinstance(backoff, Mapping):
            backoff_known = {f for f in Backoff.__dataclass_fields__}
            backoff_unknown = [key for key in backoff if key not in backoff_known]
            if backoff_unknown:
                raise ServiceConfigError(
                    "unknown backoff keys: "
                    + ", ".join(sorted(backoff_unknown))
                )
            try:
                kwargs["backoff"] = Backoff(**backoff)
            except (TypeError, RecoveryError) as exc:
                raise ServiceConfigError(f"bad backoff config: {exc}") from exc
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ServiceConfigError(f"bad service config: {exc}") from exc
