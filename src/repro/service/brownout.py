"""Brownout: degrade gracefully instead of collapsing.

Under sustained pressure the front door swaps the exact Theorem-4 check
for the conservative Theorem-1 screen on *low-criticality* arrivals
(those with slack to spare).  The screen is reject-only — a screen
failure proves the exact check would refuse too (Theorem 1 is a
necessary condition, see :mod:`repro.decision.screen`) — and a screen
pass *defers* rather than admits, so brownout can never hand out a
promise the full check would have withheld.  Deferred work is reconciled
with the exact check when pressure drops.

This module holds only the mode controller: enter/exit with hysteresis
on queue depth (and optionally on the check-latency EWMA), so the mode
does not flap at the threshold.
"""

from __future__ import annotations

from typing import Optional

from repro.intervals.interval import Time


class BrownoutController:
    """Tracks whether the front door is in degraded (brownout) mode."""

    __slots__ = (
        "_enter_depth",
        "_exit_depth",
        "_latency",
        "active",
        "transitions",
    )

    def __init__(
        self,
        *,
        enter_depth: int,
        exit_depth: int,
        latency: Optional[Time] = None,
    ) -> None:
        self._enter_depth = enter_depth
        self._exit_depth = exit_depth
        self._latency = latency
        self.active = False
        #: ``(time, "enter" | "exit")`` log for reports and tests.
        self.transitions: list[tuple[Time, str]] = []

    @property
    def entries(self) -> int:
        return sum(1 for _, kind in self.transitions if kind == "enter")

    def update(self, now: Time, depth: int, ewma: Time) -> bool:
        """Re-evaluate the mode; returns True when it changed."""
        overloaded = depth >= self._enter_depth or (
            self._latency is not None and ewma >= self._latency
        )
        calm = depth <= self._exit_depth and (
            self._latency is None or ewma < self._latency
        )
        if not self.active and overloaded:
            self.active = True
            self.transitions.append((now, "enter"))
            return True
        if self.active and calm:
            self.active = False
            self.transitions.append((now, "exit"))
            return True
        return False
