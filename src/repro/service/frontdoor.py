"""The admission front door: backpressure for the Theorem-4 check.

Every arrival passes through four gates before (maybe) reaching the
exact check, each charged in deterministic *simulated* time:

1. **Breaker** — arrivals for an open enclave are shed instantly.
2. **Enqueue screen** — the lane must have a slot, and (under the
   ``"deadline"`` shed policy) the arrival's remaining slack must be
   expected to survive the queueing delay estimated from the live
   check-latency EWMA; arrivals that would provably expire in the queue
   are shed before consuming any check capacity.
3. **Dequeue screen** — when the virtual service clock actually reaches
   the request, the wait is no longer an estimate; requests that went
   stale in the queue are shed for the cost of a screen, not a check.
4. **Exact check** — :func:`repro.decision.clip_start` charges the full
   queueing delay against the requirement's window, then the wrapped
   checker (Theorem 4) runs on the clipped requirement.  An admitted
   schedule therefore starts no earlier than the moment the check
   completed: *queueing alone can never violate an admitted promise*.

Under brownout, low-criticality arrivals get the conservative Theorem-1
screen instead of gate 4: screen-fail rejects (provably sound — the
exact check refuses whatever the screen refutes), screen-pass *defers*
(never admits) until pressure drops and the exact check reconciles.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.computation.requirements import (
    ComplexRequirement,
    ConcurrentRequirement,
)
from repro.decision.admission import AdmissionController, clip_start
from repro.decision.schedule import ConcurrentSchedule
from repro.decision.screen import supply_shortfall
from repro.errors import ServiceError
from repro.intervals.interval import Interval, Time
from repro.observability import get_registry
from repro.resources.located_type import Link
from repro.resources.resource_set import ResourceSet
from repro.serialization import time_to_wire
from repro.backoff import Backoff
from repro.service.breaker import BreakerState, CircuitBreaker
from repro.service.brownout import BrownoutController
from repro.service.config import ServiceConfig
from repro.service.queue import EnclaveLane, LatencyEwma
from repro.system.channel import MessageChannel, NetworkModel

#: decision-log outcome vocabulary
ADMITTED = "admitted"
REJECTED = "rejected"
SHED = "shed"
DEFERRED = "deferred"

#: stable ``reason`` vocabulary for shed decisions (metrics label values)
SHED_BREAKER_OPEN = "breaker-open"
SHED_QUEUE_FULL = "queue-full"
SHED_STALE_ENQUEUE = "stale-deadline-enqueue"
SHED_STALE_DEQUEUE = "stale-deadline-dequeue"
SHED_SCREEN_ENQUEUE = "screen-shortfall-enqueue"
SHED_UNREACHABLE = "enclave-unreachable"

#: the door's own endpoint name on the verdict links (network mode)
DOOR_ENDPOINT = "door"


def default_enclave(requirement: ConcurrentRequirement) -> str:
    """Deterministic enclave for a requirement: the first demanded
    location, in the requirement's own declaration order (links belong
    to their source node — that is where the check's bookkeeping lives)."""
    for part in requirement.components:
        for phase in part.phases:
            for ltype in phase:
                location = ltype.location
                if isinstance(location, Link):
                    return location.source.name
                return location.name
    return "default"


@dataclass(frozen=True)
class ServiceRequest:
    """One arrival at the front door."""

    label: str
    requirement: ConcurrentRequirement
    arrival: Time
    #: isolation domain; derived from the requirement when omitted
    enclave: Optional[str] = None
    #: ``"high"`` | ``"low"`` | None (derive from slack under brownout)
    criticality: Optional[str] = None


@dataclass(frozen=True)
class ServiceOutcome:
    """The front door's verdict on one arrival."""

    label: str
    enclave: str
    arrival: Time
    decided_at: Time
    outcome: str  # ADMITTED | REJECTED | SHED | DEFERRED
    reason: str = ""
    #: virtual time spent queued before the decision
    wait: Time = 0
    schedule: Optional[ConcurrentSchedule] = None
    #: True when the verdict came from a brownout reconciliation
    reconciled: bool = False

    @property
    def admitted(self) -> bool:
        return self.outcome == ADMITTED

    def log_entry(self) -> dict:
        """Wire-stable form for the replay fingerprint (schedules are
        witnesses, not decisions, so they stay out of the digest)."""
        return {
            "label": self.label,
            "enclave": self.enclave,
            "arrival": time_to_wire(self.arrival),
            "decided_at": time_to_wire(self.decided_at),
            "outcome": self.outcome,
            "reason": self.reason,
            "wait": time_to_wire(self.wait),
            "reconciled": self.reconciled,
        }


@dataclass
class _Deferred:
    request: ServiceRequest
    screened_at: Time


class AdmissionFrontDoor:
    """Bounded, shedding, breaker-guarded facade over an exact checker.

    ``checker(requirement, now)`` runs the exact Theorem-4 decision and
    *commits* on admit; ``prober``, when given, is its read-only twin
    (used to cross-check brownout soundness).  ``slack_view()`` returns
    the resource set the Theorem-1 screen tests against — the expiring
    slack is the natural choice, since that is exactly what the exact
    check consults.

    Most callers should use :meth:`for_controller` (standalone service)
    or :class:`repro.service.policy.FrontDoorPolicy` (simulator).
    """

    def __init__(
        self,
        checker: Callable[[ConcurrentRequirement, Time], object],
        slack_view: Callable[[], ResourceSet],
        config: Optional[ServiceConfig] = None,
        *,
        prober: Optional[Callable[[ConcurrentRequirement, Time], object]] = None,
        stalls: Optional[Mapping[str, Sequence[Tuple[Time, Time]]]] = None,
        defer_low_criticality: bool = True,
        verify_brownout: bool = False,
        network: Optional[NetworkModel] = None,
    ) -> None:
        self._checker = checker
        self._slack_view = slack_view
        self.config = config or ServiceConfig()
        self._prober = prober
        self._channel = (
            None
            if network is None
            else MessageChannel(network, name=f"{DOOR_ENDPOINT}-net")
        )
        # Retry spacing of the verdict exchange: faster than the breaker
        # schedule (an attempt must fit inside the arrival's own window).
        self._net_backoff = Backoff(
            base=1, cap=8, jitter=0.25, seed=self.config.seed
        )
        self._rpc_seq = 0
        #: total verdict-link latency charged against arrival windows
        self.network_delay_charged: Time = 0
        #: verdict exchanges that exhausted their attempts (shed arrivals)
        self.rpc_failures = 0
        self._stalls: Dict[str, Tuple[Tuple[Time, Time], ...]] = {
            enclave: tuple((start, end) for start, end in windows)
            for enclave, windows in (stalls or {}).items()
        }
        self._defer_low_criticality = defer_low_criticality
        if verify_brownout and prober is None:
            raise ServiceError(
                "verify_brownout needs a read-only prober for the exact check"
            )
        self._verify_brownout = verify_brownout
        self._busy_until: Time = 0
        self._last_arrival: Time = 0
        self._lanes: Dict[str, EnclaveLane] = {}
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._ewma = LatencyEwma(self.config.ewma_alpha, self.config.check_cost)
        self.brownout = BrownoutController(
            enter_depth=self.config.brownout_enter,
            exit_depth=self.config.brownout_exit,
            latency=self.config.brownout_latency,
        )
        self._deferred: List[_Deferred] = []
        #: every terminal verdict, in decision order
        self.outcomes: List[ServiceOutcome] = []
        #: brownout screen verdicts cross-checked against the exact check
        self.brownout_verified = 0
        self._brownout_counted = 0

    # ------------------------------------------------------------------
    @classmethod
    def for_controller(
        cls,
        controller: AdmissionController,
        config: Optional[ServiceConfig] = None,
        **kwargs: object,
    ) -> "AdmissionFrontDoor":
        """Wrap an :class:`AdmissionController` as a standalone service."""

        def checker(requirement: ConcurrentRequirement, now: Time):
            if now > controller.now:
                controller.advance_to(now)
            return controller.admit(requirement)

        def prober(requirement: ConcurrentRequirement, now: Time):
            if now > controller.now:
                controller.advance_to(now)
            return controller.can_admit(requirement)

        door = cls(
            checker,
            lambda: controller.expiring_slack,
            config,
            prober=prober,
            **kwargs,
        )
        door._controller = controller
        return door

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Outstanding checks across all lanes (in virtual time)."""
        return sum(lane.depth for lane in self._lanes.values())

    @property
    def check_latency(self) -> Time:
        """The live check-cost EWMA the enqueue screen prices waits with."""
        return self._ewma.value

    @property
    def channel(self) -> Optional[MessageChannel]:
        """The verdict-link message channel (``None`` off-network)."""
        return self._channel

    @property
    def deferred_labels(self) -> tuple[str, ...]:
        return tuple(entry.request.label for entry in self._deferred)

    def lane(self, enclave: str) -> EnclaveLane:
        lane = self._lanes.get(enclave)
        if lane is None:
            lane = EnclaveLane(enclave, self.config.max_queue)
            self._lanes[enclave] = lane
        return lane

    def breaker(self, enclave: str) -> CircuitBreaker:
        breaker = self._breakers.get(enclave)
        if breaker is None:
            # Fold the service seed into the backoff's own: the jitter
            # stream is keyed (seed, enclave, attempt), nothing shared.
            backoff = replace(
                self.config.backoff,
                seed=self.config.backoff.seed + self.config.seed,
            )
            breaker = CircuitBreaker(
                enclave,
                failures=self.config.breaker_failures,
                probes=self.config.breaker_probes,
                backoff=backoff,
            )
            self._breakers[enclave] = breaker
        return breaker

    def accepting(self, enclave: str, now: Time) -> bool:
        """Read-only: is this enclave's breaker letting traffic through?"""
        return self.breaker(enclave).accepting(now)

    def fingerprint(self) -> str:
        """Content hash of the decision log (plus the seed): two runs
        shed and trip identically iff their fingerprints match."""
        payload = {
            "seed": self.config.seed,
            "decisions": [outcome.log_entry() for outcome in self.outcomes],
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Resource dynamics
    # ------------------------------------------------------------------
    def add_resources(self, resources: ResourceSet, now: Time) -> None:
        """Resources joined; forward to the wrapped controller's view."""
        self._advance(now)
        controller = getattr(self, "_controller", None)
        if controller is not None:
            if now > controller.now:
                controller.advance_to(now)
            controller.add_resources(resources)

    # ------------------------------------------------------------------
    # The front door
    # ------------------------------------------------------------------
    def offer(self, request: ServiceRequest) -> ServiceOutcome:
        """Decide one arrival; terminal unless brownout defers it."""
        t = request.arrival
        if t < self._last_arrival:
            raise ServiceError(
                f"arrivals must be offered in time order: {t} < {self._last_arrival}"
            )
        self._last_arrival = t
        self._advance(t)
        requirement = _as_concurrent(request.requirement)
        enclave = request.enclave or default_enclave(requirement)
        request = replace(request, enclave=enclave, requirement=requirement)
        lane = self.lane(enclave)
        breaker = self.breaker(enclave)

        # Gate 1: the breaker (also promotes open -> half-open on probe).
        if not breaker.allow(t):
            return self._finish_outcome(
                request, t, SHED, SHED_BREAKER_OPEN, wait=0
            )
        # Gate 2: bounded lane...
        if lane.full:
            return self._finish_outcome(request, t, SHED, SHED_QUEUE_FULL, wait=0)
        # ...and the deadline-aware enqueue screen.
        wait = self._busy_until - t if self._busy_until > t else 0
        if self.config.shed_policy == "deadline":
            est_decided = t + wait + self._ewma.value
            if est_decided >= requirement.deadline:
                return self._finish_outcome(
                    request, t, SHED, SHED_STALE_ENQUEUE, wait=0
                )
            shortfall = supply_shortfall(
                self._slack_view(),
                requirement,
                window=Interval(est_decided, requirement.deadline),
            )
            if shortfall is not None:
                return self._finish_outcome(
                    request, t, SHED, SHED_SCREEN_ENQUEUE, wait=0
                )

        # Brownout: low-criticality work gets the screen, not the check.
        self.brownout.update(t, self.depth, self._ewma.value)
        self._note_brownout()
        if self.brownout.active and self._is_low_criticality(request, wait):
            return self._brownout_offer(request, lane, t, wait)

        return self._exact_offer(request, lane, breaker, t, wait)

    # ------------------------------------------------------------------
    def _exact_offer(
        self,
        request: ServiceRequest,
        lane: EnclaveLane,
        breaker: CircuitBreaker,
        t: Time,
        wait: Time,
        *,
        reconciled: bool = False,
    ) -> ServiceOutcome:
        """Gates 3 and 4: dequeue re-screen, then the exact check."""
        requirement = request.requirement
        start_at = t + wait
        # Gate 3: by dequeue time the wait is exact.  A request that went
        # stale in the queue is recognised for the price of a screen.
        if (
            self.config.shed_policy == "deadline"
            and start_at + self.config.screen_cost + self.config.check_cost
            >= requirement.deadline
        ):
            decided_at = self._charge(lane, t, self.config.screen_cost)
            return self._finish_outcome(
                request,
                decided_at,
                SHED,
                SHED_STALE_DEQUEUE,
                wait=wait,
                reconciled=reconciled,
            )
        # Gate 4: the exact Theorem-4 check, at its stall-aware cost.
        cost = (
            self.config.stall_cost
            if self._stalled(request.enclave, start_at)
            else self.config.check_cost
        )
        # Network mode: the verdict crosses a lossy, delaying link first.
        # Its round-trip time joins the check cost, so injected message
        # delay inflates the EWMA (brownout's latency trigger) and can
        # cross the breaker's slow threshold — the network is observable
        # to the door only through the latency it causes.
        if self._channel is not None and request.enclave != DOOR_ENDPOINT:
            self._rpc_seq += 1
            exchange = self._channel.rpc(
                "admit",
                DOOR_ENDPOINT,
                request.enclave,
                start_at,
                key=f"{request.label}:d{self._rpc_seq}",
                deadline=requirement.deadline,
                timeout=self.config.rpc_timeout,
                backoff=self._net_backoff,
                max_attempts=self.config.rpc_attempts,
            )
            if not exchange.ok:
                # No verdict ever came back: the enclave is unreachable.
                # Shed, and count a breaker failure so a persistent
                # partition walls the enclave off at gate 1.
                self.rpc_failures += 1
                decided_at = self._charge(
                    lane, t, exchange.elapsed(start_at)
                )
                self._note_breaker_unreachable(breaker, decided_at)
                return self._finish_outcome(
                    request,
                    decided_at,
                    SHED,
                    SHED_UNREACHABLE,
                    wait=wait,
                    reconciled=reconciled,
                )
            network_time = exchange.elapsed(start_at)
            cost = cost + network_time
            self.network_delay_charged = (
                self.network_delay_charged + network_time
            )
            # The breaker watches for *anomalous* slowness, so the
            # link's deterministic floor (one round trip at base delay)
            # is allowed for; jitter spikes and retry storms are not.
            allowance = 2 * self._channel.network.link(
                DOOR_ENDPOINT, request.enclave
            ).delay
        else:
            allowance = 0
        decided_at = self._charge(lane, t, cost)
        self._ewma.observe(cost)
        self._note_breaker_check(breaker, decided_at, cost, allowance)
        if decided_at >= requirement.deadline:
            # The check itself (a stall, or tail-drop skipping gate 3)
            # overran the deadline; nothing left to admit against.
            return self._finish_outcome(
                request,
                decided_at,
                SHED,
                SHED_STALE_DEQUEUE,
                wait=wait,
                reconciled=reconciled,
            )
        clipped = clip_start(requirement, decided_at)
        decision = self._checker(clipped, t)
        outcome = ADMITTED if decision.admitted else REJECTED
        return self._finish_outcome(
            request,
            decided_at,
            outcome,
            getattr(decision, "reason", ""),
            wait=decided_at - t - cost if decided_at - t - cost > 0 else 0,
            schedule=getattr(decision, "schedule", None),
            reconciled=reconciled,
        )

    def _brownout_offer(
        self,
        request: ServiceRequest,
        lane: EnclaveLane,
        t: Time,
        wait: Time,
    ) -> ServiceOutcome:
        """Degraded path: Theorem-1 screen; reject or defer, never admit."""
        requirement = request.requirement
        decided_at = self._charge(lane, t, self.config.screen_cost)
        window = Interval(
            min(max(requirement.start, decided_at), requirement.deadline),
            requirement.deadline,
        )
        shortfall = (
            f"window {window} is empty"
            if window.is_empty
            else supply_shortfall(self._slack_view(), requirement, window=window)
        )
        if shortfall is not None:
            if self._verify_brownout:
                probe = self._prober(clip_start(requirement, decided_at), t)
                if probe.admitted:
                    raise ServiceError(
                        "brownout screen rejected what the exact check "
                        f"admits — Theorem-1 soundness broken for "
                        f"{request.label!r}: {shortfall}"
                    )
                self.brownout_verified += 1
            return self._finish_outcome(
                request,
                decided_at,
                REJECTED,
                f"brownout screen: {shortfall}",
                wait=wait,
            )
        if not self._defer_low_criticality:
            return self._finish_outcome(
                request,
                decided_at,
                REJECTED,
                "brownout: deferred to reconciliation",
                wait=wait,
            )
        self._deferred.append(_Deferred(request, decided_at))
        outcome = ServiceOutcome(
            label=request.label,
            enclave=request.enclave,
            arrival=request.arrival,
            decided_at=decided_at,
            outcome=DEFERRED,
            reason="brownout: screen passed; awaiting exact check",
            wait=wait,
        )
        self._count(outcome)
        return outcome

    # ------------------------------------------------------------------
    def reconcile(self, now: Time) -> List[ServiceOutcome]:
        """Run the exact check on deferred work (pressure permitting)."""
        self._advance(now)
        if self.brownout.active or not self._deferred:
            return []
        return self._resolve_deferred(now)

    def finish(self, now: Time) -> List[ServiceOutcome]:
        """End of the arrival stream: resolve every deferral, brownout or
        not — pressure has stopped building by construction."""
        self._advance(now)
        return self._resolve_deferred(now)

    def _resolve_deferred(self, now: Time) -> List[ServiceOutcome]:
        resolved: List[ServiceOutcome] = []
        pending, self._deferred = self._deferred, []
        for entry in pending:
            request = entry.request
            t = max(now, entry.screened_at)
            lane = self.lane(request.enclave)
            breaker = self.breaker(request.enclave)
            wait = self._busy_until - t if self._busy_until > t else 0
            if request.requirement.deadline <= t + wait:
                decided_at = self._charge(lane, t, self.config.screen_cost)
                resolved.append(
                    self._finish_outcome(
                        request,
                        decided_at,
                        SHED,
                        SHED_STALE_DEQUEUE,
                        wait=t + wait - request.arrival,
                        reconciled=True,
                    )
                )
                continue
            resolved.append(
                self._exact_offer(
                    request, lane, breaker, t, wait, reconciled=True
                )
            )
        return resolved

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _advance(self, now: Time) -> None:
        """Virtual time reached ``now``: retire completed checks and
        re-evaluate brownout (reconciliation stays caller-driven)."""
        for lane in self._lanes.values():
            lane.drain(now)
        self.brownout.update(now, self.depth, self._ewma.value)
        self._note_brownout()

    def _charge(self, lane: EnclaveLane, t: Time, cost: Time) -> Time:
        """Occupy the service clock for ``cost`` starting no earlier than
        ``t``; returns the completion (= decision) time."""
        start = self._busy_until if self._busy_until > t else t
        completion = start + cost
        self._busy_until = completion
        lane.push(completion)
        return completion

    def _stalled(self, enclave: str, at: Time) -> bool:
        for start, end in self._stalls.get(enclave, ()):
            if start <= at < end:
                return True
        return False

    def _is_low_criticality(self, request: ServiceRequest, wait: Time) -> bool:
        if request.criticality is not None:
            return request.criticality == "low"
        remaining = request.requirement.deadline - request.arrival
        budget = wait + self._ewma.value
        return remaining >= self.config.criticality_laxity * budget

    def _note_brownout(self) -> None:
        fresh = self.brownout.transitions[self._brownout_counted :]
        self._brownout_counted = len(self.brownout.transitions)
        if not fresh:
            return
        registry = get_registry()
        if not registry.enabled:
            return
        for _, kind in fresh:
            registry.counter(
                "door_brownout_transitions_total",
                "brownout mode entries and exits",
                labels=("kind",),
            ).inc(kind=kind)

    def _note_breaker_check(
        self, breaker: CircuitBreaker, now: Time, cost: Time,
        allowance: Time = 0,
    ) -> None:
        before = len(breaker.transitions)
        if cost >= self.config.slow_threshold + allowance:
            breaker.record_failure(now)
        else:
            breaker.record_success(now)
        registry = get_registry()
        if registry.enabled:
            for at, _, to in breaker.transitions[before:]:
                registry.counter(
                    "door_breaker_transitions_total",
                    "front-door circuit-breaker transitions",
                    labels=("enclave", "to"),
                ).inc(enclave=breaker.enclave, to=to)

    def _note_breaker_unreachable(
        self, breaker: CircuitBreaker, now: Time
    ) -> None:
        """An exhausted verdict exchange counts as a breaker failure."""
        before = len(breaker.transitions)
        breaker.record_failure(now)
        registry = get_registry()
        if registry.enabled:
            for at, _, to in breaker.transitions[before:]:
                registry.counter(
                    "door_breaker_transitions_total",
                    "front-door circuit-breaker transitions",
                    labels=("enclave", "to"),
                ).inc(enclave=breaker.enclave, to=to)

    def _finish_outcome(
        self,
        request: ServiceRequest,
        decided_at: Time,
        outcome: str,
        reason: str,
        *,
        wait: Time,
        schedule: Optional[ConcurrentSchedule] = None,
        reconciled: bool = False,
    ) -> ServiceOutcome:
        result = ServiceOutcome(
            label=request.label,
            enclave=request.enclave,
            arrival=request.arrival,
            decided_at=decided_at,
            outcome=outcome,
            reason=reason,
            wait=wait,
            schedule=schedule,
            reconciled=reconciled,
        )
        self.outcomes.append(result)
        self._count(result)
        return result

    def _count(self, outcome: ServiceOutcome) -> None:
        registry = get_registry()
        if not registry.enabled:
            return
        reason_key = outcome.reason if outcome.outcome == SHED else ""
        registry.counter(
            "door_requests_total",
            "front-door verdicts by outcome (shed reasons labelled)",
            labels=("outcome", "reason"),
        ).inc(outcome=outcome.outcome, reason=reason_key)
        registry.gauge(
            "door_queue_depth",
            "outstanding front-door checks per enclave (virtual time)",
            labels=("enclave",),
        ).set(self.lane(outcome.enclave).depth, enclave=outcome.enclave)
        registry.histogram(
            "door_queue_wait",
            "virtual time arrivals spent queued before their verdict",
            buckets=(0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0),
        ).observe(float(outcome.wait))


def _as_concurrent(
    requirement: ComplexRequirement | ConcurrentRequirement,
) -> ConcurrentRequirement:
    if isinstance(requirement, ConcurrentRequirement):
        return requirement
    return ConcurrentRequirement((requirement,), requirement.window)
