"""Service-run summary: what the front door did and what it proved.

The report is the test- and benchmark-facing surface: terminal verdicts
with their queue waits, breaker/brownout timelines, the decision-log
fingerprint (replay identity), and — the acceptance criterion —
:meth:`ServiceReport.queueing_violations`, which must come back empty:
every admitted schedule fits entirely inside ``(decided_at, deadline)``,
so queueing delay alone can never have broken an admitted promise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.intervals.interval import Time
from repro.service.config import ServiceConfig
from repro.service.frontdoor import (
    ADMITTED,
    REJECTED,
    SHED,
    AdmissionFrontDoor,
    ServiceOutcome,
)


@dataclass(frozen=True)
class ServiceReport:
    """Immutable summary of one front-door run."""

    config: ServiceConfig
    horizon: Time
    outcomes: Tuple[ServiceOutcome, ...]
    fingerprint: str
    breaker_transitions: Dict[str, Tuple[Tuple[Time, str, str], ...]]
    brownout_transitions: Tuple[Tuple[Time, str], ...]
    brownout_verified: int

    # ------------------------------------------------------------------
    @classmethod
    def from_door(
        cls, door: AdmissionFrontDoor, horizon: Time
    ) -> "ServiceReport":
        return cls(
            config=door.config,
            horizon=horizon,
            outcomes=tuple(door.outcomes),
            fingerprint=door.fingerprint(),
            breaker_transitions={
                enclave: tuple(breaker.transitions)
                for enclave, breaker in door._breakers.items()
                if breaker.transitions
            },
            brownout_transitions=tuple(door.brownout.transitions),
            brownout_verified=door.brownout_verified,
        )

    # ------------------------------------------------------------------
    @property
    def admitted(self) -> Tuple[ServiceOutcome, ...]:
        return tuple(o for o in self.outcomes if o.outcome == ADMITTED)

    @property
    def rejected(self) -> Tuple[ServiceOutcome, ...]:
        return tuple(o for o in self.outcomes if o.outcome == REJECTED)

    @property
    def shed(self) -> Tuple[ServiceOutcome, ...]:
        return tuple(o for o in self.outcomes if o.outcome == SHED)

    @property
    def goodput(self) -> int:
        """Admissions — each one a kept promise, by construction."""
        return len(self.admitted)

    def shed_reasons(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for outcome in self.shed:
            counts[outcome.reason] = counts.get(outcome.reason, 0) + 1
        return counts

    def waits(self) -> List[Time]:
        """Queue waits of requests that reached a check (admit/reject)."""
        return [
            o.wait for o in self.outcomes if o.outcome in (ADMITTED, REJECTED)
        ]

    # ------------------------------------------------------------------
    def queueing_violations(self) -> List[str]:
        """Admitted promises that queueing delay already broke — MUST be
        empty.  A violation would be an admitted schedule consuming
        before its decision completed (the service promised resources it
        had already spent as queueing time) or past its deadline."""
        broken: List[str] = []
        for outcome in self.admitted:
            if outcome.schedule is None:
                continue
            deadlines = [
                schedule.requirement.deadline
                for schedule in outcome.schedule.schedules
            ]
            deadline = max(deadlines) if deadlines else None
            for term in outcome.schedule.consumption().terms():
                if term.is_null:
                    continue
                if term.window.start < outcome.decided_at or (
                    deadline is not None and term.window.end > deadline
                ):
                    broken.append(outcome.label)
                    break
        return broken

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Plain-data digest for the CLI and benchmark JSON."""
        waits = sorted(float(w) for w in self.waits())
        return {
            "offered": len(self.outcomes),
            "admitted": self.goodput,
            "rejected": len(self.rejected),
            "shed": len(self.shed),
            "shed_reasons": self.shed_reasons(),
            "reconciled": sum(1 for o in self.outcomes if o.reconciled),
            "breaker_opens": sum(
                1
                for transitions in self.breaker_transitions.values()
                for _, _, to in transitions
                if to == "open"
            ),
            "brownout_entries": sum(
                1 for _, kind in self.brownout_transitions if kind == "enter"
            ),
            "brownout_verified": self.brownout_verified,
            "max_wait": waits[-1] if waits else 0.0,
            "fingerprint": self.fingerprint,
        }
