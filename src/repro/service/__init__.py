"""Admission as a service: a backpressured front door for the controller.

The paper assumes every arrival reaches the Theorem-4 check instantly.
A deployed admission service does not get that luxury: checks take time,
arrivals burst, and an overloaded controller that queues naively turns
its own queueing delay into silent promise violations — a computation
admitted after waiting has less window left than the check believed.

:mod:`repro.service` closes that gap by treating *time spent queued at
the controller* as resource consumption charged against the arrival's
own deadline (the same window-clipping rule the controller applies to
late arrivals, :func:`repro.decision.clip_start`):

* :class:`AdmissionFrontDoor` — bounded per-enclave queues with
  deadline-aware load shedding on enqueue and dequeue;
* :class:`CircuitBreaker` — per-enclave closed/open/half-open breakers
  with seeded-jitter backoff (:class:`repro.backoff.Backoff`);
* :class:`BrownoutController` — degraded mode that swaps the exact check
  for the conservative Theorem-1 screen on low-criticality work
  (reject-only; it can never falsely admit);
* :class:`FrontDoorPolicy` — the simulator-facing adapter, so overload
  becomes an injectable condition like any other fault.

Everything is deterministic in simulated time — no wall clock, no shared
RNG streams — so shed and breaker decisions replay byte-identically
under a fixed seed (the decision log is content-fingerprinted).
"""

from repro.service.breaker import BreakerState, CircuitBreaker
from repro.service.brownout import BrownoutController
from repro.service.config import SHED_POLICIES, ServiceConfig
from repro.service.driver import serve
from repro.service.frontdoor import (
    DOOR_ENDPOINT,
    SHED_UNREACHABLE,
    AdmissionFrontDoor,
    ServiceOutcome,
    ServiceRequest,
)
from repro.service.policy import FrontDoorPolicy
from repro.service.queue import EnclaveLane, LatencyEwma
from repro.service.report import ServiceReport

__all__ = [
    "AdmissionFrontDoor",
    "DOOR_ENDPOINT",
    "SHED_UNREACHABLE",
    "BreakerState",
    "BrownoutController",
    "CircuitBreaker",
    "EnclaveLane",
    "FrontDoorPolicy",
    "LatencyEwma",
    "SHED_POLICIES",
    "ServiceConfig",
    "ServiceOutcome",
    "ServiceReport",
    "ServiceRequest",
    "serve",
]
