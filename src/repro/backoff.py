"""Seeded, jittered, capped exponential backoff — shared by everyone.

Three subsystems space repeated attempts: the retry baseline re-offers
rejected arrivals (:mod:`repro.baselines.retry`), the recovery pipeline
re-admits promise-violation victims (:mod:`repro.faults.recovery`), and
the service front door's circuit breakers probe isolated enclaves
(:mod:`repro.service.breaker`).  All three need the same two properties:

* **capped exponential growth** — ``min(cap, base * factor**attempt)``,
  so repeated failures space out without unbounded waits, and
* **deterministic jitter** — real systems jitter backoff to break
  thundering herds, but a shared ``random.Random`` would make delays
  depend on *which other user drew from the stream first*.  Replayable
  experiments cannot tolerate that: resuming a crashed run mid-backoff,
  or reordering two independent breakers, must never change any delay.

:class:`Backoff` therefore derives each jitter draw *statelessly* from
``(seed, key, attempt)`` through SHA-256 — no stream, no shared cursor,
no ordering sensitivity.  Two breakers keyed by their enclave names get
independent, stable jitter ladders from one configured seed; calling
``delay`` twice, or from concurrently-progressing users in any
interleaving, always returns the same value.  (Python's builtin ``hash``
is process-salted and thus useless here; the digest path is the point.)

Arithmetic stays exact: jitter factors are :class:`~fractions.Fraction`
values, so integral grids survive where they can and every delay is a
deterministic exact number, never a platform-dependent float dance.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from fractions import Fraction

from repro.errors import RecoveryError

#: Resolution of one jitter draw: the first 8 digest bytes, uniform on
#: ``[0, 1)`` in steps of ``2**-64`` — far below any scheduling grid.
_JITTER_DENOMINATOR = 1 << 64


@dataclass(frozen=True)
class Backoff:
    """Capped exponential delays with stateless, seeded jitter.

    ``delay(attempt)`` is ``min(cap, base * factor**attempt)``; with
    ``jitter > 0`` the capped value is scaled by a deterministic factor
    in ``[1 - jitter, 1 + jitter)`` drawn from ``(seed, key, attempt)``
    and clamped back into ``[base, cap]`` so the schedule never waits
    less than ``base`` nor longer than ``cap``.

    ``attempt`` counts completed attempts, so the first re-offer waits
    ``~base`` and each failure multiplies the wait, up to ``cap``.
    """

    base: float = 1
    factor: float = 2.0
    cap: float = 16
    #: relative jitter amplitude in ``[0, 1)``; 0 = the classic
    #: deterministic ladder (bit-compatible with the PR-1 behaviour)
    jitter: float = 0.0
    #: seed of the jitter derivation; users sharing one configured seed
    #: stay independent through their ``key``
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base <= 0 or self.cap < self.base or self.factor < 1:
            raise RecoveryError(
                f"invalid backoff: base={self.base!r} factor={self.factor!r} "
                f"cap={self.cap!r} (need base > 0, cap >= base, factor >= 1)"
            )
        if not 0 <= self.jitter < 1:
            raise RecoveryError(
                f"backoff jitter must lie in [0, 1), got {self.jitter!r}"
            )

    # ------------------------------------------------------------------
    def delay(self, attempt: int, key: str = ""):
        """Delay before re-offer number ``attempt + 1``.

        ``key`` names the independent user of this schedule (an enclave,
        a victim label); it feeds the jitter derivation only, so distinct
        keys draw independent jitter while the undjittered ladder is
        shared.  The result is a pure function of
        ``(config, attempt, key)`` — no internal state advances.
        """
        if attempt < 0:
            raise RecoveryError(f"attempt must be non-negative, got {attempt}")
        raw = self.base * (self.factor ** attempt)
        if raw >= float(self.cap):
            capped = self.cap
        else:
            # Keep integral delays integral so event times stay on the grid.
            capped = type(self.base)(raw) if raw == int(raw) else raw
        if not self.jitter:
            return capped
        spread = Fraction(self.jitter).limit_denominator(10_000)
        # factor in [1 - jitter, 1 + jitter), exactly and statelessly
        scale = 1 - spread + 2 * spread * self._draw(attempt, key)
        jittered = Fraction(capped) * scale
        lo, hi = Fraction(self.base), Fraction(self.cap)
        if jittered < lo:
            jittered = lo
        elif jittered > hi:
            jittered = hi
        return int(jittered) if jittered.denominator == 1 else jittered

    def _draw(self, attempt: int, key: str) -> Fraction:
        """One uniform draw on ``[0, 1)`` from ``(seed, key, attempt)``.

        SHA-256, not ``hash()``: the builtin is salted per process, and
        a shared ``random.Random`` stream would couple callers through
        draw order — both would break replay.
        """
        digest = hashlib.sha256(
            f"{self.seed}:{key}:{attempt}".encode()
        ).digest()
        return Fraction(
            int.from_bytes(digest[:8], "big"), _JITTER_DENOMINATOR
        )
