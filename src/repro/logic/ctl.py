"""Branching-time (CTL-style) checking over the ROTA evolution tree.

The paper's semantics quantifies formulas along one computation path; its
prose, however, speaks in branching terms — "a computation can
*eventually* be accommodated", "can *always* be accommodated" — which mix
path quantifiers (some/every evolution) with temporal ones.  This module
makes the full set of combinations first class over the quantised tree:

=============  ==================================================
``EX``/``AX``  some/every successor state
``EF``/``AF``  some/every path reaches a state satisfying p
``EG``/``AG``  some/every path keeps p invariant
=============  ==================================================

State formulas are predicates over :class:`SystemState` — either a plain
callable or a :class:`StateAtom` wrapping the paper's ``satisfy`` against
the state's *remaining* availability net of accommodated demand.  The
checker is a memoised depth-first evaluation with the horizon as the
finite-path cutoff (at the horizon, ``EG``/``AG`` hold vacuously and
``EF``/``AF`` reduce to "now").

Cross-validation: ``tests/test_logic_ctl.py`` checks every operator
against brute-force path enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple, Union

from repro.computation.requirements import (
    ComplexRequirement,
    ConcurrentRequirement,
    SimpleRequirement,
)
from repro.decision.concurrent import find_concurrent_schedule
from repro.decision.sequential import find_schedule
from repro.errors import FormulaError
from repro.intervals.interval import Interval, Time
from repro.logic.state import SystemState
from repro.logic.transitions import successors

StatePredicate = Callable[[SystemState], bool]


@dataclass(frozen=True)
class StateAtom:
    """``satisfy(rho)`` read against a state: can the state's remaining
    resources (net of its accommodated computations' outstanding demand)
    accommodate the requirement?"""

    requirement: Union[SimpleRequirement, ComplexRequirement, ConcurrentRequirement]

    def __call__(self, state: SystemState) -> bool:
        requirement = self.requirement
        deadline = requirement.deadline
        if state.t >= deadline:
            return False
        window = Interval(max(requirement.start, state.t), deadline)
        available = state.theta.restrict(Interval(state.t, deadline))
        # Outstanding demand of accommodated computations is spoken for:
        # net it out, order-blind (a sound over-approximation of what the
        # committed path will consume inside the window).
        for progress in state.pending:
            for index in range(progress.phase, len(progress.requirement.phases)):
                demands = (
                    progress.current_demands
                    if index == progress.phase
                    else progress.requirement.phases[index]
                )
                for ltype, quantity in demands.items():
                    profile = available.profile(ltype)
                    have = profile.integral(window)
                    if have <= 0:
                        continue
                    # subtract by shaving quantity off the window's tail
                    take = min(quantity, have)
                    available = _shave(available, ltype, window, take)
        if isinstance(requirement, SimpleRequirement):
            return SimpleRequirement(requirement.demands, window).satisfied_by(
                available
            )
        if isinstance(requirement, ComplexRequirement):
            clipped = ComplexRequirement(
                requirement.phases, window, label=requirement.label
            )
            return find_schedule(available, clipped) is not None
        clipped_parts = tuple(
            ComplexRequirement(
                part.phases,
                Interval(max(part.start, state.t), part.deadline),
                label=part.label,
            )
            for part in requirement.components
            if state.t < part.deadline
        )
        if len(clipped_parts) != len(requirement.components):
            return False
        bundle = ConcurrentRequirement(clipped_parts, window)
        return find_concurrent_schedule(available, bundle) is not None


def _shave(available, ltype, window, quantity):
    """Remove ``quantity`` of ``ltype`` from the *latest* part of the
    window (order-blind accounting: latest-first keeps early supply for
    feasibility checks, which only makes the atom more conservative for
    the newcomer)."""
    from repro.resources.resource_set import ResourceSet

    profile = available.profile(ltype)
    remaining = quantity
    # walk segments from the window end backwards
    segments = [
        (segment.intersection(window), rate)
        for segment, rate in profile.segments()
        if not segment.intersection(window).is_empty
    ]
    shaved = profile
    for segment, rate in reversed(segments):
        if remaining <= 0:
            break
        capacity = rate * segment.duration
        take = min(capacity, remaining)
        from repro.resources.profile import RateProfile, exact_div

        length = exact_div(take, rate)
        cut = RateProfile.constant(
            rate, Interval(segment.end - length, segment.end)
        )
        shaved = shaved.subtract(cut)
        remaining -= take
    profiles = dict(available.profiles())
    profiles[ltype] = shaved
    return ResourceSet.from_profiles(profiles)


# ----------------------------------------------------------------------
# Operators
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class _Op:
    kind: str  # EX AX EF AF EG AG
    predicate: StatePredicate


def EX(p: StatePredicate) -> _Op:
    """Some successor satisfies p."""
    return _Op("EX", p)


def AX(p: StatePredicate) -> _Op:
    """Every successor satisfies p."""
    return _Op("AX", p)


def EF(p: StatePredicate) -> _Op:
    """Some path reaches p before the horizon."""
    return _Op("EF", p)


def AF(p: StatePredicate) -> _Op:
    """Every path reaches p before the horizon."""
    return _Op("AF", p)


def EG(p: StatePredicate) -> _Op:
    """Some path keeps p invariant up to the horizon."""
    return _Op("EG", p)


def AG(p: StatePredicate) -> _Op:
    """Every reachable state up to the horizon satisfies p."""
    return _Op("AG", p)


class TreeChecker:
    """Memoised CTL evaluation over the quantised evolution tree."""

    def __init__(self, horizon: Time, *, dt: int = 1) -> None:
        if dt <= 0:
            raise FormulaError("dt must be positive")
        self._horizon = horizon
        self._dt = dt
        self._memo: Dict[Tuple[str, int, SystemState], bool] = {}

    def check(self, state: SystemState, formula: _Op | StatePredicate) -> bool:
        if not isinstance(formula, _Op):
            return bool(formula(state))
        return self._eval(formula, state)

    # ------------------------------------------------------------------
    def _children(self, state: SystemState):
        if state.t >= self._horizon:
            return []
        return [transition.target for transition in successors(state, self._dt)]

    def _eval(self, op: _Op, state: SystemState) -> bool:
        key = (op.kind, id(op.predicate), state)
        if key in self._memo:
            return self._memo[key]
        # Pre-seed to guard against cycles (states are time-stamped, so
        # the tree is acyclic; the seed is belt and braces).
        self._memo[key] = False
        p = op.predicate
        children = self._children(state)
        if op.kind == "EX":
            value = any(p(child) for child in children)
        elif op.kind == "AX":
            value = all(p(child) for child in children) and bool(children)
        elif op.kind == "EF":
            value = p(state) or any(
                self._eval(op, child) for child in children
            )
        elif op.kind == "AF":
            value = p(state) or (
                bool(children)
                and all(self._eval(op, child) for child in children)
            )
        elif op.kind == "EG":
            value = p(state) and (
                not children or any(self._eval(op, child) for child in children)
            )
        elif op.kind == "AG":
            value = p(state) and all(
                self._eval(op, child) for child in children
            )
        else:  # pragma: no cover - constructor-guarded
            raise FormulaError(f"unknown operator {op.kind!r}")
        self._memo[key] = value
        return value


def check_tree(
    state: SystemState,
    formula: _Op | StatePredicate,
    horizon: Time,
    *,
    dt: int = 1,
) -> bool:
    """One-shot convenience wrapper around :class:`TreeChecker`."""
    return TreeChecker(horizon, dt=dt).check(state, formula)
