"""The ROTA system model ``M = (A, R, C, Phi)`` (paper Section V-A).

``A`` — actor names; ``R`` — resource terms; ``C`` — distributed
computations; ``Phi`` — the cost function.  :class:`RotaModel` packages
the four, derives requirements, builds initial states, and offers the
theorem-level queries:

* :meth:`meets_deadline` — Theorem 3: does some computation path complete
  the computation before its deadline?
* :meth:`can_accommodate` — Theorem 4: can a newcomer be admitted against
  the expiring slack of the committed path, without disturbing existing
  commitments?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.computation.computation import Computation
from repro.computation.cost_model import CostModel, DEFAULT_COST_MODEL, Placement
from repro.computation.requirements import (
    ComplexRequirement,
    ConcurrentRequirement,
)
from repro.decision.concurrent import find_concurrent_schedule
from repro.decision.schedule import ConcurrentSchedule
from repro.errors import InvalidComputationError
from repro.intervals.interval import Time
from repro.logic.paths import ComputationPath, exists_path, greedy_path
from repro.logic.state import SystemState, initial_state
from repro.logic.transitions import accommodate
from repro.resources.resource_set import ResourceSet


@dataclass(frozen=True)
class RotaModel:
    """``M = (A, R, C, Phi)``."""

    resources: ResourceSet
    computations: tuple[Computation, ...] = ()
    cost_model: CostModel = DEFAULT_COST_MODEL

    def __post_init__(self) -> None:
        object.__setattr__(self, "computations", tuple(self.computations))
        names = [a.name for c in self.computations for a in c.actors]
        if len(set(names)) != len(names):
            raise InvalidComputationError(
                "actor names must be globally unique across the model"
            )

    # ------------------------------------------------------------------
    @property
    def actor_names(self) -> tuple[str, ...]:
        """``A`` — every actor name in the model."""
        return tuple(a.name for c in self.computations for a in c.actors)

    def placement(self) -> Placement:
        """Union of each computation's default placement."""
        merged = Placement()
        for computation in self.computations:
            for actor in computation.actors:
                merged.place(actor.name, actor.home)
        return merged

    def requirement_of(self, computation: Computation) -> ConcurrentRequirement:
        """``rho(Lambda, s, d)`` under the model's ``Phi``."""
        return computation.requirement(self.cost_model, self.placement())

    # ------------------------------------------------------------------
    def initial_state(self, t: Time = 0, *, accommodated: bool = True) -> SystemState:
        """``S_0``; with ``accommodated=True`` every computation in ``C``
        has already been accommodated (its requirement is in ``rho``)."""
        state = initial_state(self.resources, t)
        if accommodated:
            for computation in self.computations:
                state = accommodate(state, self.requirement_of(computation))
        return state

    # ------------------------------------------------------------------
    # Theorem-level queries
    # ------------------------------------------------------------------
    def meets_deadline(
        self,
        computation: Computation,
        *,
        dt: int = 1,
        exhaustive: bool = False,
    ) -> Optional[ComputationPath]:
        """Theorem 3: a computation path on which ``computation`` finishes
        by its deadline, or None.

        With ``exhaustive=False`` only the canonical greedy branch is
        followed (linear); with ``exhaustive=True`` the full quantised
        tree is searched (exponential, exact).
        """
        requirement = self.requirement_of(computation)
        state = accommodate(initial_state(self.resources, 0), requirement)
        horizon = computation.deadline
        labels = [part.label for part in requirement.components]

        def finished(path: ComputationPath) -> bool:
            return all(path.completes(label) for label in labels)

        if not exhaustive:
            path = greedy_path(state, horizon, dt)
            return path if finished(path) else None
        return exists_path(state, horizon, finished, dt)

    def can_accommodate(
        self,
        committed_path: ComputationPath,
        newcomer: Computation | ConcurrentRequirement | ComplexRequirement,
        *,
        at: Time = 0,
        exhaustive: bool = False,
    ) -> Optional[ConcurrentSchedule]:
        """Theorem 4: admit ``newcomer`` against the expiring resources of
        ``committed_path`` during its window — existing commitments are
        untouched.  Returns the newcomer's witness schedule or None.
        """
        if isinstance(newcomer, Computation):
            requirement = self.requirement_of(newcomer)
        elif isinstance(newcomer, ComplexRequirement):
            requirement = ConcurrentRequirement((newcomer,), newcomer.window)
        else:
            requirement = newcomer
        from repro.intervals.interval import Interval

        window = Interval(max(requirement.start, at), requirement.deadline)
        if window.is_empty:
            return None
        opportunity = committed_path.expiring_resources(window)
        return find_concurrent_schedule(
            opportunity, requirement, exhaustive=exhaustive
        )
