"""The labeled transition rules of ROTA (paper Section V-A).

Progress of a ROTA system is regulated by labeled transition rules:

* **sequential transition** — one actor consumes one resource type for a
  slice ``dt``;
* **concurrent transition** — several actors consume several types in the
  same slice;
* **resource expiration** — available resources whose time passes unused
  disappear, no computation progresses;
* **general transition** — the realistic mix: some resources consumed,
  the rest of the slice's availability expires;
* **resource acquisition** (instantaneous) — ``Theta := Theta U Theta_join``;
* **computation accommodation** (instantaneous, ``t < d``);
* **computation leave** (instantaneous, ``t < s``).

:func:`step` implements the general rule (with the sequential, concurrent
and pure-expiration rules as special cases of its allocation argument);
:func:`successors` enumerates every distinct allocation choice — the
branching of the tree frame ``chi`` whose branches are computation paths.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Sequence, Tuple

from repro.computation.demands import Demands
from repro.computation.requirements import ComplexRequirement, ConcurrentRequirement
from repro.errors import TransitionError
from repro.intervals.interval import Interval, Time
from repro.logic.state import ActorProgress, SystemState
from repro.resources.located_type import LocatedType
from repro.resources.resource_set import ResourceSet


@dataclass(frozen=True)
class TransitionLabel:
    """``xi -> a`` annotations over one slice: who consumed what, and which
    types' availability expired unused."""

    consumed: tuple[Tuple[str, LocatedType, Time], ...]  # (actor, type, qty)
    expired: tuple[Tuple[LocatedType, Time], ...]  # (type, qty unused)
    dt: Time

    @property
    def is_pure_expiration(self) -> bool:
        return not self.consumed

    def __str__(self) -> str:
        parts = [f"{lt}->{actor}({q})" for actor, lt, q in self.consumed]
        if not parts:
            parts = ["expire"]
        return ", ".join(parts)


@dataclass(frozen=True)
class Transition:
    """One edge ``S_i --label--> S_{i+1}`` of the tree frame."""

    source: SystemState
    label: TransitionLabel
    target: SystemState


# ----------------------------------------------------------------------
# Timed rules
# ----------------------------------------------------------------------

def step(
    state: SystemState,
    dt: Time,
    allocations: Mapping[str, Demands] | None = None,
) -> Transition:
    """The general transition rule over ``(t, t + dt)``.

    ``allocations`` maps accommodated-computation labels to the demands
    they consume this slice.  Validation enforces the model:

    * an actor only consumes what its *current phase* (possible action)
      needs — sequencing is never violated;
    * an actor only consumes within its ``(s, d)`` window;
    * total consumption per type never exceeds the slice's availability.

    Whatever availability is not consumed expires (the slice lies in the
    past afterwards).  With no allocations this is the resource-expiration
    rule; with exactly one (actor, type) pair it is the paper's sequential
    rule; with several, the concurrent rule.
    """
    if dt <= 0:
        raise TransitionError(f"dt must be positive, got {dt!r}")
    allocations = dict(allocations or {})
    slice_window = Interval(state.t, state.t + dt)

    # Validate per-actor constraints and build consumption totals.
    consumed_per_type: Dict[LocatedType, Time] = {}
    consumed_labels: list[Tuple[str, LocatedType, Time]] = []
    updated: list[ActorProgress] = []
    for progress in state.rho:
        demand = allocations.pop(progress.label, None)
        if demand is None or demand.is_empty:
            updated.append(progress)
            continue
        if not progress.active_at(state.t):
            raise TransitionError(
                f"{progress.label!r} cannot consume at t={state.t}: outside "
                f"its window {Interval(progress.start, progress.deadline)} "
                "or already complete"
            )
        updated.append(progress.after_consuming(demand))
        for ltype, quantity in demand.items():
            consumed_per_type[ltype] = consumed_per_type.get(ltype, 0) + quantity
            consumed_labels.append((progress.label, ltype, quantity))
    if allocations:
        raise TransitionError(
            f"allocations reference unknown computations: {sorted(allocations)}"
        )

    # Validate against the slice's availability and compute expiry.
    expired: list[Tuple[LocatedType, Time]] = []
    for ltype in state.theta.located_types:
        capacity = state.theta.quantity(ltype, slice_window)
        used = consumed_per_type.get(ltype, 0)
        if used > capacity:
            raise TransitionError(
                f"slice consumes {used} of {ltype} but only {capacity} is "
                f"available during {slice_window}"
            )
        leftover = capacity - used
        if leftover > 0:
            expired.append((ltype, leftover))
    for ltype, used in consumed_per_type.items():
        if ltype not in state.theta.located_types and used > 0:
            raise TransitionError(f"no {ltype} available at all")

    next_state = SystemState(
        theta=state.theta.truncate_before(state.t + dt),
        rho=tuple(updated),
        t=state.t + dt,
    )
    label = TransitionLabel(tuple(consumed_labels), tuple(expired), dt)
    return Transition(state, label, next_state)


def expire(state: SystemState, dt: Time) -> Transition:
    """The resource-expiration rule: time passes, nothing is consumed."""
    return step(state, dt, None)


def greedy_allocations(state: SystemState, dt: Time) -> Mapping[str, Demands]:
    """A canonical maximal allocation for the slice: earlier-admitted
    computations drain availability first.  Used by deterministic stepping
    (the simulator offers richer policies)."""
    slice_window = Interval(state.t, state.t + dt)
    capacity: Dict[LocatedType, Time] = {
        lt: state.theta.quantity(lt, slice_window)
        for lt in state.theta.located_types
    }
    out: Dict[str, Demands] = {}
    for progress in state.rho:
        if not progress.active_at(state.t):
            continue
        granted: Dict[LocatedType, Time] = {}
        for ltype, want in progress.current_demands.items():
            take = min(want, capacity.get(ltype, 0))
            if take > 0:
                granted[ltype] = take
                capacity[ltype] = capacity[ltype] - take
        if granted:
            out[progress.label] = Demands(granted)
    return out


# ----------------------------------------------------------------------
# Instantaneous rules
# ----------------------------------------------------------------------

def acquire(state: SystemState, joining: ResourceSet) -> SystemState:
    """Resource acquisition: ``(Theta, rho, t) -> (Theta U Theta_join, rho, t)``.

    There is no resource-leave rule: a term's interval already fixes when
    it leaves.
    """
    return SystemState(state.theta | joining, state.rho, state.t)


def accommodate(
    state: SystemState,
    requirement: ComplexRequirement | ConcurrentRequirement,
) -> SystemState:
    """Computation accommodation: add ``rho(Lambda, s, d)`` to the state.

    Precondition ``t < d`` — a computation whose deadline has passed
    cannot be accommodated.
    """
    parts: tuple[ComplexRequirement, ...]
    if isinstance(requirement, ConcurrentRequirement):
        parts = requirement.components
    else:
        parts = (requirement,)
    for part in parts:
        if state.t >= part.deadline:
            raise TransitionError(
                f"cannot accommodate {part.label!r}: its deadline "
                f"{part.deadline} has passed (t={state.t})"
            )
    additions = tuple(ActorProgress(part) for part in parts)
    return SystemState(state.theta, state.rho + additions, state.t)


def leave(state: SystemState, label: str) -> SystemState:
    """Computation leave: remove an accommodated computation.

    Precondition ``t < s`` — a computation that has already started may
    not leave.
    """
    progress = state.progress_of(label)
    if state.t >= progress.start:
        raise TransitionError(
            f"{label!r} has already started (t={state.t} >= s={progress.start})"
        )
    remaining = tuple(p for p in state.rho if p is not progress)
    return SystemState(state.theta, remaining, state.t)


# ----------------------------------------------------------------------
# Successor enumeration (the tree frame chi)
# ----------------------------------------------------------------------

def _integer_splits(capacity: int, wants: Sequence[int]) -> Iterator[Tuple[int, ...]]:
    """Maximal integer splits of ``capacity`` among ``wants`` (unconsumed
    capacity expires, so non-maximal splits are dominated)."""
    total = min(capacity, sum(wants))

    def rec(i: int, left: int) -> Iterator[Tuple[int, ...]]:
        if i == len(wants) - 1:
            if left <= wants[i]:
                yield (left,)
            return
        tail = sum(wants[i + 1:])
        for x in range(max(0, left - tail), min(wants[i], left) + 1):
            yield from ((x, *rest) for rest in rec(i + 1, left - x))

    if not wants:
        yield ()
    else:
        yield from rec(0, total)


def successors(state: SystemState, dt: int = 1) -> Iterator[Transition]:
    """All distinct transitions out of ``state`` for one ``dt`` slice.

    Branching enumerates, per resource type, every maximal split of the
    slice's (integer) capacity among the computations whose current phase
    wants it.  This realises the paper's tree frame: each branch is the
    start of a different computation path.

    Requires integer capacities and demands (use scaled units otherwise).
    """
    slice_window = Interval(state.t, state.t + dt)
    active = [p for p in state.rho if p.active_at(state.t)]
    ltypes = sorted(
        {lt for p in active for lt in p.current_demands},
        key=lambda lt: (lt.kind, str(lt.location)),
    )
    per_type_options: list[list[tuple[Tuple[str, Time], ...]]] = []
    for ltype in ltypes:
        capacity = state.theta.quantity(ltype, slice_window)
        if capacity != int(capacity):
            raise TransitionError(
                "successor enumeration requires integer capacities; "
                f"{ltype} provides {capacity} during {slice_window}"
            )
        claimants = [
            (p.label, int(min(p.current_demands.get(ltype, 0), capacity)))
            for p in active
            if p.current_demands.get(ltype, 0) > 0
        ]
        if not claimants or capacity <= 0:
            per_type_options.append([()])
            continue
        labels = [label for label, _ in claimants]
        wants = [want for _, want in claimants]
        options = [
            tuple(zip(labels, split))
            for split in _integer_splits(int(capacity), wants)
        ]
        per_type_options.append(options or [()])

    seen: set = set()
    for combo in itertools.product(*per_type_options) if ltypes else [()]:
        allocations: Dict[str, Dict[LocatedType, Time]] = {}
        for type_index, option in enumerate(combo):
            for label, amount in option:
                if amount > 0:
                    allocations.setdefault(label, {})[ltypes[type_index]] = amount
        frozen = tuple(
            sorted(
                (label, tuple(sorted(
                    ((lt.kind, str(lt.location), q) for lt, q in demand.items())
                )))
                for label, demand in allocations.items()
            )
        )
        if frozen in seen:
            continue
        seen.add(frozen)
        yield step(
            state, dt, {label: Demands(demand) for label, demand in allocations.items()}
        )
