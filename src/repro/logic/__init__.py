"""ROTA — the resource-oriented temporal logic (paper Section V).

System states, labeled transition rules, well-formed formulas, computation
paths, and the satisfaction relation ``M, sigma, t |= psi``.
"""

from repro.logic.ctl import (
    AF,
    AG,
    EF,
    EG,
    EX,
    AX,
    StateAtom,
    TreeChecker,
    check_tree,
)
from repro.logic.formula import (
    FALSE,
    TRUE,
    Always,
    And,
    Eventually,
    FalseFormula,
    Formula,
    Not,
    Or,
    Satisfy,
    TrueFormula,
    always,
    eventually,
    satisfy,
)
from repro.logic.model import RotaModel
from repro.logic.paths import (
    MAX_TREE_NODES,
    ComputationPath,
    enumerate_paths,
    exists_path,
    greedy_path,
)
from repro.logic.semantics import exists_on_some_path, holds_on_all_paths, models
from repro.logic.state import ActorProgress, SystemState, initial_state
from repro.logic.transitions import (
    Transition,
    TransitionLabel,
    accommodate,
    acquire,
    expire,
    greedy_allocations,
    leave,
    step,
    successors,
)

__all__ = [
    "AF",
    "AG",
    "EF",
    "EG",
    "EX",
    "AX",
    "StateAtom",
    "TreeChecker",
    "check_tree",
    "FALSE",
    "TRUE",
    "Always",
    "And",
    "Eventually",
    "FalseFormula",
    "Formula",
    "Not",
    "Or",
    "Satisfy",
    "TrueFormula",
    "always",
    "eventually",
    "satisfy",
    "RotaModel",
    "MAX_TREE_NODES",
    "ComputationPath",
    "enumerate_paths",
    "exists_path",
    "greedy_path",
    "exists_on_some_path",
    "holds_on_all_paths",
    "models",
    "ActorProgress",
    "SystemState",
    "initial_state",
    "Transition",
    "TransitionLabel",
    "accommodate",
    "acquire",
    "expire",
    "greedy_allocations",
    "leave",
    "step",
    "successors",
]
