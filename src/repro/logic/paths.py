"""Computation paths and the evolution tree (paper Definition 2).

A *computation path* is one branch of the tree that the transition
relation ``chi`` produces from a state: a maximal sequence of states
connected by timed transitions.  The tree of all branches represents
every possible evolution of the system; Theorem 3 asks whether *some*
branch completes a computation before its deadline.

:class:`ComputationPath` wraps a concrete branch and exposes the two
queries the semantics needs:

* the state (and time points) along the path, and
* ``Theta_expire`` — the union of resources that expire unused along the
  path during a window.  "These are unwanted resources which will expire
  unless new computations requiring them enter the system", i.e. the
  opportunity a newcomer can exploit (Theorem 4).

:func:`enumerate_paths` generates every branch of the quantised tree up to
a horizon — exact but exponential, so guarded by an exploration budget.
:func:`greedy_path` follows the canonical maximal-allocation branch in
linear time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional

from repro.errors import SimulationError
from repro.intervals.interval import Interval, Time
from repro.logic.state import SystemState
from repro.logic.transitions import (
    Transition,
    greedy_allocations,
    step,
    successors,
)
from repro.resources.located_type import LocatedType
from repro.resources.profile import RateProfile, exact_div
from repro.resources.resource_set import ResourceSet

#: Budget for exhaustive tree exploration.
MAX_TREE_NODES = 500_000


@dataclass(frozen=True)
class ComputationPath:
    """One branch: ``(S_0, S_1, ..., S_n)`` plus the labels between."""

    transitions: tuple[Transition, ...]
    initial: SystemState

    def __post_init__(self) -> None:
        previous = self.initial
        for transition in self.transitions:
            if transition.source != previous:
                raise SimulationError("transitions do not chain into a path")
            previous = transition.target

    # ------------------------------------------------------------------
    @property
    def states(self) -> tuple[SystemState, ...]:
        return (self.initial, *(tr.target for tr in self.transitions))

    @property
    def final(self) -> SystemState:
        return self.transitions[-1].target if self.transitions else self.initial

    @property
    def times(self) -> tuple[Time, ...]:
        return tuple(state.t for state in self.states)

    def state_at(self, t: Time) -> SystemState:
        """The path's state in effect at time ``t`` (latest state whose
        time does not exceed ``t``)."""
        chosen = self.initial
        for state in self.states:
            if state.t <= t:
                chosen = state
            else:
                break
        return chosen

    # ------------------------------------------------------------------
    def expiring_resources(self, window: Interval) -> ResourceSet:
        """``U Theta_expire`` restricted to ``window``.

        Each timed transition records how much of each type expired unused
        during its slice; re-expressed as rate terms over the slice and
        clipped to the window, their union is the path's unclaimed
        opportunity.
        """
        profiles: Dict[LocatedType, RateProfile] = {}
        for transition in self.transitions:
            label = transition.label
            slice_window = Interval(
                transition.source.t, transition.source.t + label.dt
            )
            clipped = slice_window.intersection(window)
            if clipped.is_empty:
                continue
            for ltype, unused in label.expired:
                rate = exact_div(unused, label.dt)
                profiles[ltype] = profiles.get(ltype, RateProfile.zero()) + (
                    RateProfile.constant(rate, clipped)
                )
        # Availability beyond the explored part of the path also expires
        # unless claimed: the final state's theta within the window, minus
        # nothing (no commitments are modelled past the path's end).
        tail_start = max(self.final.t, window.start)
        if tail_start < window.end:
            tail = self.final.theta.restrict(Interval(tail_start, window.end))
            out = ResourceSet.from_profiles(profiles) | tail
            return out
        return ResourceSet.from_profiles(profiles)

    def completes(self, label: str) -> bool:
        """Whether the computation finished before its deadline on this
        path."""
        for state in self.states:
            try:
                progress = state.progress_of(label)
            except KeyError:
                continue
            if progress.is_complete and state.t <= progress.deadline:
                return True
        return False

    def __len__(self) -> int:
        return len(self.transitions)


def greedy_path(
    initial: SystemState,
    horizon: Time,
    dt: Time = 1,
) -> ComputationPath:
    """The canonical branch: maximal first-come allocation each slice."""
    transitions: list[Transition] = []
    state = initial
    while state.t < horizon:
        allocations = greedy_allocations(state, dt)
        transition = step(state, dt, allocations)
        transitions.append(transition)
        state = transition.target
    return ComputationPath(tuple(transitions), initial)


def enumerate_paths(
    initial: SystemState,
    horizon: Time,
    dt: int = 1,
    *,
    prune: Optional[Callable[[SystemState], bool]] = None,
) -> Iterator[ComputationPath]:
    """Every branch of the quantised evolution tree up to ``horizon``.

    ``prune(state)`` may return True to cut a subtree (e.g. a deadline has
    already been missed for the computation of interest).  Raises
    :class:`SimulationError` when the tree exceeds :data:`MAX_TREE_NODES`.
    """
    explored = 0

    def rec(
        state: SystemState, prefix: tuple[Transition, ...]
    ) -> Iterator[ComputationPath]:
        nonlocal explored
        explored += 1
        if explored > MAX_TREE_NODES:
            raise SimulationError(
                f"path enumeration exceeded {MAX_TREE_NODES} nodes"
            )
        if state.t >= horizon:
            yield ComputationPath(prefix, initial)
            return
        if prune is not None and prune(state):
            yield ComputationPath(prefix, initial)
            return
        for transition in successors(state, dt):
            yield from rec(transition.target, prefix + (transition,))

    yield from rec(initial, ())


def exists_path(
    initial: SystemState,
    horizon: Time,
    predicate: Callable[[ComputationPath], bool],
    dt: int = 1,
) -> Optional[ComputationPath]:
    """First branch satisfying ``predicate``, or None.

    The executable form of Theorem 3's "there exists a computation path
    sigma such that ...".
    """
    for path in enumerate_paths(initial, horizon, dt):
        if predicate(path):
            return path
    return None
