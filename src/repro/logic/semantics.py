"""The satisfaction relation ``M, sigma, t |= psi`` (paper Figure 1).

Clauses, as implemented:

* ``M, sigma, t |= true`` always; ``|= false`` never.
* ``M, sigma, t |= satisfy(rho(gamma, s, d))`` iff
  ``f(U Theta_expire over (max(s,t), d) along sigma, rho) = true`` —
  the resources that would otherwise expire along the path can fuel the
  action.
* ``M, sigma, t |= satisfy(rho(Gamma, s, d))`` iff breakpoints
  ``t_1 < ... < t_{m-1}`` exist such that every phase's simple
  requirement is satisfied in its subinterval — decided by the Theorem 2
  procedure against the path's expiring resources.
* ``M, sigma, t |= satisfy(rho(Lambda, s, d))`` iff every component can be
  accommodated — decided by one-at-a-time admission (the paper's own
  reduction), optionally exhaustively over admission orders.
* ``M, sigma, t |= not psi`` iff not ``M, sigma, t |= psi``.
* ``M, sigma, t |= eventually psi`` iff ``M, sigma, t' |= psi`` for some
  path time ``t' > t``.
* ``M, sigma, t |= always psi`` iff ``M, sigma, t' |= psi`` for every
  path time ``t' > t``.

Interpretation notes (the paper's Figure 1 is partly garbled in the
source; EXPERIMENTS.md records these choices):

* Temporal operators quantify over the *remaining time points of the same
  path* — the standard linear reading.  Branching (existential) readings
  are available through :func:`exists_on_some_path` /
  :func:`holds_on_all_paths`, which quantify the linear judgement over the
  evolution tree.
* "t' > t" ranges over the discrete state times of the quantised path.
"""

from __future__ import annotations

from typing import Optional

from repro.computation.requirements import (
    ComplexRequirement,
    ConcurrentRequirement,
    SimpleRequirement,
)
from repro.decision.concurrent import find_concurrent_schedule
from repro.decision.sequential import find_schedule
from repro.errors import FormulaError
from repro.intervals.interval import Interval, Time
from repro.logic.formula import (
    Always,
    And,
    Eventually,
    FalseFormula,
    Formula,
    Not,
    Or,
    Satisfy,
    TrueFormula,
)
from repro.logic.paths import ComputationPath, enumerate_paths
from repro.logic.state import SystemState
from repro.resources.resource_set import ResourceSet


def _opportunity(path: ComputationPath, t: Time, start: Time, deadline: Time) -> ResourceSet:
    """``U Theta_expire`` over ``(max(s, t), d)`` along the path."""
    lo = max(start, t)
    if lo >= deadline:
        return ResourceSet.empty()
    return path.expiring_resources(Interval(lo, deadline))


def _satisfy_simple(
    path: ComputationPath, t: Time, requirement: SimpleRequirement
) -> bool:
    if t >= requirement.deadline:
        # The window has closed; nothing with positive demand can be
        # satisfied any more.
        return requirement.demands.is_empty
    opportunity = _opportunity(path, t, requirement.start, requirement.deadline)
    effective = SimpleRequirement(
        requirement.demands,
        Interval(max(requirement.start, t), requirement.deadline),
    ) if t > requirement.start else requirement
    return effective.satisfied_by(opportunity)


def _clip(requirement: ComplexRequirement, t: Time) -> Optional[ComplexRequirement]:
    """The requirement restricted to start no earlier than ``t``; None when
    its window has closed."""
    if t <= requirement.start:
        return requirement
    if t >= requirement.deadline:
        return None
    return ComplexRequirement(
        requirement.phases,
        Interval(t, requirement.deadline),
        label=requirement.label,
    )


def _satisfy_complex(
    path: ComputationPath, t: Time, requirement: ComplexRequirement
) -> bool:
    clipped = _clip(requirement, t)
    if clipped is None:
        return False
    opportunity = _opportunity(path, t, requirement.start, requirement.deadline)
    return find_schedule(opportunity, clipped) is not None


def _satisfy_concurrent(
    path: ComputationPath,
    t: Time,
    requirement: ConcurrentRequirement,
    *,
    exhaustive: bool,
) -> bool:
    components = []
    for part in requirement.components:
        clipped = _clip(part, t)
        if clipped is None:
            return False
        components.append(clipped)
    window = Interval(max(requirement.start, t), requirement.deadline)
    if window.is_empty:
        return False
    opportunity = _opportunity(path, t, requirement.start, requirement.deadline)
    effective = ConcurrentRequirement(tuple(components), window)
    return (
        find_concurrent_schedule(opportunity, effective, exhaustive=exhaustive)
        is not None
    )


def models(
    path: ComputationPath,
    t: Time,
    formula: Formula,
    *,
    exhaustive: bool = False,
) -> bool:
    """``M, sigma, t |= psi`` (the model ``M`` is implicit in the path,
    whose states already carry ``Theta`` and ``rho``)."""
    if isinstance(formula, TrueFormula):
        return True
    if isinstance(formula, FalseFormula):
        return False
    if isinstance(formula, Satisfy):
        requirement = formula.requirement
        if isinstance(requirement, SimpleRequirement):
            return _satisfy_simple(path, t, requirement)
        if isinstance(requirement, ComplexRequirement):
            return _satisfy_complex(path, t, requirement)
        return _satisfy_concurrent(path, t, requirement, exhaustive=exhaustive)
    if isinstance(formula, Not):
        return not models(path, t, formula.operand, exhaustive=exhaustive)
    if isinstance(formula, Eventually):
        return any(
            models(path, later, formula.operand, exhaustive=exhaustive)
            for later in path.times
            if later > t
        )
    if isinstance(formula, Always):
        return all(
            models(path, later, formula.operand, exhaustive=exhaustive)
            for later in path.times
            if later > t
        )
    if isinstance(formula, And):
        return models(path, t, formula.left, exhaustive=exhaustive) and models(
            path, t, formula.right, exhaustive=exhaustive
        )
    if isinstance(formula, Or):
        return models(path, t, formula.left, exhaustive=exhaustive) or models(
            path, t, formula.right, exhaustive=exhaustive
        )
    raise FormulaError(f"unknown formula node {formula!r}")


# ----------------------------------------------------------------------
# Branching-time helpers over the evolution tree
# ----------------------------------------------------------------------

def exists_on_some_path(
    initial: SystemState,
    horizon: Time,
    formula: Formula,
    *,
    dt: int = 1,
    at: Optional[Time] = None,
) -> Optional[ComputationPath]:
    """A path from ``initial`` on which the formula holds (at time ``at``,
    default the initial state's time), or None.  The executable form of
    "a computation can *eventually* be accommodated" style claims."""
    t = initial.t if at is None else at
    for path in enumerate_paths(initial, horizon, dt):
        if models(path, t, formula):
            return path
    return None


def holds_on_all_paths(
    initial: SystemState,
    horizon: Time,
    formula: Formula,
    *,
    dt: int = 1,
    at: Optional[Time] = None,
) -> bool:
    """Whether the formula holds on every branch of the evolution tree —
    "a computation can *always* be accommodated"."""
    t = initial.t if at is None else at
    return all(
        models(path, t, formula) for path in enumerate_paths(initial, horizon, dt)
    )
