"""ROTA system states ``S = (Theta, rho, t)`` (paper Section V-A).

``Theta`` is the set of resource terms describing *future* availability
starting from ``t``; ``rho`` is the resource requirements of the
computations the system has accommodated; ``t`` is the current time.

``rho`` is represented as a tuple of :class:`ActorProgress` records — one
per accommodated actor computation — each tracking which phase the actor
has reached and how much of that phase's demand remains.  This is the
state the labeled transition rules decrement: the paper's
``[q - r x dt]^{(t, t')}_xi``.

States are immutable value objects, hashable so path enumeration can
memoise visited configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Optional

from repro.computation.demands import Demands
from repro.computation.requirements import ComplexRequirement
from repro.errors import TransitionError
from repro.intervals.interval import Time
from repro.resources.resource_set import ResourceSet


@dataclass(frozen=True)
class ActorProgress:
    """One accommodated actor computation and its execution progress."""

    requirement: ComplexRequirement
    phase: int = 0
    remaining: Optional[Demands] = None  # None means "phase's full demand"

    def __post_init__(self) -> None:
        if not 0 <= self.phase <= len(self.requirement.phases):
            raise TransitionError(
                f"phase index {self.phase} out of range for "
                f"{self.requirement!r}"
            )
        if self.remaining is None and not self.is_complete:
            object.__setattr__(
                self, "remaining", self.requirement.phases[self.phase]
            )
        if self.remaining is None and self.is_complete:
            object.__setattr__(self, "remaining", Demands())

    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        return self.requirement.label

    @property
    def is_complete(self) -> bool:
        """All phases' demands have been consumed."""
        return self.phase >= len(self.requirement.phases)

    @property
    def current_demands(self) -> Demands:
        """What the actor's *possible action* currently needs (Definition
        1: only the head of the sequence is eligible)."""
        if self.is_complete:
            return Demands()
        return self.remaining  # type: ignore[return-value]

    @property
    def start(self) -> Time:
        return self.requirement.start

    @property
    def deadline(self) -> Time:
        return self.requirement.deadline

    def active_at(self, t: Time) -> bool:
        """Whether the actor may consume resources at time ``t``."""
        return (not self.is_complete) and self.start <= t < self.deadline

    # ------------------------------------------------------------------
    def after_consuming(self, consumed: Demands) -> "ActorProgress":
        """Progress after consuming ``consumed`` towards the current phase.

        Consumption beyond the phase's remaining demand is a modelling
        error (the transition rules only hand an actor what its current
        simple requirement asks for).
        """
        if self.is_complete:
            if consumed.is_empty:
                return self
            raise TransitionError(
                f"completed computation {self.label!r} cannot consume"
            )
        remaining: Demands = self.remaining  # type: ignore[assignment]
        for ltype, amount in consumed.items():
            if amount > remaining.get(ltype, 0):
                raise TransitionError(
                    f"{self.label!r} consumed {amount} of {ltype} but its "
                    f"current phase only needs {remaining.get(ltype, 0)}"
                )
        left = remaining.saturating_sub(consumed)
        # Snap float dust: residual demand below tolerance counts as
        # satisfied, or a 1e-14 remainder would hold a phase open a whole
        # extra slice.  The tolerance applies only once a float has
        # entered the computation — an exact int/Fraction residue, however
        # small, is genuinely outstanding demand and must keep the phase
        # open (Demands drops exact zeros on construction).
        from repro.resources.profile import EPSILON, is_exact

        dusty = [
            lt
            for lt, q in left.items()
            if not is_exact(q) and float(q) < EPSILON
        ]
        if dusty:
            left = Demands({lt: q for lt, q in left.items() if lt not in dusty})
        progress = ActorProgress(self.requirement, self.phase, left)
        return progress.normalised()

    def normalised(self) -> "ActorProgress":
        """Advance past phases whose demand has reached zero."""
        progress = self
        while (
            not progress.is_complete
            and progress.current_demands.is_empty
        ):
            next_phase = progress.phase + 1
            remaining = (
                progress.requirement.phases[next_phase]
                if next_phase < len(progress.requirement.phases)
                else Demands()
            )
            progress = ActorProgress(progress.requirement, next_phase, remaining)
        return progress

    def __repr__(self) -> str:
        if self.is_complete:
            return f"ActorProgress({self.label!r}: complete)"
        return (
            f"ActorProgress({self.label!r}: phase {self.phase + 1}/"
            f"{len(self.requirement.phases)}, remaining {self.remaining!r})"
        )


@dataclass(frozen=True)
class SystemState:
    """``S = (Theta, rho, t)``."""

    theta: ResourceSet
    rho: tuple[ActorProgress, ...]
    t: Time

    def __post_init__(self) -> None:
        object.__setattr__(self, "rho", tuple(self.rho))

    # ------------------------------------------------------------------
    @property
    def is_quiescent(self) -> bool:
        """No accommodated computation has outstanding demand."""
        return all(progress.is_complete for progress in self.rho)

    @property
    def pending(self) -> tuple[ActorProgress, ...]:
        """Accommodated computations with outstanding demand."""
        return tuple(p for p in self.rho if not p.is_complete)

    @property
    def missed(self) -> tuple[ActorProgress, ...]:
        """Computations whose deadline has passed with demand outstanding."""
        return tuple(
            p for p in self.rho if not p.is_complete and self.t >= p.deadline
        )

    def progress_of(self, label: str) -> ActorProgress:
        for progress in self.rho:
            if progress.label == label:
                return progress
        raise KeyError(f"no accommodated computation labelled {label!r}")

    def replace_progress(
        self, updated: tuple[ActorProgress, ...]
    ) -> "SystemState":
        return replace(self, rho=updated)

    def __iter__(self) -> Iterator[ActorProgress]:
        return iter(self.rho)

    def __repr__(self) -> str:
        return (
            f"SystemState(t={self.t}, {len(self.rho)} computations, "
            f"{len(self.theta.located_types)} resource types)"
        )


def initial_state(theta: ResourceSet, t: Time = 0) -> SystemState:
    """``S_0 = (Theta, 0, t)`` — resources but nothing to use them yet."""
    return SystemState(theta, (), t)
