"""Well-formed formulas of ROTA (paper Section V-B).

The grammar::

    psi ::= true | false
          | satisfy(rho(gamma, s, d))      -- simple requirement
          | satisfy(rho(Gamma, s, d))      -- complex requirement
          | satisfy(rho(Lambda, s, d))     -- concurrent requirement
          | not psi | eventually psi | always psi

Formulas are a plain immutable AST; evaluation lives in
:mod:`repro.logic.semantics`.  ``And``/``Or``/``Implies`` are provided as
*derived* conveniences (the paper's grammar stops at negation and the two
temporal operators; the extension is conservative and clearly flagged).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.computation.requirements import (
    ComplexRequirement,
    ConcurrentRequirement,
    SimpleRequirement,
)
from repro.errors import FormulaError

Requirement = Union[SimpleRequirement, ComplexRequirement, ConcurrentRequirement]


class Formula:
    """Base class for ROTA well-formed formulas."""

    __slots__ = ()

    # Operator sugar -----------------------------------------------------
    def __invert__(self) -> "Not":
        return Not(self)

    def __and__(self, other: "Formula") -> "And":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Or":
        return Or(self, other)

    def implies(self, other: "Formula") -> "Or":
        return Or(Not(self), other)


@dataclass(frozen=True)
class TrueFormula(Formula):
    """``true`` — satisfied everywhere."""

    __slots__ = ()

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseFormula(Formula):
    """``false`` — satisfied nowhere."""

    __slots__ = ()

    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class Satisfy(Formula):
    """``satisfy(rho(..., s, d))`` — the expiring resources along the
    current path can accommodate the requirement."""

    requirement: Requirement

    __slots__ = ("requirement",)

    def __post_init__(self) -> None:
        if not isinstance(
            self.requirement,
            (SimpleRequirement, ComplexRequirement, ConcurrentRequirement),
        ):
            raise FormulaError(
                f"satisfy() takes a requirement, got {self.requirement!r}"
            )

    def __str__(self) -> str:
        return f"satisfy({self.requirement!r})"


@dataclass(frozen=True)
class Not(Formula):
    """``not psi``."""

    operand: Formula

    __slots__ = ("operand",)

    def __str__(self) -> str:
        return f"(not {self.operand})"


@dataclass(frozen=True)
class Eventually(Formula):
    """``<> psi`` — at some later time on the path."""

    operand: Formula

    __slots__ = ("operand",)

    def __str__(self) -> str:
        return f"(eventually {self.operand})"


@dataclass(frozen=True)
class Always(Formula):
    """``[] psi`` — at every later time on the path."""

    operand: Formula

    __slots__ = ("operand",)

    def __str__(self) -> str:
        return f"(always {self.operand})"


@dataclass(frozen=True)
class And(Formula):
    """Derived conjunction (extension beyond the paper's minimal grammar)."""

    left: Formula
    right: Formula

    __slots__ = ("left", "right")

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@dataclass(frozen=True)
class Or(Formula):
    """Derived disjunction (extension beyond the paper's minimal grammar)."""

    left: Formula
    right: Formula

    __slots__ = ("left", "right")

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


#: Singletons for the atomic constants.
TRUE = TrueFormula()
FALSE = FalseFormula()


def satisfy(requirement: Requirement) -> Satisfy:
    """Factory matching the paper's ``satisfy`` atom."""
    return Satisfy(requirement)


def eventually(operand: Formula) -> Eventually:
    return Eventually(operand)


def always(operand: Formula) -> Always:
    return Always(operand)
