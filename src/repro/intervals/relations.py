"""Allen's interval relations (paper Table I).

The paper adopts Interval Algebra [Allen 1983] to formalise relations
between the time intervals attached to resource terms.  Table I of the
paper lists seven base relations — before, equal, during, meets, overlaps,
starts, finishes — "or thirteen if we count the inverse relations".  This
module implements the full set of thirteen, a total function
:func:`relate` assigning the unique relation holding between two non-empty
intervals, and the converse (inverse) operation.

Relations are defined on the endpoint order, so they are identical for the
open/closed/half-open reading of an interval as long as ``start < end``.
"""

from __future__ import annotations

import enum
from typing import Dict

from repro.errors import InvalidIntervalError
from repro.intervals.interval import Interval


class Relation(enum.Enum):
    """The thirteen Allen relations.

    Member values are the conventional short names used in the interval
    algebra literature; ``symbol`` carries the paper's Table I notation
    where one exists.
    """

    BEFORE = "b"          # tau1 < tau2
    AFTER = "bi"          # tau1 > tau2        (inverse of BEFORE)
    MEETS = "m"           # tau1 meets tau2
    MET_BY = "mi"         # inverse of MEETS
    OVERLAPS = "o"        # tau1 overlaps tau2
    OVERLAPPED_BY = "oi"  # inverse of OVERLAPS
    STARTS = "s"          # tau1 starts tau2
    STARTED_BY = "si"     # inverse of STARTS
    DURING = "d"          # tau1 during tau2
    CONTAINS = "di"       # inverse of DURING
    FINISHES = "f"        # tau1 finishes tau2
    FINISHED_BY = "fi"    # inverse of FINISHES
    EQUALS = "eq"         # tau1 equals tau2

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation.{self.name}"


#: All thirteen relations, in a stable canonical order.
ALL_RELATIONS: tuple[Relation, ...] = (
    Relation.BEFORE,
    Relation.AFTER,
    Relation.MEETS,
    Relation.MET_BY,
    Relation.OVERLAPS,
    Relation.OVERLAPPED_BY,
    Relation.STARTS,
    Relation.STARTED_BY,
    Relation.DURING,
    Relation.CONTAINS,
    Relation.FINISHES,
    Relation.FINISHED_BY,
    Relation.EQUALS,
)

#: The paper's Table I lists these seven; the remaining six are inverses.
BASE_RELATIONS: tuple[Relation, ...] = (
    Relation.BEFORE,
    Relation.EQUALS,
    Relation.DURING,
    Relation.MEETS,
    Relation.OVERLAPS,
    Relation.STARTS,
    Relation.FINISHES,
)

_CONVERSE: Dict[Relation, Relation] = {
    Relation.BEFORE: Relation.AFTER,
    Relation.AFTER: Relation.BEFORE,
    Relation.MEETS: Relation.MET_BY,
    Relation.MET_BY: Relation.MEETS,
    Relation.OVERLAPS: Relation.OVERLAPPED_BY,
    Relation.OVERLAPPED_BY: Relation.OVERLAPS,
    Relation.STARTS: Relation.STARTED_BY,
    Relation.STARTED_BY: Relation.STARTS,
    Relation.DURING: Relation.CONTAINS,
    Relation.CONTAINS: Relation.DURING,
    Relation.FINISHES: Relation.FINISHED_BY,
    Relation.FINISHED_BY: Relation.FINISHES,
    Relation.EQUALS: Relation.EQUALS,
}

#: Human-readable interpretation, mirroring Table I's wording.
INTERPRETATION: Dict[Relation, str] = {
    Relation.BEFORE: "tau1 before tau2",
    Relation.AFTER: "tau1 after tau2",
    Relation.EQUALS: "tau1 equals tau2",
    Relation.DURING: "tau1 during tau2",
    Relation.CONTAINS: "tau1 contains tau2",
    Relation.MEETS: "tau1 meets tau2",
    Relation.MET_BY: "tau1 met by tau2",
    Relation.OVERLAPS: "tau1 overlaps tau2",
    Relation.OVERLAPPED_BY: "tau1 overlapped by tau2",
    Relation.STARTS: "tau1 starts tau2",
    Relation.STARTED_BY: "tau1 started by tau2",
    Relation.FINISHES: "tau1 finishes tau2",
    Relation.FINISHED_BY: "tau1 finished by tau2",
}


def converse(relation: Relation) -> Relation:
    """The inverse relation: if ``r`` holds for (i, j), ``converse(r)``
    holds for (j, i)."""
    return _CONVERSE[relation]


def is_inverse_pair(a: Relation, b: Relation) -> bool:
    """Whether ``a`` and ``b`` are converses of each other."""
    return _CONVERSE[a] is b


def relate(i: Interval, j: Interval) -> Relation:
    """The unique Allen relation holding between two non-empty intervals.

    Raises :class:`InvalidIntervalError` for empty intervals, for which no
    Allen relation is defined (the paper only defines resources over
    non-empty intervals).
    """
    if i.is_empty or j.is_empty:
        raise InvalidIntervalError(
            "Allen relations are defined only for non-empty intervals"
        )
    if i.end < j.start:
        return Relation.BEFORE
    if j.end < i.start:
        return Relation.AFTER
    if i.end == j.start:
        return Relation.MEETS
    if j.end == i.start:
        return Relation.MET_BY
    if i.start == j.start and i.end == j.end:
        return Relation.EQUALS
    if i.start == j.start:
        return Relation.STARTS if i.end < j.end else Relation.STARTED_BY
    if i.end == j.end:
        return Relation.FINISHES if i.start > j.start else Relation.FINISHED_BY
    if j.start < i.start and i.end < j.end:
        return Relation.DURING
    if i.start < j.start and j.end < i.end:
        return Relation.CONTAINS
    if i.start < j.start:
        return Relation.OVERLAPS
    return Relation.OVERLAPPED_BY


def holds(relation: Relation, i: Interval, j: Interval) -> bool:
    """Whether the given relation holds between ``i`` and ``j``."""
    return relate(i, j) is relation
