"""Time intervals.

The paper (Section III) associates every resource term with a time interval
``tau = (t_start, t_end)``.  We model an interval as a half-open segment
``[start, end)`` of the real time line.  The half-open convention makes the
resource algebra clean: two terms whose intervals *meet* (``t1.end ==
t2.start``) cover the union without double counting, exactly matching the
paper's observation that terms with identical rates and meeting intervals
can be merged.

Endpoints are plain numbers (``int``, ``float`` or ``fractions.Fraction``);
the arithmetic never mixes representations on its own, so exact types stay
exact.  ``math.inf`` is allowed as an end point for open-ended availability.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from numbers import Real
from typing import Iterable, Iterator, Optional

from repro.errors import InvalidIntervalError

#: Type alias for time values accepted throughout the library.
Time = Real


def _check_time(value: object, what: str) -> None:
    if not isinstance(value, Real):
        raise InvalidIntervalError(f"{what} must be a real number, got {value!r}")
    if isinstance(value, float) and math.isnan(value):
        raise InvalidIntervalError(f"{what} must not be NaN")


@dataclass(frozen=True, order=False)
class Interval:
    """A half-open time interval ``[start, end)``.

    ``start <= end`` is required; ``start == end`` denotes the *empty*
    interval (the paper: a resource term over an empty interval is null).
    Instances are immutable and hashable, so they can be used as dictionary
    keys and inside sets.
    """

    start: Time
    end: Time

    def __post_init__(self) -> None:
        _check_time(self.start, "interval start")
        _check_time(self.end, "interval end")
        if self.start > self.end:
            raise InvalidIntervalError(
                f"interval start {self.start!r} must not exceed end {self.end!r}"
            )
        if math.isinf(self.start) and self.start > 0:
            raise InvalidIntervalError("interval cannot start at +infinity")

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """True when the interval contains no time points."""
        return self.start == self.end

    @property
    def duration(self) -> Time:
        """Length of the interval (may be ``math.inf``)."""
        return self.end - self.start

    def contains_point(self, t: Time) -> bool:
        """Whether time point ``t`` lies inside ``[start, end)``."""
        return self.start <= t < self.end

    def contains(self, other: "Interval") -> bool:
        """Whether ``other`` is a subset of this interval.

        The empty interval is a subset of everything.
        """
        if other.is_empty:
            return True
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two intervals share at least one time point."""
        if self.is_empty or other.is_empty:
            return False
        return self.start < other.end and other.start < self.end

    def meets(self, other: "Interval") -> bool:
        """Whether ``other`` starts exactly when this interval ends."""
        if self.is_empty or other.is_empty:
            return False
        return self.end == other.start

    # ------------------------------------------------------------------
    # Set-like operations
    # ------------------------------------------------------------------
    def intersection(self, other: "Interval") -> "Interval":
        """The common sub-interval (possibly empty)."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if start >= end:
            # Normalise all empty results to a canonical point interval so
            # equality of "no time" values is predictable.
            return Interval(start, start) if start == end else EMPTY
        return Interval(start, end)

    def union_pieces(self, other: "Interval") -> tuple["Interval", ...]:
        """Union as a tuple of disjoint intervals (one piece if they touch)."""
        if self.is_empty:
            return (other,) if not other.is_empty else ()
        if other.is_empty:
            return (self,)
        if self.overlaps(other) or self.meets(other) or other.meets(self):
            return (Interval(min(self.start, other.start), max(self.end, other.end)),)
        first, second = sorted((self, other), key=lambda i: (i.start, i.end))
        return (first, second)

    def difference(self, other: "Interval") -> tuple["Interval", ...]:
        """Relative complement ``self \\ other`` as disjoint pieces."""
        if self.is_empty:
            return ()
        if other.is_empty or not self.overlaps(other):
            return (self,)
        pieces: list[Interval] = []
        if self.start < other.start:
            pieces.append(Interval(self.start, other.start))
        if other.end < self.end:
            pieces.append(Interval(other.end, self.end))
        return tuple(pieces)

    def shift(self, delta: Time) -> "Interval":
        """The interval translated by ``delta``."""
        return Interval(self.start + delta, self.end + delta)

    def clamp(self, lo: Time, hi: Time) -> "Interval":
        """Intersection with ``[lo, hi)`` expressed via plain bounds."""
        return self.intersection(Interval(lo, hi))

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.start}, {self.end})"

    def __repr__(self) -> str:
        return f"Interval({self.start!r}, {self.end!r})"

    def __bool__(self) -> bool:
        return not self.is_empty

    def __iter__(self) -> Iterator[Time]:
        """Unpacking support: ``start, end = interval``."""
        yield self.start
        yield self.end


#: Canonical empty interval.
EMPTY = Interval(0, 0)


def interval(start: Time, end: Time) -> Interval:
    """Convenience factory mirroring the paper's ``(t_start, t_end)``."""
    return Interval(start, end)


def span(intervals: Iterable[Interval]) -> Optional[Interval]:
    """Smallest interval containing every non-empty input, or ``None``."""
    lo: Optional[Time] = None
    hi: Optional[Time] = None
    for item in intervals:
        if item.is_empty:
            continue
        lo = item.start if lo is None else min(lo, item.start)
        hi = item.end if hi is None else max(hi, item.end)
    if lo is None or hi is None:
        return None
    return Interval(lo, hi)


def total_duration(intervals: Iterable[Interval]) -> Time:
    """Sum of durations of the given intervals (they need not be disjoint;
    callers wanting a measure of the union should canonicalise through
    :class:`repro.intervals.intervalset.IntervalSet` first)."""
    total: Time = 0
    for item in intervals:
        total += item.duration
    return total
