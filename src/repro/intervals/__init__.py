"""Interval Algebra substrate (paper Section III, Table I).

Time intervals, Allen's thirteen relations, relation composition and
qualitative constraint networks, and canonical disjoint interval sets.
"""

from repro.intervals.interval import (
    EMPTY,
    Interval,
    Time,
    interval,
    span,
    total_duration,
)
from repro.intervals.intervalset import IntervalSet, coalesce
from repro.intervals.relations import (
    ALL_RELATIONS,
    BASE_RELATIONS,
    INTERPRETATION,
    Relation,
    converse,
    holds,
    is_inverse_pair,
    relate,
)
from repro.intervals.algebra import (
    FULL,
    NONE,
    IntervalNetwork,
    RelationSet,
    compose,
    compose_sets,
    composition_table,
    converse_set,
)
from repro.intervals.solver import (
    is_consistent,
    realise,
    solve,
    solve_and_realise,
)

__all__ = [
    "EMPTY",
    "Interval",
    "Time",
    "interval",
    "span",
    "total_duration",
    "IntervalSet",
    "coalesce",
    "ALL_RELATIONS",
    "BASE_RELATIONS",
    "INTERPRETATION",
    "Relation",
    "converse",
    "holds",
    "is_inverse_pair",
    "relate",
    "FULL",
    "NONE",
    "IntervalNetwork",
    "RelationSet",
    "compose",
    "compose_sets",
    "composition_table",
    "converse_set",
    "is_consistent",
    "realise",
    "solve",
    "solve_and_realise",
]
