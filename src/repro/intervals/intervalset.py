"""Canonical sets of disjoint intervals.

The paper applies set operations — union, intersection, relative
complement — to time intervals.  A single operation on two intervals can
produce several disjoint pieces, so the natural closed domain is a *set of
disjoint intervals*.  :class:`IntervalSet` maintains the canonical form
(sorted, pairwise disjoint, non-adjacent, non-empty), under which equality
of interval sets is plain structural equality.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, Sequence

from repro.intervals.interval import Interval, Time


def _canonicalise(intervals: Iterable[Interval]) -> tuple[Interval, ...]:
    items = sorted(
        (i for i in intervals if not i.is_empty), key=lambda i: (i.start, i.end)
    )
    merged: list[Interval] = []
    for item in items:
        if merged and item.start <= merged[-1].end:
            last = merged[-1]
            if item.end > last.end:
                merged[-1] = Interval(last.start, item.end)
        else:
            merged.append(item)
    return tuple(merged)


class IntervalSet:
    """An immutable union of disjoint half-open intervals.

    Supports the boolean algebra the paper needs for resource-set
    manipulation: ``|`` (union), ``&`` (intersection), ``-`` (relative
    complement), plus measure and membership queries.
    """

    __slots__ = ("_pieces",)

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._pieces: tuple[Interval, ...] = _canonicalise(intervals)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def point_span(cls, start: Time, end: Time) -> "IntervalSet":
        """A set holding the single interval ``[start, end)``."""
        return cls((Interval(start, end),))

    @classmethod
    def empty(cls) -> "IntervalSet":
        return _EMPTY_SET

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def pieces(self) -> tuple[Interval, ...]:
        """The canonical disjoint pieces, sorted by start."""
        return self._pieces

    @property
    def is_empty(self) -> bool:
        return not self._pieces

    @property
    def measure(self) -> Time:
        """Total length of the set."""
        total: Time = 0
        for piece in self._pieces:
            total += piece.duration
        return total

    @property
    def span(self) -> Interval:
        """Smallest single interval covering the set (empty when empty)."""
        if not self._pieces:
            return Interval(0, 0)
        return Interval(self._pieces[0].start, self._pieces[-1].end)

    def contains_point(self, t: Time) -> bool:
        idx = bisect.bisect_right([p.start for p in self._pieces], t) - 1
        return idx >= 0 and self._pieces[idx].contains_point(t)

    def contains(self, other: "IntervalSet") -> bool:
        """Whether ``other`` is a subset of this set."""
        return (other - self).is_empty

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def union(self, other: "IntervalSet") -> "IntervalSet":
        return IntervalSet(self._pieces + other._pieces)

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        out: list[Interval] = []
        a, b = self._pieces, other._pieces
        i = j = 0
        while i < len(a) and j < len(b):
            common = a[i].intersection(b[j])
            if not common.is_empty:
                out.append(common)
            if a[i].end <= b[j].end:
                i += 1
            else:
                j += 1
        return IntervalSet(out)

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        out: list[Interval] = []
        for piece in self._pieces:
            remainder: list[Interval] = [piece]
            for cut in other._pieces:
                if cut.start >= piece.end:
                    break
                next_remainder: list[Interval] = []
                for part in remainder:
                    next_remainder.extend(part.difference(cut))
                remainder = next_remainder
                if not remainder:
                    break
            out.extend(remainder)
        return IntervalSet(out)

    def complement_within(self, window: Interval) -> "IntervalSet":
        """The part of ``window`` not covered by this set."""
        return IntervalSet((window,)).difference(self)

    def clamp(self, window: Interval) -> "IntervalSet":
        """Intersection with a single window interval."""
        return self.intersection(IntervalSet((window,)))

    # Operator sugar -----------------------------------------------------
    def __or__(self, other: "IntervalSet") -> "IntervalSet":
        return self.union(other)

    def __and__(self, other: "IntervalSet") -> "IntervalSet":
        return self.intersection(other)

    def __sub__(self, other: "IntervalSet") -> "IntervalSet":
        return self.difference(other)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._pieces == other._pieces

    def __hash__(self) -> int:
        return hash(self._pieces)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._pieces)

    def __len__(self) -> int:
        return len(self._pieces)

    def __bool__(self) -> bool:
        return bool(self._pieces)

    def __repr__(self) -> str:
        inner = ", ".join(str(piece) for piece in self._pieces)
        return f"IntervalSet([{inner}])"


_EMPTY_SET = IntervalSet()


def coalesce(intervals: Sequence[Interval]) -> tuple[Interval, ...]:
    """Public helper exposing canonicalisation for raw interval sequences."""
    return _canonicalise(intervals)
