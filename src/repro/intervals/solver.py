"""Complete consistency solving for interval-algebra networks.

Path consistency (:meth:`IntervalNetwork.propagate`) is sound but not
complete for the full Allen algebra: some path-consistent networks have
no solution.  This module adds the classic complete decision procedure —
backtracking search over basic-relation labellings with path-consistency
forward checking [Allen 1983; van Beek 1992] — plus a *model builder*
that converts a consistent labelling into concrete integer intervals.

ROTA uses networks over *concrete* windows (always consistent), but the
solver makes the substrate stand alone: qualitative requirement-ordering
constraints ("phase A's window must precede B's, B during C, ...") can be
checked for realisability and instantiated before any quantitative
reasoning is attempted.
"""

from __future__ import annotations

import copy
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import InvalidIntervalError
from repro.intervals.algebra import IntervalNetwork, RelationSet
from repro.intervals.interval import Interval
from repro.intervals.relations import Relation, relate

#: Search budget: networks explored beyond this raise.
MAX_SEARCH_NODES = 200_000


def _clone(network: IntervalNetwork) -> IntervalNetwork:
    return copy.deepcopy(network)


def _smallest_open_edge(
    network: IntervalNetwork,
) -> Optional[Tuple[object, object, RelationSet]]:
    """The non-singleton edge with fewest remaining relations (fail-first)."""
    best: Optional[Tuple[object, object, RelationSet]] = None
    nodes = network.nodes
    for i, a in enumerate(nodes):
        for b in nodes[i + 1:]:
            edge = network.relation(a, b)
            if len(edge) <= 1:
                continue
            if best is None or len(edge) < len(best[2]):
                best = (a, b, edge)
    return best


def solve(network: IntervalNetwork) -> Optional[Dict[Tuple[object, object], Relation]]:
    """A consistent basic labelling of every edge, or None.

    The input network is not mutated.  Complexity is exponential in the
    worst case (the problem is NP-complete); the fail-first ordering and
    path-consistency pruning keep typical requirement-ordering networks
    tiny.
    """
    budget = [0]

    def backtrack(current: IntervalNetwork) -> Optional[IntervalNetwork]:
        budget[0] += 1
        if budget[0] > MAX_SEARCH_NODES:
            raise InvalidIntervalError(
                f"IA search exceeded {MAX_SEARCH_NODES} nodes"
            )
        if not current.propagate():
            return None
        choice = _smallest_open_edge(current)
        if choice is None:
            return current
        a, b, edge = choice
        for relation in sorted(edge, key=lambda r: r.value):
            candidate = _clone(current)
            candidate.constrain(a, b, {relation})
            solved = backtrack(candidate)
            if solved is not None:
                return solved
        return None

    solved = backtrack(_clone(network))
    if solved is None:
        return None
    labelling: Dict[Tuple[object, object], Relation] = {}
    nodes = solved.nodes
    for i, a in enumerate(nodes):
        for b in nodes[i + 1:]:
            edge = solved.relation(a, b)
            labelling[(a, b)] = next(iter(edge))
    return labelling


def is_consistent(network: IntervalNetwork) -> bool:
    """Complete consistency: some concrete interval assignment satisfies
    every constraint."""
    return solve(network) is not None


# ----------------------------------------------------------------------
# Model building
# ----------------------------------------------------------------------

_ENDPOINT_ORDER: Mapping[Relation, tuple[str, ...]] = {
    # For each basic relation of (a, b): constraints between the four
    # endpoints expressed as "x<y" / "x=y" atoms over as, ae, bs, be.
    Relation.BEFORE: ("as<ae", "ae<bs", "bs<be"),
    Relation.AFTER: ("bs<be", "be<as", "as<ae"),
    Relation.MEETS: ("as<ae", "ae=bs", "bs<be"),
    Relation.MET_BY: ("bs<be", "be=as", "as<ae"),
    Relation.OVERLAPS: ("as<bs", "bs<ae", "ae<be"),
    Relation.OVERLAPPED_BY: ("bs<as", "as<be", "be<ae"),
    Relation.STARTS: ("as=bs", "ae<be"),
    Relation.STARTED_BY: ("as=bs", "be<ae"),
    Relation.DURING: ("bs<as", "ae<be"),
    Relation.CONTAINS: ("as<bs", "be<ae"),
    Relation.FINISHES: ("bs<as", "ae=be"),
    Relation.FINISHED_BY: ("as<bs", "ae=be"),
    Relation.EQUALS: ("as=bs", "ae=be"),
}


def realise(
    labelling: Mapping[Tuple[object, object], Relation],
) -> Dict[object, Interval]:
    """Concrete integer intervals witnessing a basic labelling.

    Builds the endpoint order implied by the labelling (union-find for
    equalities, topological ranking for the strict order) and assigns
    integer coordinates.  Raises when the labelling is cyclic — which a
    labelling returned by :func:`solve` never is.
    """
    nodes = sorted(
        {a for a, _ in labelling} | {b for _, b in labelling}, key=str
    )
    if not nodes:
        return {}
    points = [(n, "s") for n in nodes] + [(n, "e") for n in nodes]

    parent: Dict[tuple, tuple] = {p: p for p in points}

    def find(p):
        while parent[p] != p:
            parent[p] = parent[parent[p]]
            p = parent[p]
        return p

    def union(p, q):
        parent[find(p)] = find(q)

    strict: list[tuple] = []  # (lesser, greater) pairs, resolved later

    def atoms_for(a, b, relation):
        mapping = {"as": (a, "s"), "ae": (a, "e"), "bs": (b, "s"), "be": (b, "e")}
        for atom in _ENDPOINT_ORDER[relation]:
            if "=" in atom:
                x, y = atom.split("=")
                union(mapping[x], mapping[y])
            else:
                x, y = atom.split("<")
                strict.append((mapping[x], mapping[y]))

    for node in nodes:
        strict.append(((node, "s"), (node, "e")))
    for (a, b), relation in labelling.items():
        atoms_for(a, b, relation)

    # Topological ranking over the union-find representatives.
    successors: Dict[tuple, set] = {}
    indegree: Dict[tuple, int] = {}
    representatives = {find(p) for p in points}
    for rep in representatives:
        successors.setdefault(rep, set())
        indegree.setdefault(rep, 0)
    for lesser, greater in strict:
        lo, hi = find(lesser), find(greater)
        if lo == hi:
            raise InvalidIntervalError(
                "labelling forces a point to precede itself"
            )
        if hi not in successors[lo]:
            successors[lo].add(hi)
            indegree[hi] += 1

    rank: Dict[tuple, int] = {}
    frontier = sorted(
        (rep for rep in representatives if indegree[rep] == 0), key=str
    )
    level = 0
    while frontier:
        next_frontier: list = []
        for rep in frontier:
            rank[rep] = level
            for successor in successors[rep]:
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    next_frontier.append(successor)
        frontier = sorted(set(next_frontier), key=str)
        level += 1
    if len(rank) != len(representatives):
        raise InvalidIntervalError("cyclic endpoint order in labelling")

    return {
        node: Interval(rank[find((node, "s"))], rank[find((node, "e"))])
        for node in nodes
    }


def solve_and_realise(
    network: IntervalNetwork,
) -> Optional[Dict[object, Interval]]:
    """Concrete intervals satisfying the network, or None.

    The returned witness is verified against the network before being
    handed back (defence in depth for the solver itself).
    """
    labelling = solve(network)
    if labelling is None:
        return None
    witness = realise(labelling)
    for (a, b), relation in labelling.items():
        observed = relate(witness[a], witness[b])
        if observed is not relation:  # pragma: no cover - solver bug guard
            raise InvalidIntervalError(
                f"witness violates {a}-{b}: wanted {relation}, got {observed}"
            )
    return witness
