"""Allen Interval Algebra: composition, constraint networks, consistency.

The paper leans on Interval Algebra [4] for reasoning about the time
intervals of resource terms.  Beyond the thirteen base relations
(:mod:`repro.intervals.relations`), the algebra provides *composition*
(given ``r1`` between i and j, and ``r2`` between j and k, which relations
may hold between i and k?) and the classic path-consistency propagation
over qualitative constraint networks.  These enable reasoning about the
relative order of resource availability windows and requirement windows
without concrete time stamps.

The 13x13 composition table is *derived by exhaustive enumeration* over a
small integer endpoint grid rather than transcribed by hand.  Because every
consistent triple of interval relations is witnessed by a configuration of
six endpoints, and any such configuration can be relabelled onto at most
six distinct values, a grid of six values is complete; we use eight for
margin.  The derivation runs once per process and is cached.
"""

from __future__ import annotations

import itertools
from functools import lru_cache
from typing import Dict, FrozenSet, Iterable, Mapping, MutableMapping, Tuple

from repro.errors import InvalidIntervalError
from repro.intervals.interval import Interval
from repro.intervals.relations import ALL_RELATIONS, Relation, converse, relate

#: A disjunctive relation between two intervals: the set of base relations
#: that may hold.  The full set means "no information".
RelationSet = FrozenSet[Relation]

#: The vacuous constraint.
FULL: RelationSet = frozenset(ALL_RELATIONS)

#: The inconsistent constraint.
NONE: RelationSet = frozenset()

_GRID_SIZE = 8


def _grid_intervals() -> list[Interval]:
    return [
        Interval(a, b)
        for a in range(_GRID_SIZE)
        for b in range(a + 1, _GRID_SIZE + 1)
    ]


@lru_cache(maxsize=1)
def composition_table() -> Dict[Tuple[Relation, Relation], RelationSet]:
    """The full 13x13 Allen composition table.

    ``composition_table()[(r1, r2)]`` is the set of relations that can hold
    between intervals i and k given ``relate(i, j) is r1`` and
    ``relate(j, k) is r2`` for some witness j.
    """
    table: Dict[Tuple[Relation, Relation], set[Relation]] = {
        (r1, r2): set() for r1 in ALL_RELATIONS for r2 in ALL_RELATIONS
    }
    grid = _grid_intervals()
    for i, j, k in itertools.product(grid, repeat=3):
        table[(relate(i, j), relate(j, k))].add(relate(i, k))
    return {key: frozenset(value) for key, value in table.items()}


def compose(r1: Relation, r2: Relation) -> RelationSet:
    """Compose two base relations (see :func:`composition_table`)."""
    return composition_table()[(r1, r2)]


def compose_sets(s1: Iterable[Relation], s2: Iterable[Relation]) -> RelationSet:
    """Compose two disjunctive relations: union of pairwise compositions."""
    table = composition_table()
    out: set[Relation] = set()
    for r1 in s1:
        for r2 in s2:
            out |= table[(r1, r2)]
    return frozenset(out)


def converse_set(relations: Iterable[Relation]) -> RelationSet:
    """Converse of a disjunctive relation."""
    return frozenset(converse(r) for r in relations)


class IntervalNetwork:
    """A qualitative constraint network over named intervals.

    Nodes are arbitrary hashable labels (e.g. resource-term identifiers or
    requirement-phase names); edges carry disjunctive Allen relations.
    Unspecified edges default to :data:`FULL` (no information).

    The network answers two questions relevant to ROTA reasoning:

    * :meth:`propagate` — Allen's path-consistency algorithm, tightening
      every edge through composition; detects many inconsistencies.
    * :meth:`is_path_consistent` — whether propagation leaves every edge
      non-empty.  (Path consistency is necessary but not sufficient for
      global consistency in the full algebra; for the pointisable fragment
      produced by concrete resource windows it is exact.)
    """

    def __init__(self) -> None:
        self._nodes: list[object] = []
        self._index: Dict[object, int] = {}
        self._edges: MutableMapping[Tuple[int, int], RelationSet] = {}
        #: Set when a constraint on (x, x) excludes EQUALS — immediately
        #: unsatisfiable regardless of the rest of the network.
        self._inconsistent = False

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> tuple[object, ...]:
        return tuple(self._nodes)

    def add_node(self, label: object) -> None:
        """Register a node; idempotent."""
        if label not in self._index:
            self._index[label] = len(self._nodes)
            self._nodes.append(label)

    def constrain(self, a: object, b: object, relations: Iterable[Relation]) -> None:
        """Intersect the (a, b) edge with the given disjunction.

        The converse edge (b, a) is kept consistent automatically.
        """
        self.add_node(a)
        self.add_node(b)
        ia, ib = self._index[a], self._index[b]
        if ia == ib:
            if Relation.EQUALS not in frozenset(relations):
                self._inconsistent = True
            return
        current = self._edges.get((ia, ib), FULL)
        tightened = current & frozenset(relations)
        self._edges[(ia, ib)] = tightened
        self._edges[(ib, ia)] = converse_set(tightened)

    def relation(self, a: object, b: object) -> RelationSet:
        """Current disjunctive relation between ``a`` and ``b``."""
        ia, ib = self._index[a], self._index[b]
        if ia == ib:
            return NONE if self._inconsistent else frozenset({Relation.EQUALS})
        return self._edges.get((ia, ib), FULL)

    # ------------------------------------------------------------------
    def propagate(self) -> bool:
        """Run path-consistency propagation to a fixed point.

        Returns False as soon as some edge becomes empty (inconsistent
        network); True when the network is path consistent.
        """
        if self._inconsistent:
            return False
        if any(edge == NONE for edge in self._edges.values()):
            # A constraint was already tightened to the empty relation
            # (e.g. two contradictory constrain() calls on one edge).
            return False
        n = len(self._nodes)
        queue: list[Tuple[int, int]] = [
            (i, j) for i in range(n) for j in range(n) if i != j
        ]
        pending = set(queue)
        while queue:
            i, j = queue.pop()
            pending.discard((i, j))
            rij = self._get(i, j)
            for k in range(n):
                if k == i or k == j:
                    continue
                if self._tighten(i, k, compose_sets(rij, self._get(j, k))):
                    if self._get(i, k) == NONE:
                        return False
                    self._enqueue(queue, pending, i, k)
                if self._tighten(k, j, compose_sets(self._get(k, i), rij)):
                    if self._get(k, j) == NONE:
                        return False
                    self._enqueue(queue, pending, k, j)
        return True

    def is_path_consistent(self) -> bool:
        """Propagate and report consistency (non-destructive answer; the
        network keeps the tightened edges, which is usually what callers
        want)."""
        return self.propagate()

    # ------------------------------------------------------------------
    def _get(self, i: int, j: int) -> RelationSet:
        if i == j:
            return frozenset({Relation.EQUALS})
        return self._edges.get((i, j), FULL)

    def _tighten(self, i: int, j: int, allowed: RelationSet) -> bool:
        current = self._get(i, j)
        tightened = current & allowed
        if tightened == current:
            return False
        self._edges[(i, j)] = tightened
        self._edges[(j, i)] = converse_set(tightened)
        return True

    @staticmethod
    def _enqueue(
        queue: list[Tuple[int, int]],
        pending: set[Tuple[int, int]],
        i: int,
        j: int,
    ) -> None:
        if (i, j) not in pending:
            pending.add((i, j))
            queue.append((i, j))

    # ------------------------------------------------------------------
    @classmethod
    def from_concrete(cls, intervals: Mapping[object, Interval]) -> "IntervalNetwork":
        """Build a fully specified network from concrete intervals.

        Each edge carries the singleton relation observed between the two
        concrete intervals; such networks are trivially consistent and are
        useful for validating propagation against ground truth.
        """
        network = cls()
        labels = list(intervals)
        for label in labels:
            if intervals[label].is_empty:
                raise InvalidIntervalError(
                    f"cannot build a network over empty interval {label!r}"
                )
            network.add_node(label)
        for a, b in itertools.combinations(labels, 2):
            network.constrain(a, b, {relate(intervals[a], intervals[b])})
        return network
